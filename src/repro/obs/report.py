"""Post-run aggregation: one human-readable summary, one JSON document.

:func:`build_report` folds a :class:`~repro.mc.result.VerificationResult`
and the :class:`~repro.obs.trace.Tracer` that observed its run into a
:class:`RunReport`:

* **engine timeline** — the top-level spans in start order (who ran when,
  for how long, with what verdict);
* **per-phase breakdown** — spans grouped by name: call count, total and
  mean wall time, share of the run;
* **series summary** — per counter series: sample count, final and peak
  value (the peak gauges of the run);
* the result's :class:`~repro.util.stats.StatsBag`, counters and gauges
  split as the bag itself classifies them.

``to_dict()`` is the machine-readable document the CLI writes for
``repro mc --report out.json``; ``render()`` is the terminal summary.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.obs.trace import Tracer


@dataclass
class PhaseSummary:
    """All spans sharing one name, aggregated."""

    name: str
    category: str
    count: int
    total_seconds: float
    max_seconds: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "count": self.count,
            "total_seconds": self.total_seconds,
            "max_seconds": self.max_seconds,
        }


@dataclass
class SeriesSummary:
    """One counter series, summarized.

    ``peak`` is the series maximum; ``p50``/``p95`` are sample
    quantiles over the recorded values, so reports built from service
    runs show the latency/gauge *distribution*, not just its peak.
    """

    name: str
    samples: int
    first: float
    last: float
    peak: float
    p50: float = 0.0
    p95: float = 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "samples": self.samples,
            "first": self.first,
            "last": self.last,
            "peak": self.peak,
            "p50": self.p50,
            "p95": self.p95,
        }


@dataclass
class RunReport:
    """The post-run observability document of one verification run."""

    engine: str
    status: str
    iterations: int
    wall_seconds: float
    timeline: list[dict] = field(default_factory=list)
    phases: list[PhaseSummary] = field(default_factory=list)
    series: list[SeriesSummary] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    span_count: int = 0
    worker_pids: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "status": self.status,
            "iterations": self.iterations,
            "wall_seconds": self.wall_seconds,
            "timeline": self.timeline,
            "phases": [phase.to_dict() for phase in self.phases],
            "series": [series.to_dict() for series in self.series],
            "counters": self.counters,
            "gauges": self.gauges,
            "span_count": self.span_count,
            "worker_pids": self.worker_pids,
        }

    def write_json(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    def render(self) -> str:
        """The human-readable post-run summary."""
        lines = [
            f"run report: {self.engine} -> {self.status} "
            f"({self.iterations} iterations, {self.wall_seconds * 1000:.0f}ms"
            f", {self.span_count} spans)"
        ]
        if self.timeline:
            lines.append("timeline:")
            for entry in self.timeline:
                attrs = entry.get("attrs") or {}
                detail = " ".join(
                    f"{key}={value}" for key, value in sorted(attrs.items())
                )
                lines.append(
                    f"  {entry['start'] * 1000:>8.1f}ms "
                    f"+{entry['duration'] * 1000:>8.1f}ms  "
                    f"{entry['name']}"
                    + (f"  [{detail}]" if detail else "")
                )
        if self.phases:
            lines.append("phases:")
            lines.append(
                f"  {'phase':<28}{'calls':>7}{'total':>10}{'mean':>10}"
                f"{'share':>8}"
            )
            for phase in self.phases:
                mean = phase.total_seconds / phase.count if phase.count else 0
                share = (
                    phase.total_seconds / self.wall_seconds
                    if self.wall_seconds
                    else 0.0
                )
                lines.append(
                    f"  {phase.name:<28}{phase.count:>7}"
                    f"{phase.total_seconds * 1000:>8.1f}ms"
                    f"{mean * 1000:>8.2f}ms"
                    f"{share:>7.0%}"
                )
        if self.series:
            lines.append("series (gauge distributions):")
            for series in self.series:
                lines.append(
                    f"  {series.name:<28}{series.samples:>5} samples"
                    f"  last {series.last:g}  p50 {series.p50:g}"
                    f"  p95 {series.p95:g}  max {series.peak:g}"
                )
        if self.gauges:
            lines.append("stats gauges:")
            for key, value in sorted(self.gauges.items()):
                lines.append(f"  {key:<38} {value:g}")
        if self.counters:
            lines.append("stats counters:")
            for key, value in sorted(self.counters.items()):
                lines.append(f"  {key:<38} {value:g}")
        return "\n".join(lines)


def build_report(result, tracer: Tracer | None = None) -> RunReport:
    """Aggregate one result (and the tracer that watched it) into a report.

    ``result`` is a :class:`~repro.mc.result.VerificationResult`; the
    tracer is optional — without one the report still carries the stats
    split and any time-series attached to the result's bag.
    """
    bag = result.stats
    gauges = {}
    counters = {}
    for key, value in bag:
        if bag.is_gauge(key):
            gauges[key] = value
        else:
            counters[key] = value
    report = RunReport(
        engine=result.engine,
        status=result.status.value,
        iterations=result.iterations,
        wall_seconds=0.0,
        counters=counters,
        gauges=gauges,
    )
    series_points: dict[str, list[tuple[float, float]]] = {
        key: list(bag.series(key)) for key in bag.series_keys()
    }
    if tracer is not None:
        spans = sorted(tracer.spans, key=lambda s: s.start)
        report.span_count = len(spans)
        report.worker_pids = sorted({span.pid for span in spans})
        if spans:
            start = min(span.start for span in spans)
            end = max(span.start + span.duration for span in spans)
            report.wall_seconds = end - start
        ids = {span.span_id for span in spans}
        report.timeline = [
            {
                "name": span.name,
                "category": span.category,
                "pid": span.pid,
                "start": span.start - (spans[0].start if spans else 0.0),
                "duration": span.duration,
                "attrs": span.attrs,
            }
            for span in spans
            if span.parent_id is None or span.parent_id not in ids
        ]
        grouped: dict[str, PhaseSummary] = {}
        for span in spans:
            phase = grouped.get(span.name)
            if phase is None:
                grouped[span.name] = PhaseSummary(
                    name=span.name,
                    category=span.category,
                    count=1,
                    total_seconds=span.duration,
                    max_seconds=span.duration,
                )
            else:
                phase.count += 1
                phase.total_seconds += span.duration
                phase.max_seconds = max(phase.max_seconds, span.duration)
        report.phases = sorted(
            grouped.values(), key=lambda p: -p.total_seconds
        )
        for counter in tracer.counters:
            series_points.setdefault(counter.name, []).append(
                (counter.t, counter.value)
            )
    from repro.obs.metrics import quantiles

    for name in sorted(series_points):
        points = sorted(series_points[name])
        if not points:
            continue
        values = [value for _, value in points]
        p50, p95 = quantiles(values, (0.5, 0.95))
        report.series.append(
            SeriesSummary(
                name=name,
                samples=len(points),
                first=points[0][1],
                last=points[-1][1],
                peak=max(values),
                p50=p50,
                p95=p95,
            )
        )
    if not report.wall_seconds:
        report.wall_seconds = bag.get("wall_seconds", 0.0)
    return report
