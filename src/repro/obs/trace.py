"""Nested-span tracing with Chrome ``trace_event`` and JSONL export.

A :class:`Tracer` records two kinds of observations:

* **spans** — named, nested intervals (``with tracer.span("pdr.block_cube",
  frame=k):``) carrying wall time, process/thread ids, a category
  (``engine`` / ``frames`` / ``sat`` / ``bdd`` / ...), and free-form
  attributes.  Nesting is tracked per thread, so concurrent sessions
  produce well-formed trees;
* **counter samples** — ``tracer.sample("sat.conflicts", n)`` time-series
  points, the output of the probe hooks in :mod:`repro.obs.probes`.

Both export as Chrome ``trace_event`` JSON (loadable in
``chrome://tracing`` and Perfetto: spans become ``ph:"X"`` complete
events, samples become ``ph:"C"`` counter tracks) and as a compact JSONL
stream that round-trips through :meth:`Tracer.read_jsonl`.

Timestamps are ``time.perf_counter()`` offsets from the tracer's
``epoch``.  On Linux ``perf_counter`` is CLOCK_MONOTONIC, which is
system-wide: a forked worker that builds its tracer with the *parent's*
epoch produces records directly mergeable into the parent's timeline —
that is how the portfolio runner stitches subprocess engines into one
coherent per-task trace (see :func:`Tracer.merge_records`).
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from dataclasses import dataclass, field

# The whole-file Chrome export wraps events in this envelope; the JSONL
# stream writes one record per line instead.
_SCHEMA = "repro.obs/1"


@dataclass
class SpanRecord:
    """One completed span."""

    name: str
    category: str
    start: float               # seconds since the tracer epoch
    duration: float            # seconds
    pid: int
    tid: int
    span_id: int
    parent_id: int | None = None
    attrs: dict = field(default_factory=dict)

    def to_record(self) -> dict:
        record = {
            "type": "span",
            "name": self.name,
            "cat": self.category,
            "start": self.start,
            "dur": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "id": self.span_id,
        }
        if self.parent_id is not None:
            record["parent"] = self.parent_id
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_record(cls, record: dict) -> "SpanRecord":
        return cls(
            name=record["name"],
            category=record.get("cat", ""),
            start=record["start"],
            duration=record["dur"],
            pid=record["pid"],
            tid=record.get("tid", 0),
            span_id=record.get("id", 0),
            parent_id=record.get("parent"),
            attrs=dict(record.get("attrs", {})),
        )


@dataclass
class CounterRecord:
    """One time-series sample of a named counter or gauge."""

    name: str
    t: float                   # seconds since the tracer epoch
    value: float
    pid: int

    def to_record(self) -> dict:
        return {
            "type": "counter",
            "name": self.name,
            "t": self.t,
            "value": self.value,
            "pid": self.pid,
        }

    @classmethod
    def from_record(cls, record: dict) -> "CounterRecord":
        return cls(
            name=record["name"],
            t=record["t"],
            value=record["value"],
            pid=record["pid"],
        )


class _Span:
    """Context manager recording one span on exit (reentrant per use)."""

    __slots__ = ("_tracer", "_name", "_category", "_attrs", "_start", "_id",
                 "_parent")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._id = tracer._next_id()
        stack = tracer._stack()
        self._parent = stack[-1] if stack else None
        stack.append(self._id)
        self._start = tracer.now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        tracer = self._tracer
        end = tracer.now()
        tracer._stack().pop()
        tracer.spans.append(
            SpanRecord(
                name=self._name,
                category=self._category,
                start=self._start,
                duration=end - self._start,
                pid=os.getpid(),
                tid=threading.get_ident() & 0xFFFF,
                span_id=self._id,
                parent_id=self._parent,
                attrs=self._attrs,
            )
        )

    def set(self, **attrs: object) -> None:
        """Attach attributes discovered mid-span (e.g. the verdict)."""
        self._attrs.update(attrs)


class _NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def set(self, **attrs: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans and counter samples for one task or session.

    ``tick`` is the minimum interval (seconds) between samples of the
    same counter accepted by :meth:`should_sample` — the knob that keeps
    probe hooks in hot kernels cheap while tracing is *enabled*.
    ``epoch`` defaults to "now"; a subprocess worker passes its parent's
    epoch so both sides share one timeline.
    """

    def __init__(self, tick: float = 0.01, epoch: float | None = None) -> None:
        self.tick = tick
        self.epoch = time.perf_counter() if epoch is None else epoch
        self.wall_epoch = time.time()
        self.spans: list[SpanRecord] = []
        self.counters: list[CounterRecord] = []
        self._local = threading.local()
        self._ids = 0
        self._id_lock = threading.Lock()
        self._last_sample: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def now(self) -> float:
        """Seconds since the tracer epoch (monotonic)."""
        return time.perf_counter() - self.epoch

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._id_lock:
            self._ids += 1
            # Disambiguate ids across forked workers sharing an epoch.
            return (os.getpid() << 20) | self._ids

    def span(self, name: str, category: str = "engine",
             **attrs: object) -> _Span:
        """A context manager recording one nested span."""
        return _Span(self, name, category, attrs)

    def record_span(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        **attrs: object,
    ) -> None:
        """Record an already-timed interval (for hooks that cannot nest a
        context manager into the instrumented code)."""
        stack = self._stack()
        self.spans.append(
            SpanRecord(
                name=name,
                category=category,
                start=start,
                duration=end - start,
                pid=os.getpid(),
                tid=threading.get_ident() & 0xFFFF,
                span_id=self._next_id(),
                parent_id=stack[-1] if stack else None,
                attrs=attrs,
            )
        )

    def sample(self, name: str, value: float) -> None:
        """Record one counter sample at the current time."""
        self.counters.append(
            CounterRecord(name=name, t=self.now(), value=float(value),
                          pid=os.getpid())
        )

    def should_sample(self, name: str) -> bool:
        """Tick guard: at most one accepted sample of ``name`` per tick."""
        now = time.perf_counter()
        last = self._last_sample.get(name)
        if last is not None and now - last < self.tick:
            return False
        self._last_sample[name] = now
        return True

    # ------------------------------------------------------------------ #
    # Merging (cross-process)
    # ------------------------------------------------------------------ #

    def export_records(self) -> list[dict]:
        """Everything recorded so far, as JSON-serializable dicts."""
        return [span.to_record() for span in self.spans] + [
            counter.to_record() for counter in self.counters
        ]

    def merge_records(self, records: list[dict]) -> None:
        """Fold records exported by another tracer (e.g. a forked worker
        sharing this tracer's epoch) into this timeline."""
        for record in records:
            if record.get("type") == "counter":
                self.counters.append(CounterRecord.from_record(record))
            else:
                self.spans.append(SpanRecord.from_record(record))

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def to_chrome_trace(self) -> dict:
        """The Chrome ``trace_event`` "JSON object format" document."""
        events: list[dict] = []
        pids = set()
        for span in sorted(self.spans, key=lambda s: s.start):
            pids.add(span.pid)
            event = {
                "name": span.name,
                "cat": span.category or "repro",
                "ph": "X",
                "ts": span.start * 1e6,      # microseconds
                "dur": span.duration * 1e6,
                "pid": span.pid,
                "tid": span.tid,
            }
            if span.attrs:
                event["args"] = {
                    key: value for key, value in span.attrs.items()
                }
            events.append(event)
        for counter in sorted(self.counters, key=lambda c: c.t):
            pids.add(counter.pid)
            events.append(
                {
                    "name": counter.name,
                    "ph": "C",
                    "ts": counter.t * 1e6,
                    "pid": counter.pid,
                    "tid": 0,
                    "args": {"value": counter.value},
                }
            )
        for pid in sorted(pids):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {
                        "name": "repro" if pid == os.getpid()
                        else f"repro worker {pid}"
                    },
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": _SCHEMA,
                "wall_epoch": self.wall_epoch,
            },
        }

    def write_chrome_trace(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.to_chrome_trace()) + "\n"
        )

    def to_jsonl(self) -> str:
        """One record per line: a header, then spans and samples."""
        lines = [json.dumps({"type": "header", "schema": _SCHEMA,
                             "wall_epoch": self.wall_epoch,
                             "tick": self.tick})]
        lines.extend(json.dumps(record) for record in self.export_records())
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(self.to_jsonl())

    @classmethod
    def read_jsonl(cls, path: str | pathlib.Path) -> "Tracer":
        """Rebuild a tracer from a JSONL stream written by ``write_jsonl``."""
        tracer = cls()
        records = []
        for line in pathlib.Path(path).read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "header":
                tracer.wall_epoch = record.get("wall_epoch",
                                               tracer.wall_epoch)
                tracer.tick = record.get("tick", tracer.tick)
                continue
            records.append(record)
        tracer.merge_records(records)
        return tracer
