"""Process-wide labeled metrics: counters, gauges and histograms.

This is the service-side complement to the span/sample tracing in
:mod:`repro.obs.trace`: where a trace answers "what did *this run* do",
the metrics registry answers "what is the *fleet* doing right now" —
queue depth, claim/complete rates, latency distributions — in a shape a
Prometheus scraper (or ``repro top``) can consume.

The registry follows the same discipline as :mod:`repro.obs.probes`:

* a module-level :data:`ENABLED` flag guards every instrumentation
  site (``if _met.ENABLED: _met.JOBS_CLAIMED.labels(m).inc()``), so the
  disabled cost in a hot loop is one attribute load and a predicted
  branch, and queue/engine behaviour is bit-identical either way
  (instruments only *read* timestamps and add to private tallies);
* the *enabled* hot path allocates nothing per sample: labeled children
  are created once and cached by label tuple, histogram buckets are a
  fixed ``bisect`` over precomputed bounds into preallocated slots.

Three metric kinds, all label-aware:

* :class:`Counter` — monotonically increasing totals
  (``repro_jobs_claimed_total{method="pdr"}``);
* :class:`Gauge` — set-to-current values, optionally backed by a
  callable evaluated at collect time (``repro_queue_depth``);
* :class:`Histogram` — fixed-boundary bucket counts plus sum/count,
  exported cumulatively the way Prometheus expects
  (``repro_job_run_seconds_bucket{le="0.5"}``).

One :class:`MetricsRegistry` (:data:`REGISTRY`) is process-wide; the
verification server additionally registers *collectors* — callables
producing family snapshots computed from the durable store at scrape
time, so fleet-wide truths (jobs by state, per-engine win counts,
latency quantiles) are correct even when the work happened in worker
processes that do not share this process's in-memory tallies.

Exposition: :meth:`MetricsRegistry.to_json` (the ``/metrics`` JSON
variant and what ``repro top`` consumes) and
:meth:`MetricsRegistry.to_prometheus` (text exposition format 0.0.4,
``# HELP``/``# TYPE`` comments, escaped label values) — both built from
the same :meth:`~MetricsRegistry.collect` snapshot, so the two formats
always agree.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Iterable, Sequence

# Rebound by enable()/disable(); instrumented code reads it through the
# module (``metrics.ENABLED``) exactly like ``probes.ENABLED``.
ENABLED = False

# Latency buckets (seconds) for job-level histograms: sub-millisecond
# store operations up to minute-long engine runs.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

# Tighter buckets for per-call kernel timings (individual SAT solves,
# store transactions).
FAST_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """Prometheus-friendly number formatting (ints stay integral)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _label_pairs(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


# ---------------------------------------------------------------------- #
# Children: one labeled time series each
# ---------------------------------------------------------------------- #


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class _GaugeChild:
    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Evaluate ``fn`` at collect time instead of a stored value."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "counts", "sum", "count")

    def __init__(
        self, lock: threading.Lock, bounds: tuple[float, ...]
    ) -> None:
        self._lock = lock
        self._bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs ending with ``+Inf``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self._bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out


# ---------------------------------------------------------------------- #
# Families
# ---------------------------------------------------------------------- #


class MetricFamily:
    """One named metric and all of its labeled children."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            # Label-less families always expose their (single) series,
            # zero included — a scraper should see the metric exists.
            self._children[()] = self._make_child()

    def _make_child(self):
        raise NotImplementedError

    def labels(self, *values: object) -> object:
        """The child for one label-value tuple (created once, cached)."""
        key = tuple(str(value) for value in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {len(key)} values"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    # Label-less convenience: family.inc()/set()/observe() act on the
    # single unlabeled child.
    def _solo(self):
        return self.labels()

    def snapshot(self) -> dict:
        """JSON-shaped family snapshot (the collect() unit)."""
        raise NotImplementedError


class Counter(MetricFamily):
    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "samples": [
                {
                    "labels": dict(zip(self.labelnames, key)),
                    "value": child.value,
                }
                for key, child in sorted(self._children.items())
            ],
        }


class Gauge(MetricFamily):
    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._solo().set_function(fn)

    snapshot = Counter.snapshot


class Histogram(MetricFamily):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("buckets must be strictly increasing")
        if bounds[-1] == math.inf:
            bounds = bounds[:-1]  # +Inf is implicit
        self.bounds = bounds
        super().__init__(name, help, labelnames)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.bounds)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "samples": [
                {
                    "labels": dict(zip(self.labelnames, key)),
                    "buckets": [
                        [le, count]
                        for le, count in child.cumulative_buckets()
                    ],
                    "sum": child.sum,
                    "count": child.count,
                }
                for key, child in sorted(self._children.items())
            ],
        }


def histogram_family(
    name: str,
    help: str,
    labeled_values: Iterable[tuple[dict, Iterable[float]]],
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> dict:
    """Build a histogram family *snapshot* from raw values.

    Collectors use this to expose distributions computed from durable
    state at scrape time (e.g. job latencies out of the store) in the
    exact shape :meth:`Histogram.snapshot` produces.
    """
    family = Histogram(name, help, labelnames=("__tmp__",), buckets=buckets)
    samples = []
    for labels, values in labeled_values:
        child = _HistogramChild(family._lock, family.bounds)
        for value in values:
            child.observe(float(value))
        samples.append(
            {
                "labels": dict(labels),
                "buckets": [
                    [le, count] for le, count in child.cumulative_buckets()
                ],
                "sum": child.sum,
                "count": child.count,
            }
        )
    return {"name": name, "type": "histogram", "help": help,
            "samples": samples}


# ---------------------------------------------------------------------- #
# Quantiles
# ---------------------------------------------------------------------- #


def histogram_quantile(
    q: float, buckets: Sequence[Sequence[float]]
) -> float:
    """Estimate the ``q``-quantile from cumulative ``(le, count)`` pairs.

    Linear interpolation inside the landing bucket, the same estimator
    Prometheus's ``histogram_quantile`` uses; the ``+Inf`` bucket
    reports its lower bound (there is nothing to interpolate towards).
    """
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total <= 0:
        return 0.0
    rank = q * total
    prev_le, prev_count = 0.0, 0
    for le, count in buckets:
        if count >= rank:
            if le == math.inf or le is None:
                return prev_le
            span = count - prev_count
            fraction = (rank - prev_count) / span if span else 1.0
            return prev_le + (float(le) - prev_le) * fraction
        prev_le, prev_count = float(le), count
    return prev_le


def quantiles(values: Sequence[float], qs: Sequence[float]) -> list[float]:
    """Exact sample quantiles (linear interpolation between order stats)."""
    ordered = sorted(values)
    if not ordered:
        return [0.0 for _ in qs]
    out = []
    last = len(ordered) - 1
    for q in qs:
        position = q * last
        low = int(position)
        high = min(low + 1, last)
        fraction = position - low
        out.append(ordered[low] * (1 - fraction) + ordered[high] * fraction)
    return out


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #


class MetricsRegistry:
    """All metric families of one process, plus scrape-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}
        self._collectors: list[Callable[[], list[dict]]] = []

    def _register(self, family: MetricFamily) -> MetricFamily:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if (
                    type(existing) is not type(family)
                    or existing.labelnames != family.labelnames
                ):
                    raise ValueError(
                        f"metric {family.name!r} already registered with a "
                        "different type or label set"
                    )
                return existing
            self._families[family.name] = family
            return family

    def counter(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help, labels))

    def gauge(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help, labels))

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, labels, buckets))

    def register_collector(
        self, fn: Callable[[], list[dict]]
    ) -> Callable[[], list[dict]]:
        """Add a scrape-time producer of family snapshots.

        Collector family names must not collide with registered
        families — the exposition would double-count.
        """
        self._collectors.append(fn)
        return fn

    def unregister_collector(self, fn: Callable[[], list[dict]]) -> None:
        if fn in self._collectors:
            self._collectors.remove(fn)

    def collect(self) -> list[dict]:
        """One consistent snapshot: registered families + collectors."""
        out = [
            family.snapshot()
            for _, family in sorted(self._families.items())
        ]
        seen = {family["name"] for family in out}
        for collector in list(self._collectors):
            for family in collector():
                if family["name"] in seen:
                    raise ValueError(
                        f"collector family {family['name']!r} collides "
                        "with a registered metric"
                    )
                seen.add(family["name"])
                out.append(family)
        return out

    # ------------------------------------------------------------------ #
    # Exposition
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        """The JSON variant: ``{name: family_snapshot}``."""
        return {family["name"]: family for family in self.collect()}

    def to_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for family in self.collect():
            name = family["name"]
            lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['type']}")
            for sample in family["samples"]:
                labels = sample["labels"]
                names = tuple(labels)
                values = tuple(labels[key] for key in names)
                if family["type"] == "histogram":
                    for le, count in sample["buckets"]:
                        le_str = _format_value(
                            math.inf if le is None else le
                        )
                        bucket_labels = _label_pairs(
                            names + ("le",), values + (le_str,)
                        )
                        lines.append(
                            f"{name}_bucket{bucket_labels} {count}"
                        )
                    pairs = _label_pairs(names, values)
                    lines.append(
                        f"{name}_sum{pairs} "
                        f"{_format_value(sample['sum'])}"
                    )
                    lines.append(f"{name}_count{pairs} {sample['count']}")
                else:
                    pairs = _label_pairs(names, values)
                    lines.append(
                        f"{name}{pairs} {_format_value(sample['value'])}"
                    )
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every family and collector (test isolation)."""
        with self._lock:
            self._families.clear()
            self._collectors.clear()
        _install_default_metrics(self)


# ---------------------------------------------------------------------- #
# The process-wide registry and switchboard
# ---------------------------------------------------------------------- #

REGISTRY = MetricsRegistry()


def enable() -> MetricsRegistry:
    """Turn metric collection on process-wide; returns the registry."""
    global ENABLED
    ENABLED = True
    return REGISTRY


def disable() -> None:
    global ENABLED
    ENABLED = False


def is_enabled() -> bool:
    return ENABLED


# Default instruments.  Created eagerly (they are a handful of dicts) so
# instrumentation sites are plain attribute loads; tallies only move
# while ENABLED is True because every site is guarded by the flag.

def _install_default_metrics(registry: MetricsRegistry) -> None:
    global JOBS_SUBMITTED, JOBS_CLAIMED, JOBS_COMPLETED, JOBS_REQUEUED
    global JOBS_LEASE_FAILED, JOB_EVENTS, QUEUE_WAIT_SECONDS
    global JOB_RUN_SECONDS, SAT_SOLVE_SECONDS, STORE_TXN_SECONDS
    global RESULTS_STORED, CERTIFICATES_STORED, TRACES_STORED
    global WORKER_JOBS, HTTP_REQUESTS, HTTP_SECONDS, SSE_STREAMS

    JOBS_SUBMITTED = registry.counter(
        "repro_jobs_submitted_total",
        "Jobs accepted into the durable queue by this process",
        ("method",),
    )
    JOBS_CLAIMED = registry.counter(
        "repro_jobs_claimed_total",
        "Queue claims granted to workers in this process",
        ("method",),
    )
    JOBS_COMPLETED = registry.counter(
        "repro_jobs_completed_total",
        "Jobs this process drove to a terminal state",
        ("method", "state"),
    )
    JOBS_REQUEUED = registry.counter(
        "repro_jobs_requeued_total",
        "Lease-expired jobs put back in the queue",
    )
    JOBS_LEASE_FAILED = registry.counter(
        "repro_jobs_lease_failed_total",
        "Jobs failed after exhausting their lease attempts",
    )
    JOB_EVENTS = registry.counter(
        "repro_job_events_total",
        "Events appended to per-job event streams",
        ("kind",),
    )
    QUEUE_WAIT_SECONDS = registry.histogram(
        "repro_job_queue_wait_seconds",
        "Delay between submission and the claim that ran the job",
        ("method",),
    )
    JOB_RUN_SECONDS = registry.histogram(
        "repro_job_run_seconds",
        "Claim-to-completion run time of finished jobs",
        ("method",),
    )
    SAT_SOLVE_SECONDS = registry.histogram(
        "repro_sat_solve_seconds",
        "Wall time of individual CDCL solve() calls",
        buckets=FAST_BUCKETS,
    )
    STORE_TXN_SECONDS = registry.histogram(
        "repro_store_txn_seconds",
        "Store write-transaction wall time",
        buckets=FAST_BUCKETS,
    )
    RESULTS_STORED = registry.counter(
        "repro_results_stored_total",
        "Result rows upserted into the keyed store",
    )
    CERTIFICATES_STORED = registry.counter(
        "repro_certificates_stored_total",
        "Certificate blobs written content-addressed",
    )
    TRACES_STORED = registry.counter(
        "repro_traces_stored_total",
        "Per-job obs trace blobs written content-addressed",
    )
    WORKER_JOBS = registry.counter(
        "repro_worker_jobs_total",
        "Jobs executed by this worker process, by outcome",
        ("outcome",),
    )
    HTTP_REQUESTS = registry.counter(
        "repro_http_requests_total",
        "HTTP requests served",
        ("route", "code"),
    )
    HTTP_SECONDS = registry.histogram(
        "repro_http_request_seconds",
        "HTTP request service time",
        ("route",),
        buckets=FAST_BUCKETS,
    )
    SSE_STREAMS = registry.gauge(
        "repro_sse_streams",
        "Server-sent event streams currently connected",
    )


_install_default_metrics(REGISTRY)


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "ENABLED",
    "FAST_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "REGISTRY",
    "disable",
    "enable",
    "histogram_family",
    "histogram_quantile",
    "is_enabled",
    "quantiles",
]
