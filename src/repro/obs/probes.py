"""Low-overhead probe hooks for the hot kernels.

The contract with the instrumented code (the same discipline as the
solver's proof logging): a kernel guards every hook behind the
module-level :data:`ENABLED` flag —

    from repro.obs import probes as _obs
    ...
    if _obs.ENABLED:
        _obs.solver_tick(self)

so the disabled cost is one attribute load and a predicted branch, and
the search trajectory (decisions, conflicts, cache contents) is
bit-identical with instrumentation on or off: probes only *read*
kernel counters, never mutate them.

When enabled, every probe is additionally throttled by the active
tracer's tick (:meth:`repro.obs.trace.Tracer.should_sample`), so even a
solver making hundreds of thousands of propagations per second emits a
bounded sample stream.

Probe catalogue (all samples land in the tracer's counter series and,
where a :class:`~repro.util.stats.StatsBag` is at hand, in its attached
time-series):

======================  =====================================================
series                  meaning
======================  =====================================================
``sat.conflicts``       cumulative CDCL conflicts of the sampled solver
``sat.propagations``    cumulative unit propagations
``sat.restarts``        cumulative restarts
``sat.learned_db``      live learned-clause database size
``bdd.nodes``           allocated BDD nodes (terminals included)
``bdd.cache_hit_rate``  aggregate apply-cache hit rate (0..1)
``bdd.cache_entries``   live apply-cache entries across operations
``pdr.queue_depth``     proof-obligation queue depth
``pdr.lemmas``          live (non-retired) lemma count
``pdr.frames``          frame count
``itp.interpolant_nodes``  AND nodes of the latest interpolant
``itp.reach_nodes``     AND nodes of the accumulated reached set
``cnc.open_cubes``      cubes still waiting for a verdict
``cnc.solved_cubes``    cubes the conquer stage has finished
``cnc.refuted_cubes``   cubes closed by the lookahead, no solver needed
``cnc.active_workers``  conquer worker processes currently in flight
``svc.queue_depth``     claimable jobs in the service's durable queue
``svc.active_leases``   jobs currently held under a worker lease
``svc.completed_jobs``  jobs this worker has finished since it started
``svc.sse_clients``     live SSE event streams on the HTTP server (sampled
                        by the server on connect/disconnect)
======================  =====================================================
"""

from __future__ import annotations

from repro.obs.trace import NULL_SPAN, Tracer

# Rebound by activate()/deactivate().  Hot code reads the attribute
# through the module (``probes.ENABLED``), so rebinding is visible
# everywhere without any registration machinery.
ENABLED = False
_TRACER: Tracer | None = None


def activate(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide probe sink and enable."""
    global ENABLED, _TRACER
    _TRACER = tracer
    ENABLED = True
    return tracer


def deactivate() -> None:
    global ENABLED, _TRACER
    ENABLED = False
    _TRACER = None


def tracer() -> Tracer | None:
    """The active tracer, or ``None`` while disabled."""
    return _TRACER


def span(name: str, category: str = "engine", **attrs: object):
    """A span on the active tracer; a shared no-op when disabled."""
    if _TRACER is None:
        return NULL_SPAN
    return _TRACER.span(name, category, **attrs)


def sample(name: str, value: float, bag=None) -> None:
    """One tick-guarded sample into the tracer (and ``bag``'s series)."""
    t = _TRACER
    if t is None or not t.should_sample(name):
        return
    t.sample(name, value)
    if bag is not None:
        bag.sample(name, value, t=t.now())


# ---------------------------------------------------------------------- #
# Kernel-specific hooks
# ---------------------------------------------------------------------- #


def solver_tick(solver, bag=None) -> None:
    """Sample a CDCL solver's cumulative counters (tick-guarded)."""
    t = _TRACER
    if t is None or not t.should_sample("sat.conflicts"):
        return
    now = t.now()
    pairs = (
        ("sat.conflicts", solver.conflicts),
        ("sat.propagations", solver.propagations),
        ("sat.restarts", solver.restarts),
        ("sat.learned_db", len(solver._learnt_ids)),
    )
    for name, value in pairs:
        t.sample(name, value)
        if bag is not None:
            bag.sample(name, value, t=now)


def begin_solve(solver) -> tuple[float, int, int]:
    """Snapshot taken at ``solve()`` entry; paired with :func:`end_solve`."""
    t = _TRACER
    if t is None:
        return (0.0, 0, 0)
    return (t.now(), solver.conflicts, solver.propagations)


def end_solve(solver, snapshot: tuple[float, int, int], result) -> None:
    """Record one ``sat.solve`` span with per-call deltas."""
    t = _TRACER
    if t is None:
        return
    start, conflicts0, propagations0 = snapshot
    t.record_span(
        "sat.solve",
        "sat",
        start,
        t.now(),
        result=getattr(result, "value", str(result)),
        conflicts=solver.conflicts - conflicts0,
        propagations=solver.propagations - propagations0,
    )
    solver_tick(solver)


def bdd_tick(manager, bag=None) -> None:
    """Sample a BDD manager's node count and cache behaviour.

    Reads the manager's scalar per-operation counters and cache ``len``s
    directly instead of building a :meth:`cache_summary` dict, so a tick
    costs a handful of attribute loads and no allocation.
    """
    t = _TRACER
    if t is None or not t.should_sample("bdd.nodes"):
        return
    now = t.now()
    hits = (
        manager._hits_ite + manager._hits_and + manager._hits_or
        + manager._hits_xor + manager._hits_not + manager._hits_exists
        + manager._hits_and_exists
    )
    misses = (
        manager._misses_ite + manager._misses_and + manager._misses_or
        + manager._misses_xor + manager._misses_not
        + manager._misses_exists + manager._misses_and_exists
    )
    lookups = hits + misses
    entries = 0
    for cache in manager._caches.values():
        entries += len(cache)
    pairs = (
        ("bdd.nodes", manager.num_nodes),
        ("bdd.cache_hit_rate", hits / lookups if lookups else 0.0),
        ("bdd.cache_entries", entries),
    )
    for name, value in pairs:
        t.sample(name, value)
        if bag is not None:
            bag.sample(name, value, t=now)


def cnc_tick(
    open_cubes: int,
    solved_cubes: int,
    refuted_cubes: int,
    active_workers: int,
    bag=None,
) -> None:
    """Sample the cube-and-conquer engine's cube and worker gauges."""
    t = _TRACER
    if t is None or not t.should_sample("cnc.open_cubes"):
        return
    now = t.now()
    pairs = (
        ("cnc.open_cubes", open_cubes),
        ("cnc.solved_cubes", solved_cubes),
        ("cnc.refuted_cubes", refuted_cubes),
        ("cnc.active_workers", active_workers),
    )
    for name, value in pairs:
        t.sample(name, value)
        if bag is not None:
            bag.sample(name, value, t=now)


def svc_tick(
    queue_depth: int,
    active_leases: int,
    completed_jobs: int,
    bag=None,
) -> None:
    """Sample the verification service's queue/lease/worker gauges.

    Same read-only contract as every other probe: the worker loop calls
    this between claims, so a traced service run is observable without
    perturbing any verdict (pinned by the svc stats-identity test).
    """
    t = _TRACER
    if t is None or not t.should_sample("svc.queue_depth"):
        return
    now = t.now()
    pairs = (
        ("svc.queue_depth", queue_depth),
        ("svc.active_leases", active_leases),
        ("svc.completed_jobs", completed_jobs),
    )
    for name, value in pairs:
        t.sample(name, value)
        if bag is not None:
            bag.sample(name, value, t=now)


def pdr_tick(queue_depth: int, frames, bag=None) -> None:
    """Sample PDR's obligation queue depth and frame/lemma gauges."""
    t = _TRACER
    if t is None or not t.should_sample("pdr.queue_depth"):
        return
    now = t.now()
    pairs = (
        ("pdr.queue_depth", queue_depth),
        ("pdr.lemmas", frames.lemma_count()),
        ("pdr.frames", frames.num_frames),
    )
    for name, value in pairs:
        t.sample(name, value)
        if bag is not None:
            bag.sample(name, value, t=now)
