"""Process-wide tracing, metrics and run reports (``repro.obs``).

The observability layer every engine reports into:

* :class:`Tracer` (:mod:`repro.obs.trace`) — nested spans and counter
  samples, exportable as Chrome ``trace_event`` JSON
  (``chrome://tracing`` / Perfetto) and as a JSONL stream;
* :mod:`repro.obs.probes` — tick-throttled probe hooks wired into the
  SAT solver, the BDD manager, PDR and itp, guarded so the *disabled*
  cost is one predicted branch (search trajectories are bit-identical
  with tracing on or off);
* :class:`RunReport` (:mod:`repro.obs.report`) — the post-run
  aggregation: engine timeline, per-phase breakdown, peak gauges and
  p50/p95 series quantiles; both human-readable (``render()``) and
  machine-readable (``to_dict()``);
* :mod:`repro.obs.metrics` — the process-wide labeled metrics registry
  (counters, gauges, fixed-bucket histograms) behind the verification
  service's ``/metrics`` endpoint, exposed as JSON and Prometheus text
  exposition, guarded by the same ``ENABLED``-flag discipline.

Typical use::

    from repro import obs
    from repro.mc import verify

    tracer = obs.enable()
    try:
        result = verify(netlist, method="pdr")
    finally:
        obs.disable()
    tracer.write_chrome_trace("out.json")
    print(obs.build_report(result, tracer).render())

or, equivalently, ``verify(netlist, method="pdr", trace="out.json")``;
the CLI flags ``repro mc --trace out.json --report report.json`` land on
the same path.  Tracing is process-wide: engines running in portfolio /
session worker subprocesses stream their spans and samples back over
the runner pipe and are merged into the parent's timeline.
"""

from __future__ import annotations

from repro.obs import metrics, probes
from repro.obs.report import RunReport, build_report
from repro.obs.trace import (
    NULL_SPAN,
    CounterRecord,
    SpanRecord,
    Tracer,
)

__all__ = [
    "CounterRecord",
    "RunReport",
    "SpanRecord",
    "Tracer",
    "build_report",
    "current_tracer",
    "disable",
    "enable",
    "is_enabled",
    "metrics",
    "sample",
    "span",
]


def enable(tracer: Tracer | None = None, tick: float | None = None) -> Tracer:
    """Turn tracing on process-wide; returns the active tracer.

    Pass a ready-made :class:`Tracer` to collect into it (e.g. one whose
    epoch a parent process dictated), or let one be created.  ``tick``
    overrides the sampling interval of a freshly created tracer.
    Idempotent: enabling while already enabled keeps the active tracer.
    """
    if probes.ENABLED and probes.tracer() is not None:
        return probes.tracer()
    if tracer is None:
        tracer = Tracer(tick=tick if tick is not None else 0.01)
    return probes.activate(tracer)


def disable() -> Tracer | None:
    """Turn tracing off; returns the tracer that was active, if any."""
    tracer = probes.tracer()
    probes.deactivate()
    return tracer


def is_enabled() -> bool:
    return probes.ENABLED


def current_tracer() -> Tracer | None:
    return probes.tracer()


def span(name: str, category: str = "engine", **attrs: object):
    """A nested span on the active tracer; a no-op while disabled."""
    return probes.span(name, category, **attrs)


def sample(name: str, value: float, bag=None) -> None:
    """A tick-guarded counter sample; a no-op while disabled."""
    if probes.ENABLED:
        probes.sample(name, value, bag=bag)
