"""All-solutions SAT pre-image with circuit cofactoring (Ganai et al. [2]).

The pre-image ``exists i . S(delta(s, i))`` is computed by enumeration: a
SAT solver produces one satisfying assignment at a time; instead of
blocking just that minterm, the circuit is *cofactored* with respect to the
input assignment — capturing every state compatible with that input choice
in one shot — and the cofactor is disjoined into the result and blocked.

Section 4 of the paper plugs circuit-based quantification in front of this
engine: quantifying the cheap inputs first "dramatically decreases the
amount of decision (input) variables to be processed by SAT based
pre-image".  Pass the residual variables from a
:class:`~repro.core.partial.PartialQuantifier` as ``inputs_to_quantify``
to reproduce that flow.
"""

from __future__ import annotations

from repro.aig.cnf import CnfMapper
from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.ops import or_, support
from repro.circuits.netlist import Netlist
from repro.core.substitution import preimage_by_substitution
from repro.errors import ModelCheckingError, ResourceLimit
from repro.sat.solver import SolveResult, Solver
from repro.util.stats import StatsBag


def allsat_quantify(
    aig: Aig,
    edge: int,
    variables: list[int],
    max_cubes: int | None = None,
    solver: Solver | None = None,
) -> tuple[int, StatsBag]:
    """``exists {variables} . edge`` by circuit-cofactoring enumeration.

    Returns ``(result_edge, stats)``; ``stats["cubes"]`` counts the
    enumeration iterations (the decision-variable cost metric of the
    paper's Section 4 discussion).  Raises :class:`ResourceLimit` if
    ``max_cubes`` is hit.
    """
    stats = StatsBag()
    present = support(aig, edge)
    variables = [v for v in variables if v in present]
    stats.set("decision_vars", len(variables))
    if not variables:
        stats.set("cubes", 0)
        return edge, stats
    mapper = CnfMapper(aig, solver if solver is not None else Solver())
    target_lit = mapper.lit_for(edge)
    result = FALSE
    cubes = 0
    while True:
        if mapper.solver.solve([target_lit]) is not SolveResult.SAT:
            break
        if max_cubes is not None and cubes >= max_cubes:
            raise ResourceLimit(
                f"all-SAT pre-image exceeded {max_cubes} cubes"
            )
        model = mapper.model_inputs()
        assignment = {
            node: TRUE if model.get(node, False) else FALSE
            for node in variables
        }
        # Circuit cofactoring: all states compatible with this input choice.
        cofactored = aig.rebuild(edge, assignment)
        result = or_(aig, result, cofactored)
        cubes += 1
        if cofactored == TRUE:
            break
        # Block everything the cofactor covers.
        block_lit = mapper.lit_for(cofactored)
        if not mapper.solver.add_clause([-block_lit]):
            break
    stats.set("cubes", cubes)
    return result, stats


def allsat_preimage(
    netlist: Netlist,
    state_set: int,
    inputs_to_quantify: list[int] | None = None,
    max_cubes: int | None = None,
) -> tuple[int, StatsBag]:
    """SAT-based pre-image of a state set over a netlist.

    In-lining first (``S(delta)``), then all-SAT elimination of the primary
    inputs (all of them by default, or just the residual set left over by
    partial circuit quantification).
    """
    composed = preimage_by_substitution(
        netlist.aig, state_set, netlist.next_functions()
    )
    variables = (
        inputs_to_quantify
        if inputs_to_quantify is not None
        else netlist.input_nodes
    )
    for node in variables:
        if node not in netlist.input_nodes:
            raise ModelCheckingError(
                f"node {node} is not a primary input of the netlist"
            )
    return allsat_quantify(
        netlist.aig, composed, list(variables), max_cubes=max_cubes
    )
