"""Time-frame expansion of a netlist into one incremental SAT instance.

Used by BMC and k-induction.  Each frame gets fresh solver variables for
inputs and latches; the combinational logic is Tseitin-encoded per frame
into the *same* solver, so deeper checks reuse everything learned on the
shallow ones.
"""

from __future__ import annotations

from repro.aig.graph import Aig
from repro.aig.simulate import cone_plan
from repro.circuits.netlist import Netlist
from repro.errors import ModelCheckingError
from repro.sat.solver import Solver


class Unroller:
    """Frame-by-frame CNF encoding of a sequential netlist."""

    def __init__(
        self,
        netlist: Netlist,
        solver: Solver | None = None,
        assert_constraints: bool = True,
    ) -> None:
        netlist.validate()
        self.netlist = netlist
        self.aig: Aig = netlist.aig
        self.solver = solver if solver is not None else Solver()
        self._next_functions = netlist.next_functions()
        # Per-frame: node -> solver literal for latch and input nodes.
        self._frames: list[dict[int, int]] = []
        self._const_var: int | None = None
        # Interpolation partitions clauses by *when* they are added, so
        # the itp engine needs to place each frame's environment
        # constraints itself (via constrain_frame) instead of having
        # ensure_frames assert them eagerly.
        self._auto_constraints = assert_constraints

    # ------------------------------------------------------------------ #
    # Frame construction
    # ------------------------------------------------------------------ #

    @property
    def num_frames(self) -> int:
        return len(self._frames)

    def _false_lit(self) -> int:
        if self._const_var is None:
            self._const_var = self.solver.new_var()
            self.solver.add_clause([-self._const_var])
        return self._const_var

    def _new_frame(self) -> dict[int, int]:
        frame: dict[int, int] = {}
        for node in self.netlist.latch_nodes + self.netlist.input_nodes:
            frame[node] = self.solver.new_var()
        return frame

    def ensure_frames(self, count: int) -> None:
        """Encode frames until at least ``count`` exist (frame 0 included).

        Unless the unroller was built with ``assert_constraints=False``,
        environment constraints of the netlist are asserted as unit
        clauses in every frame: all paths the solver considers are
        constraint-satisfying executions.  In the opt-out mode the
        caller owns constraint placement (see :meth:`constrain_frame`).
        """
        while len(self._frames) < count:
            if not self._frames:
                frame = self._new_frame()
                self._frames.append(frame)
                self._assert_constraints(frame)
                continue
            previous = self._frames[-1]
            frame = self._new_frame()
            # Tie each latch variable of the new frame to the next-state
            # function evaluated over the previous frame.
            for latch_node, next_edge in self._next_functions.items():
                next_lit = self.edge_lit_in(previous, next_edge)
                latch_lit = frame[latch_node]
                self.solver.add_clause([-latch_lit, next_lit])
                self.solver.add_clause([latch_lit, -next_lit])
            self._frames.append(frame)
            self._assert_constraints(frame)

    def _assert_constraints(self, frame: dict[int, int]) -> None:
        if not self._auto_constraints:
            return
        self._constrain(frame)

    def _constrain(self, frame: dict[int, int]) -> None:
        for edge in self.netlist.constraints:
            self.solver.add_clause([self.edge_lit_in(frame, edge)])

    def constrain_frame(self, index: int) -> None:
        """Assert the netlist's environment constraints at one frame.

        Only needed with ``assert_constraints=False``, where the caller
        owns constraint placement (the interpolation engine keeps frame
        0 in its A partition and guards later frames with selectors).
        """
        self._constrain(self.frame(index))

    @property
    def const_var(self) -> int | None:
        """The solver variable pinned FALSE for constant edges (if any)."""
        return self._const_var

    def frame(self, index: int) -> dict[int, int]:
        self.ensure_frames(index + 1)
        return self._frames[index]

    # ------------------------------------------------------------------ #
    # Edge encoding inside a frame
    # ------------------------------------------------------------------ #

    def edge_lit_in(self, frame: dict[int, int], edge: int) -> int:
        """Tseitin-encode an AIG edge over one frame's leaf variables.

        Gate encodings are cached inside the frame map (keyed by AND node),
        so repeated calls share clauses.
        """
        node = edge >> 1
        if node == 0:
            base = self._false_lit()
            return -base if edge & 1 else base
        if node not in frame and not self.aig.is_and(node):
            raise ModelCheckingError(
                f"node {node} is not part of this netlist's interface"
            )
        # The cached cone plan replays the same topological order as a
        # fresh Aig.cone walk, so clause emission order (and therefore
        # the solver trajectory) is unchanged — only the walk is saved.
        plan = cone_plan(self.aig, (2 * node,))
        for _, cone_node in plan.inputs:
            if cone_node not in frame:
                raise ModelCheckingError(
                    f"input node {cone_node} missing from frame"
                )
        for dst, src0, neg0, src1, neg1 in plan.ops:
            cone_node = plan.nodes[dst]
            if cone_node in frame:
                continue
            f0, f1 = self.aig.fanins(cone_node)
            a = self._frame_edge_lit(frame, f0)
            b = self._frame_edge_lit(frame, f1)
            out = self.solver.new_var()
            frame[cone_node] = out
            self.solver.add_clause([-out, a])
            self.solver.add_clause([-out, b])
            self.solver.add_clause([out, -a, -b])
        lit = frame[node]
        return -lit if edge & 1 else lit

    def _frame_edge_lit(self, frame: dict[int, int], edge: int) -> int:
        node = edge >> 1
        if node == 0:
            base = self._false_lit()
        else:
            base = frame[node]
        return -base if edge & 1 else base

    # ------------------------------------------------------------------ #
    # Convenience literals
    # ------------------------------------------------------------------ #

    def latch_lit(self, frame_index: int, latch_node: int) -> int:
        return self.frame(frame_index)[latch_node]

    def input_lit(self, frame_index: int, input_node: int) -> int:
        return self.frame(frame_index)[input_node]

    def property_lit(self, frame_index: int) -> int:
        """Literal of the property edge evaluated at a frame."""
        frame = self.frame(frame_index)
        return self.edge_lit_in(frame, self.netlist.property_edge)

    def assert_initial_state(self) -> None:
        """Pin frame 0's latches to the netlist's initial values."""
        frame = self.frame(0)
        for node, value in self.netlist.init_assignment().items():
            lit = frame[node]
            self.solver.add_clause([lit if value else -lit])

    def state_distinct_clauses(self, i: int, j: int) -> None:
        """Add "state_i != state_j" (for unique-path induction)."""
        frame_i, frame_j = self.frame(i), self.frame(j)
        difference_lits = []
        for node in self.netlist.latch_nodes:
            diff = self.solver.new_var()
            a, b = frame_i[node], frame_j[node]
            # diff <-> a XOR b
            self.solver.add_clause([-diff, a, b])
            self.solver.add_clause([-diff, -a, -b])
            self.solver.add_clause([diff, -a, b])
            self.solver.add_clause([diff, a, -b])
            difference_lits.append(diff)
        self.solver.add_clause(difference_lits)

    # ------------------------------------------------------------------ #
    # Model readback
    # ------------------------------------------------------------------ #

    def read_state(self, frame_index: int) -> dict[int, bool]:
        frame = self._frames[frame_index]
        return {
            node: self.solver.value(frame[node])
            for node in self.netlist.latch_nodes
        }

    def read_inputs(self, frame_index: int) -> dict[int, bool]:
        frame = self._frames[frame_index]
        return {
            node: self.solver.value(frame[node])
            for node in self.netlist.input_nodes
        }
