"""Built-in engine registrations and the legacy ``verify`` front-end.

Every engine in the package is described here exactly once, as an
:class:`repro.api.registry.EngineSpec` — name, capability flags, typed
option dataclass, runner.  The portfolio's candidate selection, the CLI
``--method`` choices, and :class:`repro.api.Session` all derive from
these registrations; nothing else hand-maintains an engine list.

``verify(netlist, method=...)`` remains the one-call front door (the
examples, benchmarks, and the portfolio's worker processes use it) and
is now a thin shim over the registry: resolve the spec, normalize the
options, run, replay-validate counterexamples.
"""

from __future__ import annotations

import pathlib

from repro.circuits.netlist import Netlist
from repro.api.registry import get_engine, register_engine
from repro.obs import probes as _obs
from repro.cnc.options import CncOptions
from repro.itp.options import ItpOptions
from repro.mc.bmc import BmcOptions, bmc
from repro.mc.induction import KInductionOptions, k_induction
from repro.mc.reach_aig import BackwardReachability, ReachOptions
from repro.mc.reach_aig_fwd import ForwardReachability, ForwardReachOptions
from repro.mc.reach_bdd import (
    BddReachOptions,
    bdd_backward_reachability,
    bdd_forward_reachability,
)
from repro.mc.result import VerificationResult
from repro.pdr.options import PdrOptions
from repro.portfolio.options import PortfolioOptions


@register_engine(
    name="bmc",
    summary="bounded model checking; unbeatable on shallow bugs, "
    "proves nothing",
    options_class=BmcOptions,
    depth_field="max_depth",
    complete=False,
    quick=True,
    direction="forward",
)
def _run_bmc(netlist: Netlist, options: BmcOptions) -> VerificationResult:
    return bmc(
        netlist,
        max_depth=options.max_depth,
        preimage_folds=options.preimage_folds,
        quantify_options=options.quantify_options,
        solver=options.solver,
    )


@register_engine(
    name="k_induction",
    summary="temporal induction; two SAT calls when the property is "
    "inductive, complete with unique-states strengthening",
    options_class=KInductionOptions,
    depth_field="max_k",
    quick=True,
    direction="any",
)
def _run_k_induction(
    netlist: Netlist, options: KInductionOptions
) -> VerificationResult:
    return k_induction(
        netlist,
        max_k=options.max_k,
        unique_states=options.unique_states,
        preimage_folds=options.preimage_folds,
        quantify_options=options.quantify_options,
    )


def _run_backward_reachability(
    netlist: Netlist, options: ReachOptions
) -> VerificationResult:
    return BackwardReachability(netlist, options).run()


# One runner, three registrations: the allsat/hybrid variants differ
# only in the elimination mode their name forces.
register_engine(
    name="reach_aig",
    summary="the paper's engine: backward AIG traversal with "
    "circuit-based quantification",
    options_class=ReachOptions,
    depth_field="max_iterations",
)(_run_backward_reachability)

register_engine(
    name="reach_aig_allsat",
    summary="backward AIG traversal, all-SAT pre-image "
    "(Ganai-style enumeration baseline)",
    options_class=ReachOptions,
    depth_field="max_iterations",
    forced_options={"input_elimination": "allsat"},
    variant_of="reach_aig",
)(_run_backward_reachability)

register_engine(
    name="reach_aig_hybrid",
    summary="backward AIG traversal, partial circuit quantification "
    "with all-SAT on the residual (the Section-4 combination)",
    options_class=ReachOptions,
    depth_field="max_iterations",
    forced_options={"input_elimination": "hybrid"},
    variant_of="reach_aig",
)(_run_backward_reachability)


@register_engine(
    name="reach_aig_fwd",
    summary="forward AIG traversal; post-images, hardest "
    "quantification load",
    options_class=ForwardReachOptions,
    depth_field="max_iterations",
    direction="forward",
)
def _run_reach_aig_fwd(
    netlist: Netlist, options: ForwardReachOptions
) -> VerificationResult:
    return ForwardReachability(netlist, options).run()


@register_engine(
    name="reach_bdd",
    summary="backward BDD traversal (the canonical baseline)",
    options_class=BddReachOptions,
    depth_field="max_iterations",
)
def _run_reach_bdd(
    netlist: Netlist, options: BddReachOptions
) -> VerificationResult:
    return bdd_backward_reachability(netlist, options=options)


@register_engine(
    name="reach_bdd_fwd",
    summary="forward BDD traversal with the scheduled partitioned image",
    options_class=BddReachOptions,
    depth_field="max_iterations",
    direction="forward",
)
def _run_reach_bdd_fwd(
    netlist: Netlist, options: BddReachOptions
) -> VerificationResult:
    return bdd_forward_reachability(netlist, options=options)


@register_engine(
    name="itp",
    summary="McMillan interpolation: unbounded proofs from BMC "
    "refutations, no BDDs and no explicit quantification",
    options_class=ItpOptions,
    depth_field="max_depth",
    direction="forward",
)
def _run_itp(netlist: Netlist, options: ItpOptions) -> VerificationResult:
    from repro.itp.engine import interpolation_reachability

    return interpolation_reachability(netlist, options)


@register_engine(
    name="pdr",
    summary="IC3/PDR: incremental frame strengthening with certified "
    "inductive invariants; the deep control-logic specialist",
    options_class=PdrOptions,
    depth_field="max_frames",
    direction="forward",
)
def _run_pdr(netlist: Netlist, options: PdrOptions) -> VerificationResult:
    from repro.pdr.engine import pdr_reachability

    return pdr_reachability(netlist, options)


@register_engine(
    name="cnc",
    summary="cube and conquer: lookahead gate splitting over one deep "
    "unrolling, leaf cubes conquered on a multiprocessing pool",
    options_class=CncOptions,
    depth_field="max_depth",
    complete=False,
    direction="forward",
)
def _run_cnc(netlist: Netlist, options: CncOptions) -> VerificationResult:
    from repro.cnc.engine import cnc_verify

    return cnc_verify(netlist, options)


@register_engine(
    name="portfolio",
    summary="races the other engines; first validated verdict wins",
    options_class=PortfolioOptions,
    depth_field="max_depth",
    direction="any",
    composite=True,
)
def _run_portfolio(
    netlist: Netlist, options: PortfolioOptions
) -> VerificationResult:
    from repro.portfolio.api import portfolio_verify

    return portfolio_verify(
        netlist,
        max_depth=options.max_depth,
        engines=options.engines,
        policy=options.policy,
        budget=options.budget,
        jobs=options.jobs,
        cache=options.cache,
        fraig_preprocess=options.fraig_preprocess,
        stats=options.stats,
        engine_options=options.engine_options,
        on_event=options.on_event,
    )


def verify(
    netlist: Netlist,
    method: str = "reach_aig",
    max_depth: int = 100,
    trace: object = None,
    **options: object,
) -> VerificationResult:
    """Run one verification engine on a netlist.

    ``method`` names any engine in the registry
    (:func:`repro.api.engine_names` enumerates them).  ``max_depth``
    bounds BMC depth / induction k / traversal iterations.  Extra keyword
    options populate the engine's option dataclass (or pass a ready-made
    object as ``options=...``).  Traces of FAILED results are
    replay-validated.  ``method="portfolio"`` races several engines via
    :func:`repro.portfolio.portfolio_verify`.

    ``trace`` turns on the :mod:`repro.obs` instrumentation for the
    duration of the call: pass ``True`` to collect spans/samples into a
    fresh :class:`repro.obs.Tracer` (exposed as ``result.tracer``), a
    ``str``/``Path`` to additionally write a Chrome ``trace_event`` JSON
    file there, or a ready-made ``Tracer`` to record into.  When obs is
    already enabled process-wide the active tracer is reused.  Left at
    ``None`` (the default) the engines run with zero instrumentation
    cost.

    For budgeted, observable, batched runs use
    :class:`repro.api.Session`; this function remains the thin
    single-call path.
    """
    if trace is None or trace is False:
        # Fast path: still wrap in a root span when obs is already on
        # (e.g. inside a portfolio worker forwarding to its parent).
        if not _obs.ENABLED:
            return get_engine(method).verify(
                netlist, max_depth=max_depth, **options
            )
        with _obs.span("mc.verify", "engine", engine=method,
                       netlist=netlist.name):
            return get_engine(method).verify(
                netlist, max_depth=max_depth, **options
            )
    return _verify_traced(netlist, method, max_depth, trace, options)


def _verify_traced(
    netlist: Netlist,
    method: str,
    max_depth: int,
    trace: object,
    options: dict,
) -> VerificationResult:
    from repro import obs

    path: pathlib.Path | None = None
    tracer: obs.Tracer | None = None
    if isinstance(trace, obs.Tracer):
        tracer = trace
    elif isinstance(trace, (str, pathlib.Path)):
        path = pathlib.Path(trace)
    elif trace is not True:
        raise TypeError(
            f"trace must be a Tracer, a path, or True, got {trace!r}"
        )
    was_enabled = obs.is_enabled()
    active = obs.enable(tracer)
    try:
        with active.span("mc.verify", category="engine", engine=method,
                         netlist=netlist.name) as root:
            result = get_engine(method).verify(
                netlist, max_depth=max_depth, **options
            )
            root.set(status=result.status.value,
                     iterations=result.iterations)
    finally:
        if not was_enabled:
            obs.disable()
    if path is not None:
        active.write_chrome_trace(path)
    result.tracer = active
    return result
