"""Unified verification front-end.

``verify(netlist, method=...)`` dispatches to every engine in the package
with one calling convention, which is what the examples and the benchmark
harness use.  Counterexample traces are validated by replay before being
returned — an engine producing a bogus trace is a bug, not a result.
"""

from __future__ import annotations

import dataclasses

from repro.circuits.netlist import Netlist
from repro.errors import ModelCheckingError
from repro.mc.bmc import bmc
from repro.mc.induction import k_induction
from repro.mc.reach_aig import BackwardReachability, ReachOptions
from repro.mc.reach_aig_fwd import ForwardReachability, ForwardReachOptions
from repro.mc.reach_bdd import (
    BddReachOptions,
    bdd_backward_reachability,
    bdd_forward_reachability,
)
from repro.mc.result import Status, VerificationResult

_METHODS = (
    "reach_aig",
    "reach_aig_fwd",
    "reach_aig_allsat",
    "reach_aig_hybrid",
    "reach_bdd",
    "reach_bdd_fwd",
    "bmc",
    "k_induction",
    "portfolio",
)

# The allsat/hybrid methods are reach_aig with a forced elimination mode.
_REACH_MODES = {
    "reach_aig": {},
    "reach_aig_allsat": {"input_elimination": "allsat"},
    "reach_aig_hybrid": {"input_elimination": "hybrid"},
}


def _reach_options(
    options_class: type,
    max_depth: int,
    forced: dict,
    options: dict,
):
    """One normalization for every reach branch.

    Callers either pass a ready-made ``options=...`` object (whose
    ``max_iterations`` is respected, with the method's forced fields
    overriding) or loose keyword options merged into a fresh object.
    """
    provided = options.pop("options", None)
    if provided is not None:
        if options:
            raise ModelCheckingError(
                f"pass either options=... or loose keywords, not both: "
                f"{sorted(options)}"
            )
        return (
            dataclasses.replace(provided, **forced) if forced else provided
        )
    return options_class(max_iterations=max_depth, **forced, **options)


def verify(
    netlist: Netlist,
    method: str = "reach_aig",
    max_depth: int = 100,
    **options: object,
) -> VerificationResult:
    """Run one verification engine on a netlist.

    ``max_depth`` bounds BMC depth / induction k / traversal iterations.
    Extra keyword options are forwarded to the engine.  Traces of FAILED
    results are replay-validated.  ``method="portfolio"`` races several
    engines via :func:`repro.portfolio.portfolio_verify` (extra keywords
    configure the portfolio).
    """
    if method not in _METHODS:
        raise ModelCheckingError(
            f"unknown method {method!r}; choose from {_METHODS}"
        )
    if method == "portfolio":
        from repro.portfolio.api import portfolio_verify

        result = portfolio_verify(netlist, max_depth=max_depth, **options)
    elif method in _REACH_MODES:
        reach_options = _reach_options(
            ReachOptions, max_depth, _REACH_MODES[method], options
        )
        result = BackwardReachability(netlist, reach_options).run()
    elif method == "reach_aig_fwd":
        fwd_options = _reach_options(
            ForwardReachOptions, max_depth, {}, options
        )
        result = ForwardReachability(netlist, fwd_options).run()
    elif method in ("reach_bdd", "reach_bdd_fwd"):
        bdd_options = _reach_options(
            BddReachOptions, max_depth, {}, options
        )
        runner = (
            bdd_backward_reachability
            if method == "reach_bdd"
            else bdd_forward_reachability
        )
        result = runner(netlist, options=bdd_options)
    elif method == "bmc":
        result = bmc(netlist, max_depth=max_depth, **options)
    else:
        result = k_induction(netlist, max_k=max_depth, **options)
    if result.status is Status.FAILED and result.trace is not None:
        if not result.trace.validate(netlist):
            raise ModelCheckingError(
                f"{method} produced an invalid counterexample trace"
            )
    return result
