"""Unified verification front-end.

``verify(netlist, method=...)`` dispatches to every engine in the package
with one calling convention, which is what the examples and the benchmark
harness use.  Counterexample traces are validated by replay before being
returned — an engine producing a bogus trace is a bug, not a result.
"""

from __future__ import annotations

from repro.circuits.netlist import Netlist
from repro.errors import ModelCheckingError
from repro.mc.bmc import bmc
from repro.mc.induction import k_induction
from repro.mc.reach_aig import BackwardReachability, ReachOptions
from repro.mc.reach_aig_fwd import ForwardReachability, ForwardReachOptions
from repro.mc.reach_bdd import bdd_backward_reachability, bdd_forward_reachability
from repro.mc.result import Status, VerificationResult

_METHODS = (
    "reach_aig",
    "reach_aig_fwd",
    "reach_aig_allsat",
    "reach_aig_hybrid",
    "reach_bdd",
    "reach_bdd_fwd",
    "bmc",
    "k_induction",
)


def verify(
    netlist: Netlist,
    method: str = "reach_aig",
    max_depth: int = 100,
    **options: object,
) -> VerificationResult:
    """Run one verification engine on a netlist.

    ``max_depth`` bounds BMC depth / induction k / traversal iterations.
    Extra keyword options are forwarded to the engine.  Traces of FAILED
    results are replay-validated.
    """
    if method not in _METHODS:
        raise ModelCheckingError(
            f"unknown method {method!r}; choose from {_METHODS}"
        )
    if method == "reach_aig":
        reach_options = options.pop("options", None) or ReachOptions(
            max_iterations=max_depth, **options
        )
        result = BackwardReachability(netlist, reach_options).run()
    elif method == "reach_aig_fwd":
        fwd_options = options.pop("options", None) or ForwardReachOptions(
            max_iterations=max_depth, **options
        )
        result = ForwardReachability(netlist, fwd_options).run()
    elif method == "reach_aig_allsat":
        result = BackwardReachability(
            netlist,
            ReachOptions(
                max_iterations=max_depth,
                input_elimination="allsat",
                **options,
            ),
        ).run()
    elif method == "reach_aig_hybrid":
        result = BackwardReachability(
            netlist,
            ReachOptions(
                max_iterations=max_depth,
                input_elimination="hybrid",
                **options,
            ),
        ).run()
    elif method == "reach_bdd":
        result = bdd_backward_reachability(
            netlist, max_iterations=max_depth, **options
        )
    elif method == "reach_bdd_fwd":
        result = bdd_forward_reachability(
            netlist, max_iterations=max_depth, **options
        )
    elif method == "bmc":
        result = bmc(netlist, max_depth=max_depth, **options)
    else:
        result = k_induction(netlist, max_k=max_depth, **options)
    if result.status is Status.FAILED and result.trace is not None:
        if not result.trace.validate(netlist):
            raise ModelCheckingError(
                f"{method} produced an invalid counterexample trace"
            )
    return result
