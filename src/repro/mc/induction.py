"""k-induction (Sheeran, Singh, Stålmarck [5]).

Base case: no counterexample of length <= k (incremental BMC).  Step case:
no path of k+1 states, all but the last satisfying P, ending in a
violation — checked without the initial-state constraint.  With
``unique_states`` the path is additionally required to be loop-free, which
makes the method complete (k grows to the recurrence diameter at worst).

Section 4 preprocessing applies as in BMC: folding ``preimage_folds``
pre-images into the target strengthens the violation condition and removes
that many frames of input variables from the induction queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.graph import edge_not
from repro.circuits.netlist import Netlist
from repro.core.images import ImageComputer
from repro.core.quantify import QuantifyOptions
from repro.mc.result import Status, Trace, VerificationResult
from repro.mc.trace import concretize_suffix, find_violation_inputs
from repro.mc.unroll import Unroller
from repro.sat.solver import SolveResult, Solver
from repro.util.stats import StatsBag


@dataclass
class KInductionOptions:
    """Typed configuration of :func:`k_induction` (the engine registry's
    option dataclass for the ``k_induction`` engine)."""

    max_k: int = 100
    unique_states: bool = True
    preimage_folds: int = 0
    quantify_options: QuantifyOptions | None = None


def k_induction(
    netlist: Netlist,
    max_k: int,
    unique_states: bool = True,
    preimage_folds: int = 0,
    quantify_options: QuantifyOptions | None = None,
) -> VerificationResult:
    """Prove the property by k-induction or find a counterexample.

    Returns PROVED, FAILED (with trace) or UNKNOWN when ``max_k`` is
    reached inconclusively.
    """
    netlist.validate()
    stats = StatsBag()
    options = (
        quantify_options
        if quantify_options is not None
        else QuantifyOptions.preset("full")
    )
    targets = [edge_not(netlist.property_edge)]
    if preimage_folds:
        from repro.mc.bmc import _bad_states

        targets = [_bad_states(netlist, options)]
        computer = ImageComputer(netlist, options=options)
        for _ in range(preimage_folds):
            result = computer.preimage(targets[-1])
            targets.append(result.edge)
        stats.set("fold_target_size", netlist.aig.cone_and_count(targets[-1]))
    target = targets[-1]
    stats.set("folds", preimage_folds)

    # Base solver: initial state asserted; step solver: free first frame.
    base = Unroller(netlist, Solver())
    base.assert_initial_state()
    step = Unroller(netlist, Solver())
    distinct_done: set[tuple[int, int]] = set()

    # Folding skips violation lengths 0..j-1; probe the intermediate fold
    # targets at frame 0 so PROVED remains sound.
    for fold_depth in range(preimage_folds):
        stats.incr("base_sat_calls")
        lit = base.edge_lit_in(base.frame(0), targets[fold_depth])
        if base.solver.solve([lit]) is SolveResult.SAT:
            start = base.read_state(0)
            extra_states, extra_inputs = concretize_suffix(
                netlist, start, targets[: fold_depth + 1]
            )
            all_states = [start] + extra_states
            return VerificationResult(
                status=Status.FAILED,
                engine="k_induction",
                trace=Trace(
                    states=all_states,
                    inputs=extra_inputs,
                    violation_inputs=find_violation_inputs(
                        netlist, all_states[-1]
                    ),
                ),
                iterations=fold_depth,
                stats=stats,
            )

    for k in range(max_k + 1):
        # ---- base: violation reachable in exactly k + folds steps? ----
        stats.incr("base_sat_calls")
        bad_lit = base.edge_lit_in(base.frame(k), target)
        if base.solver.solve([bad_lit]) is SolveResult.SAT:
            states = [base.read_state(i) for i in range(k + 1)]
            inputs = [base.read_inputs(i) for i in range(k)]
            if len(targets) > 1:
                extra_states, extra_inputs = concretize_suffix(
                    netlist, states[-1], targets
                )
                states.extend(extra_states)
                inputs.extend(extra_inputs)
                violation = find_violation_inputs(netlist, states[-1])
            else:
                violation = base.read_inputs(k)
            return VerificationResult(
                status=Status.FAILED,
                engine="k_induction",
                trace=Trace(
                    states=states, inputs=inputs, violation_inputs=violation
                ),
                iterations=k + preimage_folds,
                stats=stats,
            )
        # ---- step: P ... P -> no violation at frame k+1? ----
        # Path frames 0..k satisfy P (and are pairwise distinct when
        # unique_states); frame k+1 violates.  UNSAT proves P invariant.
        stats.incr("step_sat_calls")
        assumptions = []
        for i in range(k + 1):
            assumptions.append(step.property_lit(i))
        bad_step_lit = step.edge_lit_in(step.frame(k + 1), target)
        assumptions.append(bad_step_lit)
        if unique_states:
            # Distinctness is monotone: add only the new pairs.
            for i in range(k + 2):
                for j in range(i + 1, k + 2):
                    if (i, j) not in distinct_done:
                        step.state_distinct_clauses(i, j)
                        distinct_done.add((i, j))
        if step.solver.solve(assumptions) is not SolveResult.SAT:
            stats.set("proved_at_k", k)
            return VerificationResult(
                status=Status.PROVED,
                engine="k_induction",
                iterations=k,
                stats=stats,
            )
    return VerificationResult(
        status=Status.UNKNOWN,
        engine="k_induction",
        iterations=max_k,
        stats=stats,
    )
