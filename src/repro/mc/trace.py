"""Counterexample trace reconstruction helpers.

Backward reachability and pre-image folding both end with an initial (or
unrolled) state known to lie in ``pre^j(bad)``: the concrete input choices
of the remaining ``j`` steps still have to be found.  Each step is a small
SAT problem — fix the current state, ask for inputs steering into the next
distance layer — solved over a throwaway solver.
"""

from __future__ import annotations

from repro.aig.cnf import CnfMapper
from repro.circuits.netlist import Netlist
from repro.core.substitution import preimage_by_substitution
from repro.errors import ModelCheckingError
from repro.sat.solver import SolveResult, Solver


def step_into(
    netlist: Netlist,
    state: dict[int, bool],
    target_edge: int,
) -> tuple[dict[int, bool], dict[int, bool]]:
    """Find inputs taking ``state`` into ``target_edge`` in one step.

    Returns ``(inputs, next_state)``.  Raises if no such input exists —
    callers only invoke this when membership in the pre-image is known.
    """
    aig = netlist.aig
    # target(delta(s, i)) with s fixed must be satisfiable over i, under
    # the environment constraints.
    shifted = preimage_by_substitution(aig, target_edge, netlist.next_functions())
    shifted = aig.and_(shifted, netlist.constraint_edge())
    mapper = CnfMapper(aig, Solver())
    lit = mapper.lit_for(shifted)
    assumptions = [lit]
    for node, value in state.items():
        input_lit = mapper.input_literal(node)
        assumptions.append(input_lit if value else -input_lit)
    if mapper.solver.solve(assumptions) is not SolveResult.SAT:
        raise ModelCheckingError(
            "state claimed to be in the pre-image has no successor in the "
            "target set (engine bug)"
        )
    model = mapper.model_inputs()
    inputs = {
        node: model.get(node, False) for node in netlist.input_nodes
    }
    next_state = netlist.simulate_step(state, inputs)
    return inputs, next_state


def find_violation_inputs(
    netlist: Netlist,
    state: dict[int, bool],
) -> dict[int, bool] | None:
    """Inputs making the property fail *in* ``state`` (None if impossible).

    Needed when the property reads primary inputs: a state can only be
    called bad together with an input vector witnessing the violation.
    """
    aig = netlist.aig
    mapper = CnfMapper(aig, Solver())
    lit = mapper.lit_for(
        aig.and_(netlist.property_edge ^ 1, netlist.constraint_edge())
    )
    assumptions = [lit]
    for node, value in state.items():
        input_lit = mapper.input_literal(node)
        assumptions.append(input_lit if value else -input_lit)
    if mapper.solver.solve(assumptions) is not SolveResult.SAT:
        return None
    model = mapper.model_inputs()
    return {node: model.get(node, False) for node in netlist.input_nodes}


def concretize_suffix(
    netlist: Netlist,
    state: dict[int, bool],
    targets: list[int],
) -> tuple[list[dict[int, bool]], list[dict[int, bool]]]:
    """Walk a state through the distance layers down to the bad states.

    ``targets[0]`` is the bad-state set and ``targets[j]`` its j-step
    pre-image; ``state`` must satisfy ``targets[-1]``.  Returns the suffix
    ``(states, inputs)`` excluding the given state itself.
    """
    states: list[dict[int, bool]] = []
    inputs: list[dict[int, bool]] = []
    current = dict(state)
    for layer in range(len(targets) - 2, -1, -1):
        step_inputs, current = step_into(netlist, current, targets[layer])
        inputs.append(step_inputs)
        states.append(dict(current))
    return states, inputs


def trace_from_layers(
    netlist: Netlist,
    initial_state: dict[int, bool],
    layers: list[int],
) -> "Trace":
    """Build a full trace from backward-reachability distance layers.

    ``layers[k]`` holds states at backward distance k from the bad states
    (``layers[0]`` = bad).  ``initial_state`` must satisfy some layer; the
    deepest (largest-k) layer containing it is located and walked down.
    """
    from repro.aig.simulate import eval_edge
    from repro.mc.result import Trace

    aig = netlist.aig
    member_layers = [
        k for k, edge in enumerate(layers)
        if eval_edge(aig, edge, initial_state)
    ]
    if not member_layers:
        raise ModelCheckingError("initial state is not in any layer")
    start = min(member_layers)  # shortest counterexample
    suffix_states, suffix_inputs = concretize_suffix(
        netlist, initial_state, layers[: start + 1]
    )
    return Trace(
        states=[dict(initial_state)] + suffix_states,
        inputs=suffix_inputs,
    )
