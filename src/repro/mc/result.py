"""Verification outcomes shared by every engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.circuits.netlist import Netlist
from repro.util.stats import StatsBag


class Status(enum.Enum):
    """Verdict of a verification run."""

    PROVED = "proved"          # the invariant holds in all reachable states
    FAILED = "failed"          # a counterexample trace exists
    UNKNOWN = "unknown"        # resource limit / incomplete method

    def __bool__(self) -> bool:
        return self is Status.PROVED


@dataclass
class Trace:
    """A concrete counterexample: states and the inputs between them.

    ``states[0]`` is the initial state; ``states[-1]`` violates the
    property.  ``inputs[k]`` drives the transition from ``states[k]`` to
    ``states[k+1]`` (so ``len(inputs) == len(states) - 1``).  When the
    property reads primary inputs (e.g. an arbiter judged on its request
    lines), ``violation_inputs`` carries the input vector that exhibits
    the violation in the final state.
    """

    states: list[dict[int, bool]]
    inputs: list[dict[int, bool]]
    violation_inputs: dict[int, bool] | None = None

    @property
    def depth(self) -> int:
        return len(self.states) - 1

    def validate(self, netlist: Netlist) -> bool:
        """Replay the trace on the netlist; True iff it is a real violation.

        Besides exact state replay, every step (including the violating
        one) must satisfy the netlist's environment constraints — a trace
        using forbidden inputs is not a counterexample.
        """
        if len(self.inputs) != len(self.states) - 1:
            return False
        init = netlist.init_assignment()
        if any(self.states[0].get(n) != v for n, v in init.items()):
            return False
        current = dict(self.states[0])
        for step_inputs, claimed in zip(self.inputs, self.states[1:]):
            if not netlist.constraints_hold(current, step_inputs):
                return False
            current = netlist.simulate_step(current, step_inputs)
            if any(current.get(n) != claimed.get(n) for n in current):
                return False
        if self.violation_inputs is not None and not netlist.constraints_hold(
            self.states[-1], self.violation_inputs
        ):
            return False
        return not netlist.property_holds(
            self.states[-1], self.violation_inputs
        )


@dataclass
class VerificationResult:
    """What an engine reports back."""

    status: Status
    engine: str
    trace: Trace | None = None
    iterations: int = 0            # traversal steps / BMC depth / k
    stats: StatsBag = field(default_factory=StatsBag)

    @property
    def proved(self) -> bool:
        return self.status is Status.PROVED

    @property
    def failed(self) -> bool:
        return self.status is Status.FAILED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VerificationResult({self.status.value}, engine={self.engine}, "
            f"iterations={self.iterations})"
        )
