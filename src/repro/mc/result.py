"""Verification outcomes shared by every engine.

Besides the in-memory types, this module owns their wire format:
:meth:`Trace.to_dict` / :meth:`VerificationResult.to_dict` produce
JSON-serializable payloads that round-trip through
:meth:`Trace.from_dict` / :meth:`VerificationResult.from_dict`.  Two
encodings exist for assignments:

* ``"nodes"`` (the default) keys assignments by AIG node id — faithful
  within one process/manager;
* ``"positional"`` (``netlist=`` given) encodes assignments as
  bit-strings over the netlist's latch and input registration order —
  stable across AIG node renumbering, which is what the portfolio's
  structural-hash result cache needs: a record written by one manager
  must decode into a valid trace for a differently-numbered manager of
  the same circuit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.circuits.netlist import Netlist
from repro.util.stats import StatsBag

_MISSING = "x"


def _encode_bits(
    assignment: Mapping[int, bool] | None, nodes: list[int]
) -> str | None:
    if assignment is None:
        return None
    return "".join(
        _MISSING if node not in assignment else str(int(assignment[node]))
        for node in nodes
    )


def _decode_bits(bits: str | None, nodes: list[int]) -> dict[int, bool] | None:
    if bits is None:
        return None
    if len(bits) != len(nodes):
        raise ValueError("bit-string length does not match netlist")
    return {
        node: bit == "1"
        for node, bit in zip(nodes, bits)
        if bit != _MISSING
    }


def _encode_nodes(
    assignment: Mapping[int, bool] | None,
) -> dict[str, bool] | None:
    if assignment is None:
        return None
    return {str(node): bool(value) for node, value in assignment.items()}


def _decode_nodes(
    payload: Mapping[str, bool] | None,
) -> dict[int, bool] | None:
    if payload is None:
        return None
    return {int(node): bool(value) for node, value in payload.items()}


class Status(enum.Enum):
    """Verdict of a verification run."""

    PROVED = "proved"          # the invariant holds in all reachable states
    FAILED = "failed"          # a counterexample trace exists
    UNKNOWN = "unknown"        # resource limit / incomplete method

    @property
    def is_conclusive(self) -> bool:
        """True for PROVED and FAILED, False for UNKNOWN."""
        return self is not Status.UNKNOWN

    def __bool__(self) -> bool:
        # ``if result.status:`` used to be truthy only for PROVED, which
        # silently conflated FAILED with UNKNOWN.  The ambiguity is now a
        # loud error instead of a wrong branch.
        raise TypeError(
            "Status truthiness is ambiguous; use status.is_conclusive, "
            "or the result's .proved / .failed properties"
        )


@dataclass
class Trace:
    """A concrete counterexample: states and the inputs between them.

    ``states[0]`` is the initial state; ``states[-1]`` violates the
    property.  ``inputs[k]`` drives the transition from ``states[k]`` to
    ``states[k+1]`` (so ``len(inputs) == len(states) - 1``).  When the
    property reads primary inputs (e.g. an arbiter judged on its request
    lines), ``violation_inputs`` carries the input vector that exhibits
    the violation in the final state.
    """

    states: list[dict[int, bool]]
    inputs: list[dict[int, bool]]
    violation_inputs: dict[int, bool] | None = None

    @property
    def depth(self) -> int:
        return len(self.states) - 1

    def validate(self, netlist: Netlist) -> bool:
        """Replay the trace on the netlist; True iff it is a real violation.

        Besides exact state replay, every step (including the violating
        one) must satisfy the netlist's environment constraints — a trace
        using forbidden inputs is not a counterexample.
        """
        if len(self.inputs) != len(self.states) - 1:
            return False
        init = netlist.init_assignment()
        if any(self.states[0].get(n) != v for n, v in init.items()):
            return False
        current = dict(self.states[0])
        for step_inputs, claimed in zip(self.inputs, self.states[1:]):
            if not netlist.constraints_hold(current, step_inputs):
                return False
            current = netlist.simulate_step(current, step_inputs)
            if any(current.get(n) != claimed.get(n) for n in current):
                return False
        if self.violation_inputs is not None and not netlist.constraints_hold(
            self.states[-1], self.violation_inputs
        ):
            return False
        return not netlist.property_holds(
            self.states[-1], self.violation_inputs
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self, netlist: Netlist | None = None) -> dict:
        """JSON-serializable form; positional over ``netlist`` if given."""
        if netlist is None:
            return {
                "format": "nodes",
                "states": [_encode_nodes(state) for state in self.states],
                "inputs": [_encode_nodes(step) for step in self.inputs],
                "violation_inputs": _encode_nodes(self.violation_inputs),
            }
        latches = netlist.latch_nodes
        inputs = netlist.input_nodes
        return {
            "format": "positional",
            "states": [_encode_bits(state, latches) for state in self.states],
            "inputs": [_encode_bits(step, inputs) for step in self.inputs],
            "violation_inputs": _encode_bits(self.violation_inputs, inputs),
        }

    @classmethod
    def from_dict(
        cls, payload: dict, netlist: Netlist | None = None
    ) -> "Trace":
        """Rebuild a trace serialized by :meth:`to_dict`.

        Positional payloads need the ``netlist`` they are to be decoded
        against; node-keyed payloads decode standalone.
        """
        fmt = payload.get("format")
        if fmt is None:
            # Records written before the "format" key existed are always
            # positional bit-strings; fresh node-keyed payloads carry
            # dicts.  Infer from the state entries.
            fmt = (
                "positional"
                if any(isinstance(s, str) for s in payload["states"])
                else "nodes"
            )
        if fmt == "positional":
            if netlist is None:
                raise ValueError(
                    "a positional trace payload needs a netlist to decode"
                )
            latches = netlist.latch_nodes
            inputs = netlist.input_nodes
            return cls(
                states=[
                    _decode_bits(bits, latches) for bits in payload["states"]
                ],
                inputs=[
                    _decode_bits(bits, inputs) for bits in payload["inputs"]
                ],
                violation_inputs=_decode_bits(
                    payload.get("violation_inputs"), inputs
                ),
            )
        if fmt != "nodes":
            raise ValueError(f"unknown trace payload format {fmt!r}")
        return cls(
            states=[_decode_nodes(state) for state in payload["states"]],
            inputs=[_decode_nodes(step) for step in payload["inputs"]],
            violation_inputs=_decode_nodes(payload.get("violation_inputs")),
        )


@dataclass
class InvariantCertificate:
    """An inductive strengthening proving a PROVED verdict.

    ``clauses`` is a CNF over the latch variables: each literal is a
    signed latch node id (``+node`` = latch true, ``-node`` = latch
    false).  The conjunction ``Inv`` of the clauses is the certificate's
    claim, checkable by anyone with three SAT queries:

    * initiation — ``I ∧ ¬Inv`` is UNSAT (the initial state satisfies
      every clause);
    * consecution — ``Inv ∧ C ∧ T ∧ ¬Inv'`` is UNSAT (one constrained
      step stays inside Inv);
    * safety — ``Inv ∧ C ∧ ¬P`` is UNSAT (Inv excludes every bad state).

    :func:`repro.pdr.check_certificate` runs exactly those queries on a
    fresh solver; the ``pdr`` engine does so before returning any PROVED
    result (``PdrOptions.certify``).  An empty clause list is the trivial
    certificate ``Inv = TRUE`` (the property can never be violated by any
    state at all).
    """

    clauses: list[tuple[int, ...]]
    level: int = 0                 # the frame the fix-point closed at

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def to_dict(self, netlist: Netlist | None = None) -> dict:
        """JSON-serializable form; positional over ``netlist`` if given.

        Positional literals are signed 1-based latch *positions* in the
        netlist's registration order — stable across AIG renumbering,
        matching the trace encoding the result cache relies on.
        """
        if netlist is None:
            return {
                "format": "nodes",
                "level": self.level,
                "clauses": [list(clause) for clause in self.clauses],
            }
        position = {
            node: k + 1 for k, node in enumerate(netlist.latch_nodes)
        }
        return {
            "format": "positional",
            "level": self.level,
            "clauses": [
                [
                    position[abs(lit)] if lit > 0 else -position[abs(lit)]
                    for lit in clause
                ]
                for clause in self.clauses
            ],
        }

    @classmethod
    def from_dict(
        cls, payload: dict, netlist: Netlist | None = None
    ) -> "InvariantCertificate":
        fmt = payload.get("format", "nodes")
        clauses = payload["clauses"]
        if fmt == "positional":
            if netlist is None:
                raise ValueError(
                    "a positional certificate payload needs a netlist"
                )
            latches = netlist.latch_nodes
            decoded = [
                tuple(
                    latches[abs(lit) - 1] if lit > 0
                    else -latches[abs(lit) - 1]
                    for lit in clause
                )
                for clause in clauses
            ]
        elif fmt == "nodes":
            decoded = [tuple(int(lit) for lit in clause) for clause in clauses]
        else:
            raise ValueError(f"unknown certificate payload format {fmt!r}")
        return cls(clauses=decoded, level=int(payload.get("level", 0)))


@dataclass
class VerificationResult:
    """What an engine reports back."""

    status: Status
    engine: str
    trace: Trace | None = None
    iterations: int = 0            # traversal steps / BMC depth / k
    stats: StatsBag = field(default_factory=StatsBag)
    certificate: InvariantCertificate | None = None

    @property
    def proved(self) -> bool:
        return self.status is Status.PROVED

    @property
    def failed(self) -> bool:
        return self.status is Status.FAILED

    def to_dict(self, netlist: Netlist | None = None) -> dict:
        """JSON-serializable form; the trace encodes positionally over
        ``netlist`` when one is given (see :meth:`Trace.to_dict`)."""
        return {
            "status": self.status.value,
            "engine": self.engine,
            "iterations": self.iterations,
            "trace": (
                self.trace.to_dict(netlist) if self.trace is not None else None
            ),
            "certificate": (
                self.certificate.to_dict(netlist)
                if self.certificate is not None
                else None
            ),
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(
        cls, payload: dict, netlist: Netlist | None = None
    ) -> "VerificationResult":
        """Rebuild a result serialized by :meth:`to_dict`."""
        trace = None
        if payload.get("trace") is not None:
            trace = Trace.from_dict(payload["trace"], netlist)
        certificate = None
        if payload.get("certificate") is not None:
            certificate = InvariantCertificate.from_dict(
                payload["certificate"], netlist
            )
        stats_payload = payload.get("stats") or {}
        if "values" not in stats_payload:
            # Pre-"format" cache records stored a flat value map with the
            # gauge names alongside it at the top level.
            stats_payload = {
                "values": stats_payload,
                "gauges": payload.get("gauges", []),
            }
        return cls(
            status=Status(payload["status"]),
            engine=payload["engine"],
            trace=trace,
            iterations=int(payload.get("iterations", 0)),
            stats=StatsBag.from_dict(stats_payload),
            certificate=certificate,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VerificationResult({self.status.value}, engine={self.engine}, "
            f"iterations={self.iterations})"
        )
