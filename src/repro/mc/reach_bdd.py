"""BDD-based reachability — the canonical-representation baseline.

This is "traditional methodology" the paper positions itself against:
identical breadth-first traversals, but with state sets as ROBDDs.
Backward traversal mirrors :mod:`repro.mc.reach_aig` (pre-image via vector
composition of the next-state functions, then input quantification);
forward traversal builds the relational product with next-state variables.
BDD peak sizes are reported so experiment T4 can contrast them with the
AIG engine's circuit sizes.
"""

from __future__ import annotations

from repro.bdd.from_aig import aig_to_bdd
from repro.bdd.manager import BDD_FALSE, BddManager
from repro.circuits.netlist import Netlist
from repro.errors import BddLimitExceeded, ModelCheckingError
from repro.mc.result import Status, Trace, VerificationResult
from repro.util.stats import StatsBag


class _BddModel:
    """Netlist lifted into a BDD manager.

    Variable order: latches first (interleaving-friendly creation order),
    then primary inputs, then next-state placeholders for forward images.
    """

    def __init__(self, netlist: Netlist, max_nodes: int | None) -> None:
        netlist.validate()
        self.netlist = netlist
        self.manager = BddManager(max_nodes=max_nodes)
        self.var_of_node: dict[int, int] = {}
        for node in netlist.latch_nodes:
            self.var_of_node[node] = len(self.var_of_node)
            self.manager.new_var(f"s{node}")
        for node in netlist.input_nodes:
            self.var_of_node[node] = len(self.var_of_node)
            self.manager.new_var(f"i{node}")
        self.next_var_of_latch: dict[int, int] = {}
        for node in netlist.latch_nodes:
            self.next_var_of_latch[node] = len(self.var_of_node) + len(
                self.next_var_of_latch
            )
            self.manager.new_var(f"n{node}")
        cache: dict[int, int] = {}
        self.delta = {
            node: aig_to_bdd(
                netlist.aig, fn, self.manager, self.var_of_node, cache
            )
            for node, fn in netlist.next_functions().items()
        }
        self.input_vars = [self.var_of_node[n] for n in netlist.input_nodes]
        self.state_vars = [self.var_of_node[n] for n in netlist.latch_nodes]
        # Environment constraints gate transitions and violations alike.
        self.constraint = aig_to_bdd(
            netlist.aig,
            netlist.constraint_edge(),
            self.manager,
            self.var_of_node,
            cache,
        )
        # bad_raw may read inputs; bad is the pure-state projection
        # (only constraint-satisfying input patterns count).
        self.bad_raw = self.manager.and_(
            aig_to_bdd(
                netlist.aig,
                netlist.property_edge ^ 1,
                self.manager,
                self.var_of_node,
                cache,
            ),
            self.constraint,
        )
        self.bad = self.manager.exists(self.bad_raw, self.input_vars)
        self.init = self.manager.cube(
            {
                self.var_of_node[node]: value
                for node, value in netlist.init_assignment().items()
            }
        )

    def preimage(self, state_set: int) -> int:
        """exists i . C(s, i) AND S(delta(s, i)) by composition."""
        composed = self.manager.compose(
            state_set,
            {self.var_of_node[node]: fn for node, fn in self.delta.items()},
        )
        composed = self.manager.and_(composed, self.constraint)
        return self.manager.exists(composed, self.input_vars)

    def preimage_into(self, layer: int, state: dict[int, bool]) -> int:
        """BDD over the input variables: choices taking ``state`` into layer."""
        composed = self.manager.compose(
            layer,
            {self.var_of_node[node]: fn for node, fn in self.delta.items()},
        )
        composed = self.manager.and_(composed, self.constraint)
        for node, value in state.items():
            composed = self.manager.restrict(
                composed, self.var_of_node[node], value
            )
        return composed

    def postimage(self, state_set: int) -> int:
        """Relational image with next-state variables, then rename back."""
        manager = self.manager
        product = manager.and_(state_set, self.constraint)
        for node, fn in self.delta.items():
            product = manager.and_(
                product,
                manager.xnor(manager.var_node(self.next_var_of_latch[node]), fn),
            )
        product = manager.exists(product, self.state_vars + self.input_vars)
        return manager.rename(
            product,
            {
                self.next_var_of_latch[node]: self.var_of_node[node]
                for node in self.delta
            },
        )


def _state_from_cube(
    model: _BddModel, cube: dict[int, bool]
) -> dict[int, bool]:
    return {
        node: cube.get(model.var_of_node[node], False)
        for node in model.netlist.latch_nodes
    }


def bdd_backward_reachability(
    netlist: Netlist,
    max_iterations: int = 10_000,
    max_nodes: int | None = None,
) -> VerificationResult:
    """Backward BDD traversal; same verdict contract as the AIG engine.

    Raises :class:`~repro.errors.BddLimitExceeded` when ``max_nodes`` is
    exceeded — the memory-explosion outcome the paper's method avoids.
    """
    stats = StatsBag()
    model = _BddModel(netlist, max_nodes)
    manager = model.manager
    layers = [model.bad]
    reached = model.bad
    frontier = model.bad
    iteration = 0
    if manager.and_(model.init, model.bad) != BDD_FALSE:
        return _bdd_counterexample(model, layers, stats, iteration)
    while iteration < max_iterations:
        iteration += 1
        preimage = model.preimage(frontier)
        new_frontier = manager.and_(preimage, manager.not_(reached))
        stats.max("peak_frontier_bdd", manager.size(new_frontier))
        stats.max("peak_reached_bdd", manager.size(reached))
        stats.set("manager_nodes", manager.num_nodes)
        if new_frontier == BDD_FALSE:
            stats.set("iterations", iteration)
            return VerificationResult(
                status=Status.PROVED,
                engine="reach_bdd",
                iterations=iteration,
                stats=stats,
            )
        layers.append(new_frontier)
        reached = manager.or_(reached, new_frontier)
        frontier = new_frontier
        if manager.and_(model.init, new_frontier) != BDD_FALSE:
            stats.set("iterations", iteration)
            return _bdd_counterexample(model, layers, stats, iteration)
    return VerificationResult(
        status=Status.UNKNOWN,
        engine="reach_bdd",
        iterations=max_iterations,
        stats=stats,
    )


def _bdd_counterexample(
    model: _BddModel,
    layers: list[int],
    stats: StatsBag,
    iterations: int,
) -> VerificationResult:
    """Replay from init through the distance layers, choosing inputs."""
    manager = model.manager
    netlist = model.netlist
    state = dict(netlist.init_assignment())
    states = [dict(state)]
    inputs: list[dict[int, bool]] = []
    # Find the deepest layer containing init = distance to violation.
    containing = [
        k
        for k, layer in enumerate(layers)
        if manager.evaluate(
            layer, {model.var_of_node[n]: v for n, v in state.items()}
        )
    ]
    if not containing:
        raise ModelCheckingError("init not in any layer (engine bug)")
    distance = min(containing)
    for layer_index in range(distance - 1, -1, -1):
        # Choose inputs steering into the next layer: satisfy
        # layer(delta(s, i)) with s fixed.
        target = model.preimage_into(layers[layer_index], state)
        cube = manager.pick_cube(target)
        if cube is None:
            raise ModelCheckingError("trace reconstruction failed")
        step_inputs = {
            node: cube.get(model.var_of_node[node], False)
            for node in netlist.input_nodes
        }
        inputs.append(step_inputs)
        state = netlist.simulate_step(state, step_inputs)
        states.append(dict(state))
    # Witness inputs for an input-reading property in the final state.
    restricted = model.bad_raw
    for node, value in state.items():
        restricted = manager.restrict(
            restricted, model.var_of_node[node], value
        )
    witness_cube = manager.pick_cube(restricted)
    violation = None
    if witness_cube is not None:
        violation = {
            node: witness_cube.get(model.var_of_node[node], False)
            for node in netlist.input_nodes
        }
    return VerificationResult(
        status=Status.FAILED,
        engine="reach_bdd",
        trace=Trace(
            states=states, inputs=inputs, violation_inputs=violation
        ),
        iterations=iterations,
        stats=stats,
    )


def bdd_forward_reachability(
    netlist: Netlist,
    max_iterations: int = 10_000,
    max_nodes: int | None = None,
) -> VerificationResult:
    """Forward BDD traversal with onion-ring trace reconstruction."""
    stats = StatsBag()
    model = _BddModel(netlist, max_nodes)
    manager = model.manager
    rings = [model.init]
    reached = model.init
    frontier = model.init
    iteration = 0
    if manager.and_(frontier, model.bad) != BDD_FALSE:
        return _bdd_forward_counterexample(model, rings, stats)
    while iteration < max_iterations:
        iteration += 1
        image = model.postimage(frontier)
        new_frontier = manager.and_(image, manager.not_(reached))
        stats.max("peak_frontier_bdd", manager.size(new_frontier))
        stats.max("peak_reached_bdd", manager.size(reached))
        if new_frontier == BDD_FALSE:
            stats.set("iterations", iteration)
            return VerificationResult(
                status=Status.PROVED,
                engine="reach_bdd_fwd",
                iterations=iteration,
                stats=stats,
            )
        rings.append(new_frontier)
        reached = manager.or_(reached, new_frontier)
        frontier = new_frontier
        if manager.and_(new_frontier, model.bad) != BDD_FALSE:
            stats.set("iterations", iteration)
            return _bdd_forward_counterexample(model, rings, stats)
    return VerificationResult(
        status=Status.UNKNOWN,
        engine="reach_bdd_fwd",
        iterations=max_iterations,
        stats=stats,
    )


def _bdd_forward_counterexample(
    model: _BddModel,
    rings: list[int],
    stats: StatsBag,
) -> VerificationResult:
    """Pick a bad state in the last ring, walk predecessors back to init."""
    manager = model.manager
    netlist = model.netlist
    bad_cube = manager.pick_cube(manager.and_(rings[-1], model.bad))
    if bad_cube is None:
        raise ModelCheckingError("bad ring is empty (engine bug)")
    states = [_state_from_cube(model, bad_cube)]
    inputs: list[dict[int, bool]] = []
    for ring_index in range(len(rings) - 2, -1, -1):
        # Predecessors in the previous ring: ring(s) AND C(s, i) AND
        # delta(s, i) == target, solved by one cube pick.
        target = states[0]
        predecessors = manager.and_(rings[ring_index], model.constraint)
        for node, fn in model.delta.items():
            literal = fn if target[node] else manager.not_(fn)
            predecessors = manager.and_(predecessors, literal)
        cube = manager.pick_cube(predecessors)
        if cube is None:
            raise ModelCheckingError(
                "onion-ring state has no predecessor (engine bug)"
            )
        states.insert(0, _state_from_cube(model, cube))
        inputs.insert(
            0,
            {
                node: cube.get(model.var_of_node[node], False)
                for node in netlist.input_nodes
            },
        )
    # Witness inputs for an input-reading property in the final state.
    restricted = model.bad_raw
    for node, value in states[-1].items():
        restricted = manager.restrict(
            restricted, model.var_of_node[node], value
        )
    witness_cube = manager.pick_cube(restricted)
    violation = None
    if witness_cube is not None:
        violation = {
            node: witness_cube.get(model.var_of_node[node], False)
            for node in netlist.input_nodes
        }
    return VerificationResult(
        status=Status.FAILED,
        engine="reach_bdd_fwd",
        trace=Trace(
            states=states, inputs=inputs, violation_inputs=violation
        ),
        iterations=len(rings) - 1,
        stats=stats,
    )
