"""BDD-based reachability with scheduled partitioned image computation.

The seed version of this engine was the "traditional methodology" baseline:
conjoin the entire transition relation, then quantify state and input
variables one at a time.  It now practices what the paper preaches — *when*
you quantify matters as much as *what* you quantify:

* the transition relation is kept **partitioned** (one ``y_k == delta_k``
  conjunct per latch plus the environment constraint), clustered up to a
  node threshold, IWLS95-style;
* the conjunction order and the early-quantification points are chosen by
  the variable-ordering heuristics of :mod:`repro.core.schedule` — the
  same vocabulary the AIG quantification path uses — so each variable is
  existentially quantified by a fused
  :meth:`~repro.bdd.manager.BddManager.and_exists` as soon as no later
  cluster depends on it;
* pre-images fuse the constraint conjunction with input quantification;
* the kernel's operation caches are trimmed between frontier steps and
  their hit/miss counters surface through the result's ``StatsBag``.

The monolithic conjoin-then-quantify image survives as
``BddReachOptions(image="monolithic")`` for A/B benchmarking
(``benchmarks/bench_t14_bdd_image.py``).  Backward traversal mirrors
:mod:`repro.mc.reach_aig` (pre-image via vector composition of the
next-state functions, then input quantification); forward traversal builds
the relational product with next-state variables.  BDD peak sizes are
reported so experiment T4 can contrast them with the AIG engine's circuit
sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.ops import and_all
from repro.bdd.from_aig import aig_to_bdd
from repro.bdd.manager import BDD_FALSE, BDD_TRUE, BddManager
from repro.circuits.netlist import Netlist
from repro.core.schedule import (
    plan_partitioned_quantification,
    schedule_variable_order,
)
from repro.errors import BddLimitExceeded, ModelCheckingError
from repro.mc.result import Status, Trace, VerificationResult
from repro.obs import probes as _obs
from repro.util.stats import StatsBag


@dataclass
class BddReachOptions:
    """Configuration of the BDD traversals.

    ``image`` selects the post-image pipeline: ``"scheduled"`` (default)
    runs the clustered partitioned relational product with early
    quantification; ``"monolithic"`` conjoins the full transition relation
    first — the seed behaviour, kept for comparison.  ``schedule`` names a
    :mod:`repro.core.schedule` heuristic that orders the quantified
    variables (and thereby the cluster conjunctions).  ``cluster_size``
    bounds the BDD node count of one transition-relation cluster.
    ``max_cache_entries`` bounds each kernel operation cache; caches
    beyond the bound are dropped between frontier steps.
    """

    max_iterations: int = 10_000
    max_nodes: int | None = None
    image: str = "scheduled"
    schedule: str = "min_dependence"
    cluster_size: int = 2_000
    max_cache_entries: int | None = 1 << 20


class _BddModel:
    """Netlist lifted into a BDD manager.

    Variable order: latches first (interleaving-friendly creation order),
    then primary inputs, then next-state placeholders for forward images.
    """

    def __init__(
        self, netlist: Netlist, options: BddReachOptions
    ) -> None:
        netlist.validate()
        if options.image not in ("scheduled", "monolithic"):
            raise ModelCheckingError(
                f"unknown image mode {options.image!r}; "
                "choose 'scheduled' or 'monolithic'"
            )
        self.netlist = netlist
        self.options = options
        self.manager = BddManager(
            max_nodes=options.max_nodes,
            max_cache_entries=options.max_cache_entries,
        )
        self.var_of_node: dict[int, int] = {}
        for node in netlist.latch_nodes:
            self.var_of_node[node] = len(self.var_of_node)
            self.manager.new_var(f"s{node}")
        for node in netlist.input_nodes:
            self.var_of_node[node] = len(self.var_of_node)
            self.manager.new_var(f"i{node}")
        self.next_var_of_latch: dict[int, int] = {}
        for node in netlist.latch_nodes:
            self.next_var_of_latch[node] = len(self.var_of_node) + len(
                self.next_var_of_latch
            )
            self.manager.new_var(f"n{node}")
        cache: dict[int, int] = {}
        self.delta = {
            node: aig_to_bdd(
                netlist.aig, fn, self.manager, self.var_of_node, cache
            )
            for node, fn in netlist.next_functions().items()
        }
        self.input_vars = [self.var_of_node[n] for n in netlist.input_nodes]
        self.state_vars = [self.var_of_node[n] for n in netlist.latch_nodes]
        self.input_cube = self.manager.cube_pos(self.input_vars)
        # Environment constraints gate transitions and violations alike.
        self.constraint = aig_to_bdd(
            netlist.aig,
            netlist.constraint_edge(),
            self.manager,
            self.var_of_node,
            cache,
        )
        # bad_raw may read inputs; bad is the pure-state projection
        # (only constraint-satisfying input patterns count).
        self.bad_raw = self.manager.and_(
            aig_to_bdd(
                netlist.aig,
                netlist.property_edge ^ 1,
                self.manager,
                self.var_of_node,
                cache,
            ),
            self.constraint,
        )
        self.bad = self.manager.exists_cube(self.bad_raw, self.input_cube)
        self.init = self.manager.cube(
            {
                self.var_of_node[node]: value
                for node, value in netlist.init_assignment().items()
            }
        )
        self._rename_map = {
            self.next_var_of_latch[node]: self.var_of_node[node]
            for node in self.delta
        }
        # (clusters, quantification cube) steps, built on first post-image.
        self._image_plan: list[tuple[list[int], int]] | None = None

    # ------------------------------------------------------------------ #
    # Pre-image
    # ------------------------------------------------------------------ #

    def preimage(self, state_set: int) -> int:
        """exists i . C(s, i) AND S(delta(s, i)) by composition.

        The constraint conjunction and the input quantification are fused
        into one ``and_exists`` — the composed set is never conjoined with
        the constraint in full.
        """
        composed = self.manager.compose(
            state_set,
            {self.var_of_node[node]: fn for node, fn in self.delta.items()},
        )
        return self.manager.and_exists_cube(
            composed, self.constraint, self.input_cube
        )

    def preimage_into(self, layer: int, state: dict[int, bool]) -> int:
        """BDD over the input variables: choices taking ``state`` into layer."""
        composed = self.manager.compose(
            layer,
            {self.var_of_node[node]: fn for node, fn in self.delta.items()},
        )
        composed = self.manager.and_(composed, self.constraint)
        for node, value in state.items():
            composed = self.manager.restrict(
                composed, self.var_of_node[node], value
            )
        return composed

    # ------------------------------------------------------------------ #
    # Post-image
    # ------------------------------------------------------------------ #

    def postimage(self, state_set: int) -> int:
        """Relational image with next-state variables, then rename back."""
        if self.options.image == "monolithic":
            return self.postimage_monolithic(state_set)
        return self.postimage_scheduled(state_set)

    def postimage_monolithic(self, state_set: int) -> int:
        """The seed pipeline: conjoin the full relation, then quantify."""
        manager = self.manager
        product = manager.and_(state_set, self.constraint)
        for node, fn in self.delta.items():
            product = manager.and_(
                product,
                manager.xnor(manager.var_node(self.next_var_of_latch[node]), fn),
            )
        product = manager.exists(product, self.state_vars + self.input_vars)
        return manager.rename(product, self._rename_map)

    def postimage_scheduled(self, state_set: int) -> int:
        """Clustered partitioned image with scheduled early quantification.

        The full transition relation is never built: clusters are conjoined
        in the scheduler-chosen order and every current-state/input
        variable is quantified by a fused ``and_exists`` as soon as no
        later cluster depends on it.
        """
        manager = self.manager
        product = state_set
        for clusters, cube in self._scheduled_plan():
            if not clusters:
                if cube != BDD_TRUE:
                    product = manager.exists_cube(product, cube)
                continue
            for cluster in clusters[:-1]:
                product = manager.and_(product, cluster)
                if product == BDD_FALSE:
                    return BDD_FALSE
            if cube == BDD_TRUE:
                product = manager.and_(product, clusters[-1])
            else:
                product = manager.and_exists_cube(
                    product, clusters[-1], cube
                )
            if product == BDD_FALSE:
                return BDD_FALSE
        return manager.rename(product, self._rename_map)

    def _scheduled_plan(self) -> list[tuple[list[int], int]]:
        """Build (once) the clustered conjunction/quantification schedule."""
        if self._image_plan is not None:
            return self._image_plan
        manager = self.manager
        quantify_vars = set(self.state_vars + self.input_vars)
        # Partition: the constraint plus one y_k == delta_k per latch.
        conjuncts: list[int] = []
        if self.constraint != BDD_TRUE:
            conjuncts.append(self.constraint)
        for node, fn in self.delta.items():
            conjuncts.append(
                manager.xnor(
                    manager.var_node(self.next_var_of_latch[node]), fn
                )
            )
        supports = [
            manager.support(c) & quantify_vars for c in conjuncts
        ]
        var_order = self._scheduled_var_order()
        plan = plan_partitioned_quantification(var_order, supports)
        steps: list[tuple[list[int], int]] = []
        for step in plan:
            # Cluster the step's conjuncts up to the node threshold so
            # small relations amortize into one cached cluster BDD.
            clusters: list[int] = []
            acc: int | None = None
            for index in step.conjoin:
                piece = conjuncts[index]
                if acc is None:
                    acc = piece
                    continue
                combined = manager.and_(acc, piece)
                if manager.size(combined) > self.options.cluster_size:
                    clusters.append(acc)
                    acc = piece
                else:
                    acc = combined
            if acc is not None:
                clusters.append(acc)
            steps.append((clusters, manager.cube_pos(step.quantify)))
        self._image_plan = steps
        return steps

    def _scheduled_var_order(self) -> list[int]:
        """Variable order from the shared AIG schedulers, as BDD indices.

        The heuristics of :mod:`repro.core.schedule` analyse AIG cones, so
        they run on a throwaway clone of the netlist (scheduling must not
        pollute the caller's manager) over the conjunction of the
        next-state functions and the constraint.
        """
        netlist = self.netlist
        candidates = netlist.latch_nodes + netlist.input_nodes
        if not candidates:
            return []
        clone, _, node_map = netlist.clone()
        edge = and_all(
            clone.aig,
            [clone.constraint_edge()]
            + [fn for fn in clone.next_functions().values()],
        )
        back = {new: old for old, new in node_map.items()}
        order = schedule_variable_order(
            clone.aig,
            edge,
            [node_map[node] for node in candidates],
            self.options.schedule,
        )
        return [self.var_of_node[back[node]] for node in order]


def _state_from_cube(
    model: _BddModel, cube: dict[int, bool]
) -> dict[int, bool]:
    return {
        node: cube.get(model.var_of_node[node], False)
        for node in model.netlist.latch_nodes
    }


def _finalize_stats(model: _BddModel, stats: StatsBag) -> None:
    """Surface the kernel cache counters through the StatsBag."""
    for key, value in model.manager.cache_summary().items():
        stats.set(f"bdd_{key}", value)
    stats.set("manager_nodes", model.manager.num_nodes)


def bdd_backward_reachability(
    netlist: Netlist,
    max_iterations: int = 10_000,
    max_nodes: int | None = None,
    options: BddReachOptions | None = None,
) -> VerificationResult:
    """Backward BDD traversal; same verdict contract as the AIG engine.

    Raises :class:`~repro.errors.BddLimitExceeded` when ``max_nodes`` is
    exceeded — the memory-explosion outcome the paper's method avoids.
    """
    if options is None:
        options = BddReachOptions(
            max_iterations=max_iterations, max_nodes=max_nodes
        )
    stats = StatsBag()
    model = _BddModel(netlist, options)
    manager = model.manager
    layers = [model.bad]
    reached = model.bad
    frontier = model.bad
    iteration = 0
    if manager.and_(model.init, model.bad) != BDD_FALSE:
        return _bdd_counterexample(model, layers, stats, iteration)
    while iteration < options.max_iterations:
        iteration += 1
        with _obs.span("bdd.preimage", "bdd", iteration=iteration):
            preimage = model.preimage(frontier)
        new_frontier = manager.and_(preimage, manager.not_(reached))
        stats.max("peak_frontier_bdd", manager.size(new_frontier))
        stats.max("peak_reached_bdd", manager.size(reached))
        if _obs.ENABLED:
            _obs.bdd_tick(manager, bag=stats)
        manager.trim_caches()
        if new_frontier == BDD_FALSE:
            stats.set("iterations", iteration)
            _finalize_stats(model, stats)
            return VerificationResult(
                status=Status.PROVED,
                engine="reach_bdd",
                iterations=iteration,
                stats=stats,
            )
        layers.append(new_frontier)
        reached = manager.or_(reached, new_frontier)
        frontier = new_frontier
        if manager.and_(model.init, new_frontier) != BDD_FALSE:
            stats.set("iterations", iteration)
            return _bdd_counterexample(model, layers, stats, iteration)
    _finalize_stats(model, stats)
    return VerificationResult(
        status=Status.UNKNOWN,
        engine="reach_bdd",
        iterations=options.max_iterations,
        stats=stats,
    )


def _bdd_counterexample(
    model: _BddModel,
    layers: list[int],
    stats: StatsBag,
    iterations: int,
) -> VerificationResult:
    """Replay from init through the distance layers, choosing inputs."""
    manager = model.manager
    netlist = model.netlist
    state = dict(netlist.init_assignment())
    states = [dict(state)]
    inputs: list[dict[int, bool]] = []
    # Find the deepest layer containing init = distance to violation.
    containing = [
        k
        for k, layer in enumerate(layers)
        if manager.evaluate(
            layer, {model.var_of_node[n]: v for n, v in state.items()}
        )
    ]
    if not containing:
        raise ModelCheckingError("init not in any layer (engine bug)")
    distance = min(containing)
    for layer_index in range(distance - 1, -1, -1):
        # Choose inputs steering into the next layer: satisfy
        # layer(delta(s, i)) with s fixed.
        target = model.preimage_into(layers[layer_index], state)
        cube = manager.pick_cube(target)
        if cube is None:
            raise ModelCheckingError("trace reconstruction failed")
        step_inputs = {
            node: cube.get(model.var_of_node[node], False)
            for node in netlist.input_nodes
        }
        inputs.append(step_inputs)
        state = netlist.simulate_step(state, step_inputs)
        states.append(dict(state))
    # Witness inputs for an input-reading property in the final state.
    restricted = model.bad_raw
    for node, value in state.items():
        restricted = manager.restrict(
            restricted, model.var_of_node[node], value
        )
    witness_cube = manager.pick_cube(restricted)
    violation = None
    if witness_cube is not None:
        violation = {
            node: witness_cube.get(model.var_of_node[node], False)
            for node in netlist.input_nodes
        }
    _finalize_stats(model, stats)
    return VerificationResult(
        status=Status.FAILED,
        engine="reach_bdd",
        trace=Trace(
            states=states, inputs=inputs, violation_inputs=violation
        ),
        iterations=iterations,
        stats=stats,
    )


def bdd_forward_reachability(
    netlist: Netlist,
    max_iterations: int = 10_000,
    max_nodes: int | None = None,
    options: BddReachOptions | None = None,
) -> VerificationResult:
    """Forward BDD traversal with onion-ring trace reconstruction."""
    if options is None:
        options = BddReachOptions(
            max_iterations=max_iterations, max_nodes=max_nodes
        )
    stats = StatsBag()
    model = _BddModel(netlist, options)
    manager = model.manager
    rings = [model.init]
    reached = model.init
    frontier = model.init
    iteration = 0
    if manager.and_(frontier, model.bad) != BDD_FALSE:
        return _bdd_forward_counterexample(model, rings, stats)
    while iteration < options.max_iterations:
        iteration += 1
        with _obs.span("bdd.postimage", "bdd", iteration=iteration):
            image = model.postimage(frontier)
        new_frontier = manager.and_(image, manager.not_(reached))
        stats.max("peak_frontier_bdd", manager.size(new_frontier))
        stats.max("peak_reached_bdd", manager.size(reached))
        if _obs.ENABLED:
            _obs.bdd_tick(manager, bag=stats)
        manager.trim_caches()
        if new_frontier == BDD_FALSE:
            stats.set("iterations", iteration)
            _finalize_stats(model, stats)
            return VerificationResult(
                status=Status.PROVED,
                engine="reach_bdd_fwd",
                iterations=iteration,
                stats=stats,
            )
        rings.append(new_frontier)
        reached = manager.or_(reached, new_frontier)
        frontier = new_frontier
        if manager.and_(new_frontier, model.bad) != BDD_FALSE:
            stats.set("iterations", iteration)
            return _bdd_forward_counterexample(model, rings, stats)
    _finalize_stats(model, stats)
    return VerificationResult(
        status=Status.UNKNOWN,
        engine="reach_bdd_fwd",
        iterations=options.max_iterations,
        stats=stats,
    )


def _bdd_forward_counterexample(
    model: _BddModel,
    rings: list[int],
    stats: StatsBag,
) -> VerificationResult:
    """Pick a bad state in the last ring, walk predecessors back to init."""
    manager = model.manager
    netlist = model.netlist
    bad_cube = manager.pick_cube(manager.and_(rings[-1], model.bad))
    if bad_cube is None:
        raise ModelCheckingError("bad ring is empty (engine bug)")
    states = [_state_from_cube(model, bad_cube)]
    inputs: list[dict[int, bool]] = []
    for ring_index in range(len(rings) - 2, -1, -1):
        # Predecessors in the previous ring: ring(s) AND C(s, i) AND
        # delta(s, i) == target, solved by one cube pick.
        target = states[0]
        predecessors = manager.and_(rings[ring_index], model.constraint)
        for node, fn in model.delta.items():
            literal = fn if target[node] else manager.not_(fn)
            predecessors = manager.and_(predecessors, literal)
        cube = manager.pick_cube(predecessors)
        if cube is None:
            raise ModelCheckingError(
                "onion-ring state has no predecessor (engine bug)"
            )
        states.insert(0, _state_from_cube(model, cube))
        inputs.insert(
            0,
            {
                node: cube.get(model.var_of_node[node], False)
                for node in netlist.input_nodes
            },
        )
    # Witness inputs for an input-reading property in the final state.
    restricted = model.bad_raw
    for node, value in states[-1].items():
        restricted = manager.restrict(
            restricted, model.var_of_node[node], value
        )
    witness_cube = manager.pick_cube(restricted)
    violation = None
    if witness_cube is not None:
        violation = {
            node: witness_cube.get(model.var_of_node[node], False)
            for node in netlist.input_nodes
        }
    _finalize_stats(model, stats)
    return VerificationResult(
        status=Status.FAILED,
        engine="reach_bdd_fwd",
        trace=Trace(
            states=states, inputs=inputs, violation_inputs=violation
        ),
        iterations=len(rings) - 1,
        stats=stats,
    )
