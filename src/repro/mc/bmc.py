"""Bounded model checking (Biere et al. [1]) with optional quantification
preprocessing.

Plain BMC unrolls ``k`` frames and asks SAT for a length-``k`` violation.
Section 4 of the paper proposes "reducing the amount of primary input
variables by quantification as a preprocessing of SAT procedures": here
that is *pre-image folding* — before unrolling, the bad states ``NOT P``
are replaced by ``pre^j(NOT P)`` computed with circuit-based
quantification, which removes ``j`` frames (and their input variables)
from every SAT query.  A violation found at frame ``k`` then corresponds
to a real trace of length ``k + j``; the folded suffix is re-concretized
step by step with small SAT calls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.graph import edge_not
from repro.circuits.netlist import Netlist
from repro.core.images import ImageComputer
from repro.core.quantify import QuantifyOptions
from repro.mc.result import Status, Trace, VerificationResult
from repro.mc.trace import concretize_suffix, find_violation_inputs
from repro.mc.unroll import Unroller
from repro.sat.solver import SolveResult, Solver
from repro.util.stats import StatsBag


@dataclass
class BmcOptions:
    """Typed configuration of :func:`bmc` (the engine registry's option
    dataclass for the ``bmc`` engine)."""

    max_depth: int = 100
    preimage_folds: int = 0
    quantify_options: QuantifyOptions | None = None
    solver: Solver | None = None


def bmc(
    netlist: Netlist,
    max_depth: int,
    preimage_folds: int = 0,
    quantify_options: QuantifyOptions | None = None,
    solver: Solver | None = None,
) -> VerificationResult:
    """Search for a counterexample of length at most ``max_depth``.

    Returns FAILED with a validated trace, or UNKNOWN if no violation
    exists within the bound (BMC alone never proves).
    """
    netlist.validate()
    stats = StatsBag()
    options = (
        quantify_options
        if quantify_options is not None
        else QuantifyOptions.preset("full")
    )
    targets = [edge_not(netlist.property_edge)]
    if preimage_folds:
        # The fold targets must be pure *state* sets: quantify the property's
        # own input references first, otherwise the fold would conflate the
        # violation-step inputs with the transition inputs.
        targets = [_bad_states(netlist, options)]
        computer = ImageComputer(netlist, options=options)
        for _ in range(preimage_folds):
            result = computer.preimage(targets[-1])
            targets.append(result.edge)
            stats.merge(result.stats)
        stats.set("fold_target_size", netlist.aig.cone_and_count(targets[-1]))
    target = targets[-1]
    unroller = Unroller(netlist, solver)
    unroller.assert_initial_state()
    stats.set("folds", preimage_folds)
    # Folding skips lengths 0..j-1, so probe the intermediate fold targets
    # at frame 0 first (length-d violation == init state in pre^d(bad)).
    for fold_depth in range(min(preimage_folds, max_depth + 1)):
        stats.incr("sat_calls")
        lit = unroller.edge_lit_in(unroller.frame(0), targets[fold_depth])
        if unroller.solver.solve([lit]) is SolveResult.SAT:
            trace = _extract_trace(
                netlist, unroller, 0, targets[: fold_depth + 1], folded=True
            )
            stats.set("cnf_vars", unroller.solver.num_vars)
            return VerificationResult(
                status=Status.FAILED,
                engine="bmc",
                trace=trace,
                iterations=fold_depth,
                stats=stats,
            )
    last_frame = max_depth - preimage_folds
    for depth in range(last_frame + 1):
        bad_lit = unroller.edge_lit_in(unroller.frame(depth), target)
        stats.incr("sat_calls")
        outcome = unroller.solver.solve([bad_lit])
        if outcome is SolveResult.SAT:
            trace = _extract_trace(
                netlist, unroller, depth, targets,
                folded=preimage_folds > 0,
            )
            stats.set("cnf_vars", unroller.solver.num_vars)
            stats.set("frames_unrolled", unroller.num_frames)
            return VerificationResult(
                status=Status.FAILED,
                engine="bmc",
                trace=trace,
                iterations=depth + preimage_folds,
                stats=stats,
            )
    stats.set("cnf_vars", unroller.solver.num_vars)
    stats.set("frames_unrolled", unroller.num_frames)
    return VerificationResult(
        status=Status.UNKNOWN,
        engine="bmc",
        iterations=max_depth,
        stats=stats,
    )


def _bad_states(netlist: Netlist, options: QuantifyOptions) -> int:
    """``exists inputs . C AND NOT P`` — the pure-state bad set."""
    from repro.aig.ops import support
    from repro.core.quantify import quantify_exists

    bad = netlist.aig.and_(
        edge_not(netlist.property_edge), netlist.constraint_edge()
    )
    present = [
        node
        for node in netlist.input_nodes
        if node in support(netlist.aig, bad)
    ]
    if not present:
        return bad
    return quantify_exists(netlist.aig, bad, present, options).edge


def _extract_trace(
    netlist: Netlist,
    unroller: Unroller,
    depth: int,
    targets: list[int],
    folded: bool,
) -> Trace:
    """Read the unrolled prefix, then concretize the folded suffix.

    ``folded`` distinguishes the two target semantics: fold targets are
    pure state sets (frame inputs are unconstrained by the query, so the
    violation witness must be recomputed), whereas the raw ``NOT P``
    target constrains the final frame's own inputs.
    """
    states = [unroller.read_state(k) for k in range(depth + 1)]
    inputs = [unroller.read_inputs(k) for k in range(depth)]
    if len(targets) > 1:
        # states[-1] satisfies pre^j(bad); walk it down to bad itself.
        suffix_states, suffix_inputs = concretize_suffix(
            netlist, states[-1], targets
        )
        states.extend(suffix_states)
        inputs.extend(suffix_inputs)
    if folded:
        violation = find_violation_inputs(netlist, states[-1])
    else:
        # The violation lives in the last unrolled frame; its inputs are
        # the frame's own input assignment.
        violation = unroller.read_inputs(depth)
    return Trace(states=states, inputs=inputs, violation_inputs=violation)
