"""Backward reachability with AIG state sets (Section 3 of the paper).

"We modify standard breadth-first reachability in order to exploit circuit
based quantification.  Given an invariant property P we start reachability
from its complement and we terminate as soon as no newly reached states are
found (fix-point) or we intersect the initial state set, delivering a
counter-example.  In our implementation all state sets are represented and
manipulated using AIGs instead of BDDs.  Operations on AIGs, e.g.,
equivalence, are performed using a SAT engine."

The engine keeps a private clone of the netlist, computes pre-images by
in-lining + circuit-based input quantification (or all-SAT / the hybrid
partial+all-SAT combination of Section 4), checks frontier emptiness and
init intersection with SAT, and periodically compacts its manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aig.analysis import cone_size
from repro.aig.cnf import CnfMapper
from repro.aig.graph import FALSE, edge_not
from repro.aig.ops import or_, support
from repro.circuits.netlist import Netlist
from repro.core.partial import PartialQuantifier
from repro.core.quantify import QuantifyOptions, quantify_exists
from repro.core.substitution import preimage_by_substitution
from repro.errors import ModelCheckingError, ResourceLimit
from repro.mc.preimage_sat import allsat_quantify
from repro.mc.result import Status, Trace, VerificationResult
from repro.mc.trace import concretize_suffix, find_violation_inputs
from repro.sat.solver import SolveResult, Solver
from repro.util.stats import StatsBag


@dataclass
class ReachOptions:
    """Configuration of the backward traversal."""

    quantify: QuantifyOptions = field(
        default_factory=lambda: QuantifyOptions.preset("full")
    )
    # "circuit": full circuit quantification (the paper's core method);
    # "allsat": pure SAT enumeration (the Ganai et al. baseline);
    # "hybrid": partial circuit quantification, all-SAT on the residual
    #           (the Section 4 combination).
    input_elimination: str = "circuit"
    partial_growth_factor: float = 2.0
    max_iterations: int = 10_000
    compact_every: int = 4          # manager compaction period (iterations)
    max_manager_nodes: int = 2_000_000
    allsat_max_cubes: int | None = None
    # Functionally reduce the live state sets at each compaction (FRAIG):
    # recovers merges the per-step pipeline missed, at one sweep's cost.
    fraig_compaction: bool = False


class BackwardReachability:
    """The paper's traversal routine over one netlist."""

    def __init__(
        self, netlist: Netlist, options: ReachOptions | None = None
    ) -> None:
        netlist.validate()
        if not netlist.has_property:
            raise ModelCheckingError("backward reachability needs a property")
        self.original = netlist
        self.options = options if options is not None else ReachOptions()
        if self.options.input_elimination not in ("circuit", "allsat", "hybrid"):
            raise ModelCheckingError(
                f"unknown input elimination mode: "
                f"{self.options.input_elimination!r}"
            )
        # Private working copy: traversal adds heaps of nodes and must not
        # pollute (or be confused by) the caller's manager.
        self.model, _, node_map = netlist.clone()
        self._to_original = {
            new: old for old, new in node_map.items()
        }
        self.stats = StatsBag()

    # ------------------------------------------------------------------ #
    # SAT helpers on the working model
    # ------------------------------------------------------------------ #

    def _satisfiable(self, edge: int) -> dict[int, bool] | None:
        """SAT model of an edge over the working model, or None."""
        if edge == FALSE:
            return None
        mapper = CnfMapper(self.model.aig, Solver())
        lit = mapper.lit_for(edge)
        if mapper.solver.solve([lit]) is not SolveResult.SAT:
            return None
        model = mapper.model_inputs()
        return {
            node: model.get(node, False) for node in self.model.latch_nodes
        }

    # ------------------------------------------------------------------ #
    # Pre-image with the configured input elimination
    # ------------------------------------------------------------------ #

    def _preimage(self, state_set: int) -> int:
        composed = preimage_by_substitution(
            self.model.aig, state_set, self.model.next_functions()
        )
        # Environment constraints gate every transition: only inputs with
        # C(s, i) may justify membership in the pre-image.
        composed = self.model.aig.and_(
            composed, self.model.constraint_edge()
        )
        return self._eliminate_inputs(composed)

    def _eliminate_inputs(self, composed: int) -> int:
        """Existentially remove primary inputs per the configured mode."""
        aig = self.model.aig
        inputs = [
            node
            for node in self.model.input_nodes
            if node in support(aig, composed)
        ]
        mode = self.options.input_elimination
        if not inputs:
            return composed
        if mode == "circuit":
            outcome = quantify_exists(
                aig, composed, inputs, self.options.quantify
            )
            self.stats.merge(outcome.stats)
            return outcome.edge
        if mode == "allsat":
            result, sat_stats = allsat_quantify(
                aig, composed, inputs, max_cubes=self.options.allsat_max_cubes
            )
            self.stats.merge(sat_stats)
            return result
        # hybrid: partial circuit quantification, residual to all-SAT.
        quantifier = PartialQuantifier(
            aig,
            options=self.options.quantify,
            growth_factor=self.options.partial_growth_factor,
        )
        outcome = quantifier.quantify(composed, inputs)
        self.stats.merge(outcome.stats)
        self.stats.incr("hybrid_residual_vars", len(outcome.aborted))
        if not outcome.aborted:
            return outcome.edge
        result, sat_stats = allsat_quantify(
            aig,
            outcome.edge,
            outcome.aborted,
            max_cubes=self.options.allsat_max_cubes,
        )
        self.stats.merge(sat_stats)
        return result

    # ------------------------------------------------------------------ #
    # The traversal
    # ------------------------------------------------------------------ #

    def run(self) -> VerificationResult:
        options = self.options
        model = self.model
        aig = model.aig
        # The bad *states*: inputs of an input-dependent property are
        # existentially quantified away so every layer is a pure state set.
        # The violating step must itself satisfy the constraints.
        bad = self._eliminate_inputs(
            aig.and_(edge_not(model.property_edge), model.constraint_edge())
        )
        init = model.init_state_edge()
        # Distance layers for trace reconstruction: layers[k] = states at
        # backward distance k from the violation.
        layers: list[int] = [bad]
        reached = bad
        frontier = bad
        init_hit = self._check_init(init, bad)
        if init_hit is not None:
            return self._counterexample(init_hit, layers, iterations=0)
        iteration = 0
        while iteration < options.max_iterations:
            iteration += 1
            preimage = self._preimage(frontier)
            new_frontier = aig.and_(preimage, edge_not(reached))
            self.stats.set(f"frontier_size_{iteration}", cone_size(aig, new_frontier))
            self.stats.max("peak_frontier_size", cone_size(aig, new_frontier))
            self.stats.max("peak_reached_size", cone_size(aig, reached))
            witness = self._satisfiable(new_frontier)
            if witness is None:
                # Fix-point: no newly reached states.
                self.stats.set("iterations", iteration)
                return VerificationResult(
                    status=Status.PROVED,
                    engine="reach_aig",
                    iterations=iteration,
                    stats=self.stats,
                )
            layers.append(new_frontier)
            reached = or_(aig, reached, new_frontier)
            frontier = new_frontier
            init_hit = self._check_init(init, new_frontier)
            if init_hit is not None:
                return self._counterexample(init_hit, layers, iterations=iteration)
            if (
                options.compact_every
                and iteration % options.compact_every == 0
            ):
                layers, reached, frontier, init, bad = self._compact(
                    layers, reached, frontier, init, bad
                )
                model = self.model      # compaction swapped the working copy
                aig = model.aig
            if aig.num_nodes > options.max_manager_nodes:
                raise ResourceLimit(
                    f"AIG manager exceeded {options.max_manager_nodes} nodes"
                )
        return VerificationResult(
            status=Status.UNKNOWN,
            engine="reach_aig",
            iterations=options.max_iterations,
            stats=self.stats,
        )

    def _check_init(self, init: int, frontier: int) -> dict[int, bool] | None:
        """Does the frontier contain the initial state?"""
        return self._satisfiable(self.model.aig.and_(init, frontier))

    def _counterexample(
        self,
        start_state: dict[int, bool],
        layers: list[int],
        iterations: int,
    ) -> VerificationResult:
        """Walk the initial state down the distance layers to the bug."""
        states = [dict(start_state)]
        suffix_states, inputs = concretize_suffix(
            self.model, start_state, layers
        )
        states.extend(suffix_states)
        violation = find_violation_inputs(self.model, states[-1])
        trace = Trace(
            states=[self._map_state(s) for s in states],
            inputs=[self._map_inputs(i) for i in inputs],
            violation_inputs=(
                self._map_inputs(violation) if violation is not None else None
            ),
        )
        self.stats.set("iterations", iterations)
        return VerificationResult(
            status=Status.FAILED,
            engine="reach_aig",
            trace=trace,
            iterations=iterations,
            stats=self.stats,
        )

    def _map_state(self, state: dict[int, bool]) -> dict[int, bool]:
        return {
            self._to_original.get(node, node): value
            for node, value in state.items()
        }

    def _map_inputs(self, inputs: dict[int, bool]) -> dict[int, bool]:
        return {
            self._to_original.get(node, node): value
            for node, value in inputs.items()
        }

    def _compact(
        self,
        layers: list[int],
        reached: int,
        frontier: int,
        init: int,
        bad: int,
    ) -> tuple[list[int], int, int, int, int]:
        """Shrink the working manager, transferring the live state sets."""
        before = self.model.aig.num_nodes
        extras = list(layers) + [reached, frontier, init, bad]
        if self.options.fraig_compaction:
            from repro.sweep.fraig import fraig_in_place

            extras, fraig_stats = fraig_in_place(self.model.aig, extras)
            self.stats.incr(
                "fraig_nodes_recovered",
                fraig_stats.get("size_before") - fraig_stats.get("size_after"),
            )
        new_model, moved, node_map = self.model.clone(extras)
        self.model = new_model
        # Chain the original-node mapping through the new clone.
        self._to_original = {
            new: self._to_original.get(old, old)
            for old, new in node_map.items()
        }
        self.stats.incr("compactions")
        self.stats.incr("compaction_nodes_freed", before - new_model.aig.num_nodes)
        n = len(layers)
        return list(moved[:n]), moved[n], moved[n + 1], moved[n + 2], moved[n + 3]


def backward_reachability(
    netlist: Netlist, options: ReachOptions | None = None
) -> VerificationResult:
    """Convenience wrapper: build the engine and run it."""
    return BackwardReachability(netlist, options).run()
