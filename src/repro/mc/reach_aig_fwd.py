"""Forward reachability with AIG state sets and circuit quantification.

The paper's traversal is backward ("we start reachability from [the
property's] complement"), but its Section 1 motivation covers both
directions: "post-image and pre-image computations involve existential
quantification of input and state variables".  This engine is the forward
twin: starting from the initial states, post-images (the relational
product over next-state placeholders, quantifying current state *and*
input variables) are accumulated to a fix-point or until a bad state is
reached.

Forward post-image is the harder quantification workload — there is no
in-lining shortcut, so every current-state and input variable goes through
the circuit-based engine.  The T4/F1-style comparisons between this engine
and the backward one quantify exactly that asymmetry.

Counterexample traces are rebuilt by walking the stored onion rings
backwards: for each concrete state in ring ``k`` a SAT call finds a ring
``k-1`` predecessor and the driving inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aig.analysis import cone_size
from repro.aig.cnf import CnfMapper
from repro.aig.graph import FALSE, edge_not
from repro.aig.ops import or_, xnor
from repro.circuits.netlist import Netlist
from repro.core.images import ImageComputer
from repro.core.quantify import QuantifyOptions
from repro.errors import ModelCheckingError, ResourceLimit
from repro.mc.result import Status, Trace, VerificationResult
from repro.mc.trace import find_violation_inputs
from repro.sat.solver import SolveResult, Solver
from repro.util.stats import StatsBag


@dataclass
class ForwardReachOptions:
    """Configuration of the forward traversal."""

    quantify: QuantifyOptions = field(
        default_factory=lambda: QuantifyOptions.preset("full")
    )
    max_iterations: int = 10_000
    max_manager_nodes: int = 2_000_000


class ForwardReachability:
    """Breadth-first forward traversal over one netlist."""

    def __init__(
        self,
        netlist: Netlist,
        options: ForwardReachOptions | None = None,
    ) -> None:
        netlist.validate()
        if not netlist.has_property:
            raise ModelCheckingError("forward reachability needs a property")
        self.original = netlist
        self.options = options if options is not None else ForwardReachOptions()
        self.model, _, node_map = netlist.clone()
        self._to_original = {new: old for old, new in node_map.items()}
        self.stats = StatsBag()
        self._images = ImageComputer(self.model, self.options.quantify)

    # ------------------------------------------------------------------ #
    # SAT helpers
    # ------------------------------------------------------------------ #

    def _violating_state(self, state_set: int) -> dict[int, bool] | None:
        """A state of ``state_set`` where the property can fail, if any.

        The violating step must itself satisfy the environment
        constraints (an unconstrained input pattern does not count).
        """
        bad = self.model.aig.and_(
            state_set, edge_not(self.model.property_edge)
        )
        bad = self.model.aig.and_(bad, self.model.constraint_edge())
        return self._satisfiable_state(bad)

    def _satisfiable_state(self, edge: int) -> dict[int, bool] | None:
        if edge == FALSE:
            return None
        mapper = CnfMapper(self.model.aig, Solver())
        lit = mapper.lit_for(edge)
        if mapper.solver.solve([lit]) is not SolveResult.SAT:
            return None
        model = mapper.model_inputs()
        return {
            node: model.get(node, False) for node in self.model.latch_nodes
        }

    def _predecessor_in(
        self, source_set: int, target_state: dict[int, bool]
    ) -> tuple[dict[int, bool], dict[int, bool]]:
        """A (state, inputs) pair of ``source_set`` stepping onto the target."""
        aig = self.model.aig
        constraint = aig.and_(source_set, self.model.constraint_edge())
        for latch in self.model.latches:
            want = target_state[latch.node]
            next_edge = latch.next_edge
            constraint = aig.and_(
                constraint,
                next_edge if want else edge_not(next_edge),
            )
        mapper = CnfMapper(aig, Solver())
        lit = mapper.lit_for(constraint)
        if mapper.solver.solve([lit]) is not SolveResult.SAT:
            raise ModelCheckingError(
                "onion-ring state has no predecessor (engine bug)"
            )
        model = mapper.model_inputs()
        state = {
            node: model.get(node, False) for node in self.model.latch_nodes
        }
        inputs = {
            node: model.get(node, False) for node in self.model.input_nodes
        }
        return state, inputs

    # ------------------------------------------------------------------ #
    # The traversal
    # ------------------------------------------------------------------ #

    def run(self) -> VerificationResult:
        options = self.options
        aig = self.model.aig
        init = self.model.init_state_edge()
        rings: list[int] = [init]
        reached = init
        frontier = init
        violating = self._violating_state(frontier)
        if violating is not None:
            return self._counterexample(violating, rings)
        iteration = 0
        while iteration < options.max_iterations:
            iteration += 1
            image = self._images.postimage(frontier)
            self.stats.merge(image.stats)
            new_frontier = aig.and_(image.edge, edge_not(reached))
            self.stats.set(
                f"frontier_size_{iteration}", cone_size(aig, new_frontier)
            )
            self.stats.max(
                "peak_frontier_size", cone_size(aig, new_frontier)
            )
            if self._satisfiable_state(new_frontier) is None:
                self.stats.set("iterations", iteration)
                return VerificationResult(
                    status=Status.PROVED,
                    engine="reach_aig_fwd",
                    iterations=iteration,
                    stats=self.stats,
                )
            rings.append(new_frontier)
            reached = or_(aig, reached, new_frontier)
            frontier = new_frontier
            violating = self._violating_state(new_frontier)
            if violating is not None:
                self.stats.set("iterations", iteration)
                return self._counterexample(violating, rings)
            if aig.num_nodes > options.max_manager_nodes:
                raise ResourceLimit(
                    f"AIG manager exceeded {options.max_manager_nodes} nodes"
                )
        return VerificationResult(
            status=Status.UNKNOWN,
            engine="reach_aig_fwd",
            iterations=options.max_iterations,
            stats=self.stats,
        )

    # ------------------------------------------------------------------ #
    # Trace reconstruction (backwards through the onion rings)
    # ------------------------------------------------------------------ #

    def _counterexample(
        self, bad_state: dict[int, bool], rings: list[int]
    ) -> VerificationResult:
        states = [dict(bad_state)]
        inputs: list[dict[int, bool]] = []
        for ring_index in range(len(rings) - 2, -1, -1):
            predecessor, step_inputs = self._predecessor_in(
                rings[ring_index], states[0]
            )
            states.insert(0, predecessor)
            inputs.insert(0, step_inputs)
        violation = find_violation_inputs(self.model, states[-1])
        trace = Trace(
            states=[self._map_assignment(s) for s in states],
            inputs=[self._map_assignment(i) for i in inputs],
            violation_inputs=(
                self._map_assignment(violation)
                if violation is not None
                else None
            ),
        )
        return VerificationResult(
            status=Status.FAILED,
            engine="reach_aig_fwd",
            trace=trace,
            iterations=len(rings) - 1,
            stats=self.stats,
        )

    def _map_assignment(self, values: dict[int, bool]) -> dict[int, bool]:
        return {
            self._to_original.get(node, node): value
            for node, value in values.items()
        }


def forward_reachability(
    netlist: Netlist, options: ForwardReachOptions | None = None
) -> VerificationResult:
    """Convenience wrapper: build the forward engine and run it."""
    return ForwardReachability(netlist, options).run()
