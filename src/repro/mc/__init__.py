"""Model-checking engines.

The paper's contribution is the traversal of :mod:`repro.mc.reach_aig` —
breadth-first *backward* reachability with AIG state sets and circuit-based
quantification.  Everything else here is a baseline or a combination target
named in the paper:

* :mod:`repro.mc.reach_bdd` — classical BDD reachability (the canonical
  representation whose memory explosion motivates the work);
* :mod:`repro.mc.bmc` — bounded model checking (Biere et al. [1]);
* :mod:`repro.mc.induction` — k-induction (Sheeran et al. [5]);
* :mod:`repro.mc.preimage_sat` — all-solutions SAT pre-image with circuit
  cofactoring (Ganai et al. [2]), optionally fed by partial quantification
  exactly as Section 4 proposes.

:func:`repro.mc.engine.verify` dispatches them behind one interface.
"""

from repro.mc.result import (
    InvariantCertificate,
    Status,
    Trace,
    VerificationResult,
)
from repro.mc.reach_aig import BackwardReachability, ReachOptions
from repro.mc.reach_aig_fwd import ForwardReachability, ForwardReachOptions
from repro.mc.reach_bdd import (
    BddReachOptions,
    bdd_backward_reachability,
    bdd_forward_reachability,
)
from repro.mc.bmc import BmcOptions, bmc
from repro.mc.induction import KInductionOptions, k_induction
from repro.mc.preimage_sat import allsat_preimage
from repro.mc.engine import verify
from repro.mc.minimize import MinimizedTrace, minimize_trace

__all__ = [
    "InvariantCertificate",
    "Status",
    "Trace",
    "VerificationResult",
    "BackwardReachability",
    "ReachOptions",
    "ForwardReachability",
    "ForwardReachOptions",
    "BddReachOptions",
    "bdd_backward_reachability",
    "bdd_forward_reachability",
    "BmcOptions",
    "bmc",
    "KInductionOptions",
    "k_induction",
    "allsat_preimage",
    "verify",
    "MinimizedTrace",
    "minimize_trace",
]
