"""Counterexample minimization: which trace inputs actually matter?

Engines return *some* satisfying assignment per step, so traces are full
of incidental input values.  For debugging, the useful artifact is the
care set: the inputs whose values are necessary for the violation.  This
module computes it by single-flip analysis — flip one input of one step,
replay the whole trace, and call the input a don't-care when the
violation (and every environment constraint) survives.

The relaxed trace re-simulates with every don't-care input canonicalized
to 0, which also canonicalizes the *states* along the way; it is
re-validated before being returned, so it is always a real
counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.netlist import Netlist
from repro.errors import ModelCheckingError
from repro.mc.result import Trace


@dataclass
class MinimizedTrace:
    """A trace plus its per-step input care sets."""

    trace: Trace                    # the relaxed (canonicalized) trace
    care: list[dict[int, bool]]     # step -> input node -> matters?
    violation_care: dict[int, bool]

    @property
    def care_count(self) -> int:
        total = sum(
            sum(1 for matters in step.values() if matters)
            for step in self.care
        )
        return total + sum(
            1 for matters in self.violation_care.values() if matters
        )

    @property
    def total_inputs(self) -> int:
        total = sum(len(step) for step in self.care)
        return total + len(self.violation_care)

    @property
    def care_ratio(self) -> float:
        if self.total_inputs == 0:
            return 0.0
        return self.care_count / self.total_inputs


def _still_violates(
    netlist: Netlist,
    inputs: list[dict[int, bool]],
    violation_inputs: dict[int, bool] | None,
) -> bool:
    """Replay from init under the given inputs; is it a legal violation?"""
    current = netlist.init_assignment()
    for step_inputs in inputs:
        if not netlist.constraints_hold(current, step_inputs):
            return False
        current = netlist.simulate_step(current, step_inputs)
    if violation_inputs is not None and not netlist.constraints_hold(
        current, violation_inputs
    ):
        return False
    return not netlist.property_holds(current, violation_inputs)


def minimize_trace(netlist: Netlist, trace: Trace) -> MinimizedTrace:
    """Single-flip don't-care analysis of a counterexample.

    Raises :class:`~repro.errors.ModelCheckingError` when the given trace
    does not validate in the first place.
    """
    if not trace.validate(netlist):
        raise ModelCheckingError("cannot minimize an invalid trace")
    inputs = [dict(step) for step in trace.inputs]
    violation = (
        dict(trace.violation_inputs)
        if trace.violation_inputs is not None
        else None
    )
    care: list[dict[int, bool]] = []
    for step_index, step_inputs in enumerate(inputs):
        step_care: dict[int, bool] = {}
        for node in step_inputs:
            flipped = [dict(step) for step in inputs]
            flipped[step_index][node] = not flipped[step_index][node]
            matters = not _still_violates(netlist, flipped, violation)
            step_care[node] = matters
            if not matters:
                # Canonicalize immediately so later flips are judged
                # against the relaxed prefix (keeps the result consistent).
                inputs[step_index][node] = False
        care.append(step_care)
    violation_care: dict[int, bool] = {}
    if violation is not None:
        for node in violation:
            flipped = dict(violation)
            flipped[node] = not flipped[node]
            matters = not _still_violates(netlist, inputs, flipped)
            violation_care[node] = matters
            if not matters:
                violation[node] = False
    # Rebuild the relaxed state sequence and re-validate.
    states = [netlist.init_assignment()]
    for step_inputs in inputs:
        states.append(netlist.simulate_step(states[-1], step_inputs))
    relaxed = Trace(states=states, inputs=inputs, violation_inputs=violation)
    if not relaxed.validate(netlist):  # pragma: no cover - safety net
        raise ModelCheckingError("minimization produced an invalid trace")
    return MinimizedTrace(
        trace=relaxed, care=care, violation_care=violation_care
    )
