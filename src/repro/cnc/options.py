"""Typed options for the cube-and-conquer engine."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelCheckingError


@dataclass
class CncOptions:
    """Knobs of the ``cnc`` engine (see :mod:`repro.cnc.engine`).

    ``max_depth`` is the BMC-style unrolling bound: the engine builds one
    combinational "violation within <= max_depth steps" target and splits
    *that*, so one deep bound becomes many parallel solver calls instead
    of a depth sweep.  ``cube_depth`` and ``candidates_limit`` shape the
    Cube stage (tree depth and the lookahead's top-K trial set);
    ``workers`` sizes the conquer pool (0 solves the cubes in-process,
    sequentially and deterministically).  ``assume_tail`` poses the last
    N cube literals as solver assumptions instead of baking them into the
    CNF, so an UNSAT core over them can refute an ancestor cube and prune
    the siblings sharing that falsified prefix.
    """

    max_depth: int = 100
    cube_depth: int = 4
    candidates_limit: int = 10
    workers: int = 2
    assume_tail: int = 1
    conflict_budget: int | None = None
    cube_budget: float | None = None

    def validate(self) -> None:
        if self.max_depth < 0:
            raise ModelCheckingError("cnc max_depth must be >= 0")
        if self.cube_depth < 0:
            raise ModelCheckingError("cnc cube_depth must be >= 0")
        if self.candidates_limit < 1:
            raise ModelCheckingError("cnc candidates_limit must be >= 1")
        if self.workers < 0:
            raise ModelCheckingError("cnc workers must be >= 0")
        if self.assume_tail < 0:
            raise ModelCheckingError("cnc assume_tail must be >= 0")
