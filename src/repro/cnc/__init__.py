"""Cube-and-conquer parallel SAT for CircuitSAT/AIG instances.

The first engine that scales *inside* a single instance: a lookahead
Cube stage splits one hard target into many genuinely smaller
subproblems (:mod:`repro.cnc.lookahead`, :mod:`repro.cnc.cube`), a
multiprocessing conquer pool races them (:mod:`repro.cnc.conquer`), and
:mod:`repro.cnc.engine` packages the scheme as the registered ``cnc``
model-checking engine plus the :func:`split_solve` utility API used by
equivalence checking, SAT sweeping and PDR certificate validation.
"""

from repro.cnc.conquer import ConquerTask, CubeOutcome, conquer, make_task
from repro.cnc.cube import (
    CubeLeaf,
    CubeLiteral,
    CubeTree,
    assume_literal,
    build_cube_tree,
)
from repro.cnc.engine import (
    SplitOutcome,
    cnc_verify,
    split_solve,
    split_solve_many,
)
from repro.cnc.lookahead import (
    LookaheadResult,
    analyze,
    gate_weights,
    ternary_eval,
    ternary_lookahead,
)
from repro.cnc.options import CncOptions

__all__ = [
    "CncOptions",
    "ConquerTask",
    "CubeLeaf",
    "CubeLiteral",
    "CubeOutcome",
    "CubeTree",
    "LookaheadResult",
    "SplitOutcome",
    "analyze",
    "assume_literal",
    "build_cube_tree",
    "cnc_verify",
    "conquer",
    "gate_weights",
    "make_task",
    "split_solve",
    "split_solve_many",
    "ternary_eval",
    "ternary_lookahead",
]
