"""The ``cnc`` engine: one deep unrolling, split, conquered in parallel.

BMC sweeps depths one SAT call at a time on one core.  ``cnc`` instead
builds a single combinational *violation target* — "some step ``d <=
max_depth`` satisfies the constraints so far and violates the property"
— by unrolling the netlist at the AIG level (latches substituted frame
by frame, fresh scratch inputs per frame, constant-folded from the
initial state), then hands that one hard instance to the Cube stage.
The cube tree turns it into many genuinely smaller subproblems and the
conquer pool solves them concurrently: the first SAT cube yields a
counterexample (replayed forward on the original netlist into a
standard, validated :class:`~repro.mc.result.Trace`), all-UNSAT is a
bound-exhausted UNKNOWN — or a PROVED verdict when the netlist is
combinational, where depth 0 covers the whole space.

:func:`split_solve` / :func:`split_solve_many` expose the same split
machinery for plain combinational targets: hard equivalence miters
(:mod:`repro.atpg.equivalence`, :mod:`repro.sweep.satsweep`) and bursty
proof-obligation batches (PDR certificate checking).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field

from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.ops import or_all
from repro.aig.simulate import eval_edge
from repro.circuits.netlist import Netlist
from repro.cnc.conquer import conquer, make_task
from repro.cnc.cube import CubeTree, build_cube_tree
from repro.cnc.options import CncOptions
from repro.errors import ModelCheckingError
from repro.mc.result import Status, Trace, VerificationResult
from repro.obs import probes as _obs
from repro.sat.solver import SolveResult
from repro.util.stats import StatsBag


@dataclass
class SplitOutcome:
    """Aggregate verdict of one split-solved target."""

    verdict: SolveResult
    model: dict[int, bool] | None = None
    cubes: int = 0
    refuted: int = 0
    stats: StatsBag = field(default_factory=StatsBag)


def _effective_workers(workers: int) -> int:
    # Daemonic children (portfolio workers, conquer workers themselves)
    # cannot fork their own pool; degrade to the in-process path.
    if workers > 0 and multiprocessing.current_process().daemon:
        return 0
    return workers


def _aggregate(
    aig: Aig,
    target: int,
    tree: CubeTree,
    outcomes,
    stats: StatsBag,
) -> SplitOutcome:
    """Fold one group's cube outcomes into a single verdict."""
    split = SplitOutcome(
        verdict=SolveResult.UNSAT,
        cubes=len(tree.leaves),
        refuted=tree.refuted_leaves,
        stats=stats,
    )
    undecided = False
    for outcome in outcomes:
        if outcome.verdict == "sat":
            if not eval_edge(aig, target, outcome.model):
                raise ModelCheckingError(
                    "cnc produced a model that does not satisfy the "
                    "split target"
                )
            split.verdict = SolveResult.SAT
            split.model = outcome.model
            return split
        if outcome.verdict in ("unknown", "crashed"):
            undecided = True
    if undecided:
        split.verdict = SolveResult.UNKNOWN
    return split


def split_solve(
    aig: Aig,
    target: int,
    *,
    cube_depth: int = 4,
    candidates_limit: int = 10,
    workers: int = 0,
    assume_tail: int = 1,
    conflict_budget: int | None = None,
    cube_budget: float | None = None,
    stats: StatsBag | None = None,
) -> SplitOutcome:
    """Cube-and-conquer one combinational target edge.

    SAT models are returned over the target cone's input *nodes*
    (missing inputs are don't-cares; complete with False).  ``workers=0``
    (the default) solves the cubes in-process and deterministically;
    positive values fan them out over that many processes.
    """
    bag = stats if stats is not None else StatsBag()
    workers = _effective_workers(workers)
    with _obs.span("cnc.cube", "engine", cube_depth=cube_depth):
        tree = build_cube_tree(
            aig,
            target,
            cube_depth=cube_depth,
            candidates_limit=candidates_limit,
            assume_tail=assume_tail,
            stats=bag,
        )
    open_leaves = tree.open_leaves
    if not open_leaves:
        return SplitOutcome(
            verdict=SolveResult.UNSAT,
            cubes=len(tree.leaves),
            refuted=tree.refuted_leaves,
            stats=bag,
        )
    tasks = [
        make_task(aig, leaf, tag=index)
        for index, leaf in enumerate(open_leaves)
    ]
    with _obs.span("cnc.conquer", "engine", cubes=len(tasks),
                   workers=workers):
        outcomes = conquer(
            tasks,
            workers=workers,
            conflict_budget=conflict_budget,
            cube_budget=cube_budget,
            lookahead_refuted=tree.refuted_leaves,
            stats=bag,
        )
    return _aggregate(aig, target, tree, outcomes, bag)


def split_solve_many(
    aig: Aig,
    targets,
    *,
    cube_depth: int = 0,
    candidates_limit: int = 10,
    workers: int = 0,
    assume_tail: int = 1,
    conflict_budget: int | None = None,
    cube_budget: float | None = None,
    stats: StatsBag | None = None,
) -> list[SplitOutcome]:
    """Split-solve a batch of independent targets over one shared pool.

    This is the bursty-obligation entry point (PDR certificate clauses,
    sweeping candidate batches): every target forms its own cancellation
    group — a SAT cube only cancels cubes of the *same* target — and the
    pool is shared, so ``workers`` bounds total concurrency across the
    batch.  ``cube_depth`` defaults to 0 (one cube per target: pure
    fan-out), matching obligations that are individually easy but
    numerous.
    """
    bag = stats if stats is not None else StatsBag()
    workers = _effective_workers(workers)
    targets = list(targets)
    trees: list[CubeTree] = []
    tasks = []
    with _obs.span("cnc.cube", "engine", cube_depth=cube_depth,
                   targets=len(targets)):
        for group, target in enumerate(targets):
            tree = build_cube_tree(
                aig,
                target,
                cube_depth=cube_depth,
                candidates_limit=candidates_limit,
                assume_tail=assume_tail,
                stats=bag,
            )
            trees.append(tree)
            for leaf in tree.open_leaves:
                tasks.append(
                    make_task(aig, leaf, tag=len(tasks), group=group)
                )
    with _obs.span("cnc.conquer", "engine", cubes=len(tasks),
                   workers=workers):
        outcomes = conquer(
            tasks,
            workers=workers,
            conflict_budget=conflict_budget,
            cube_budget=cube_budget,
            lookahead_refuted=sum(t.refuted_leaves for t in trees),
            stats=bag,
        )
    results = []
    for group, (target, tree) in enumerate(zip(targets, trees)):
        grouped = [o for o in outcomes if o.group == group]
        results.append(_aggregate(aig, target, tree, grouped, bag))
    return results


# ---------------------------------------------------------------------- #
# The registered engine: BMC-style unrolling, split, conquered
# ---------------------------------------------------------------------- #


def _unroll_violation(
    netlist: Netlist, bound: int
) -> tuple[Netlist, int, list[dict[int, int]]]:
    """One combinational "violation within <= bound steps" target.

    Built in a fresh clone so the rebuild churn never pollutes the
    caller's manager.  Returns ``(clone, target_edge, frames)`` where
    ``frames[d]`` maps the *original* netlist's input nodes to the
    clone-manager scratch input node carrying that input at step ``d``.
    """
    clone, _, node_map = netlist.clone()
    aig = clone.aig
    inverse = {clone_node: orig for orig, clone_node in node_map.items()}
    state = {
        latch.node: (TRUE if latch.init else FALSE)
        for latch in clone.latches
    }
    next_funcs = clone.next_functions()
    frames: list[dict[int, int]] = []
    bads = []
    prefix = TRUE
    for depth in range(bound + 1):
        substitution = dict(state)
        frame: dict[int, int] = {}
        for node in clone.input_nodes:
            fresh = aig.add_input(f"{aig.input_name(node)}@{depth}")
            substitution[node] = fresh
            frame[inverse[node]] = fresh >> 1
        frames.append(frame)
        cache: dict[int, int] = {}
        for edge in clone.constraints:
            prefix = aig.and_(prefix, aig.rebuild(edge, substitution, cache))
        bads.append(
            aig.and_(
                prefix,
                edge_not(aig.rebuild(clone.property_edge, substitution,
                                     cache)),
            )
        )
        if depth < bound:
            state = {
                node: aig.rebuild(next_funcs[node], substitution, cache)
                for node in state
            }
    return clone, or_all(aig, bads), frames


def _extract_trace(
    netlist: Netlist,
    frames: list[dict[int, int]],
    model: dict[int, bool],
) -> tuple[Trace, int]:
    """Replay the unrolling model forward into a standard trace."""
    inputs_per_step = [
        {orig: model.get(node, False) for orig, node in frame.items()}
        for frame in frames
    ]
    states = [netlist.init_assignment()]
    for depth, step_inputs in enumerate(inputs_per_step):
        current = states[-1]
        if not netlist.constraints_hold(current, step_inputs):
            break
        if not netlist.property_holds(current, step_inputs):
            return (
                Trace(
                    states=states,
                    inputs=inputs_per_step[:depth],
                    violation_inputs=step_inputs,
                ),
                depth,
            )
        states.append(netlist.simulate_step(current, step_inputs))
    raise ModelCheckingError(
        "cnc unrolling model does not replay to a property violation"
    )


def cnc_verify(
    netlist: Netlist, options: CncOptions | None = None
) -> VerificationResult:
    """Run cube-and-conquer bounded model checking on a netlist."""
    options = options if options is not None else CncOptions()
    options.validate()
    stats = StatsBag()
    bound = 0 if netlist.num_latches == 0 else options.max_depth
    workers = _effective_workers(options.workers)
    stats.set("cnc_bound", bound)
    stats.set("cnc_workers", workers)
    with _obs.span("cnc.unroll", "engine", bound=bound):
        clone, target, frames = _unroll_violation(netlist, bound)
    outcome = split_solve(
        clone.aig,
        target,
        cube_depth=options.cube_depth,
        candidates_limit=options.candidates_limit,
        workers=workers,
        assume_tail=options.assume_tail,
        conflict_budget=options.conflict_budget,
        cube_budget=options.cube_budget,
        stats=stats,
    )
    stats.set("cnc_cubes", outcome.cubes)
    stats.set("cnc_refuted_by_lookahead", outcome.refuted)
    result = VerificationResult(status=Status.UNKNOWN, engine="cnc")
    result.stats = stats
    if outcome.verdict is SolveResult.SAT:
        trace, depth = _extract_trace(netlist, frames, outcome.model)
        result.status = Status.FAILED
        result.trace = trace
        result.iterations = depth
        return result
    result.iterations = bound
    if outcome.verdict is SolveResult.UNSAT:
        if netlist.num_latches == 0:
            # Depth 0 of a combinational netlist is the whole space:
            # all cubes UNSAT is a proof, not a bound exhaustion.
            result.status = Status.PROVED
        else:
            stats.incr("cnc_bound_exhausted")
    else:
        stats.incr("cnc_budget_exhausted")
    return result
