"""The conquer stage: solve leaf cubes on a multiprocessing pool.

Each open leaf becomes one :class:`ConquerTask`: the leaf's base target
extracted into a standalone (genuinely smaller) manager, plus the tail
literals' consistency edges posed as solver assumptions.  Tasks are
fanned out over :class:`repro.portfolio.runner.WorkerHandle` processes —
the same spawn/budget/kill machinery the portfolio race uses — with
parent-scheduled work stealing: at most ``workers`` cubes are in flight
and every finished worker frees a slot for the next pending cube.

Verdict aggregation is per *group* (the ``cnc`` engine uses one group;
:func:`repro.cnc.engine.split_solve_many` one per independent target):

* the first SAT in a group wins — its siblings are killed/cancelled;
* an UNSAT's assumption core names the tail literals actually needed, so
  the falsified cube is ``prefix AND core`` — every pending or running
  sibling whose literal set contains that cube is pruned unsolved;
* all leaves UNSAT/refuted/pruned aggregates to one UNSAT verdict.

``workers=0`` solves the queue in-process in deterministic order (same
code path minus the fork), which is what reproducible tests and the
traced-vs-untraced stats identity use.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.aig.graph import Aig
from repro.cnc.cube import CubeLeaf, CubeLiteral
from repro.obs import probes as _obs
from repro.portfolio.runner import (
    WorkerHandle,
    child_obs_tracer,
    parent_obs_config,
    spawn_context,
)
from repro.sat.solver import Solver, SolveResult
from repro.util.stats import StatsBag

_POLL_INTERVAL = 0.005


@dataclass(frozen=True)
class ConquerTask:
    """One cube, extracted and ready for a worker."""

    tag: int
    group: int
    literals: tuple[CubeLiteral, ...]
    aig: Aig
    target: int
    assumptions: tuple[int, ...]
    assumed: tuple[CubeLiteral, ...]
    input_nodes: dict[int, int]  # extracted input node -> source node


@dataclass
class CubeOutcome:
    """How one cube's solve ended."""

    tag: int
    group: int
    verdict: str  # sat / unsat / unknown / pruned / cancelled / crashed
    model: dict[int, bool] | None = None
    refuted_cube: frozenset[CubeLiteral] | None = None
    elapsed: float = 0.0
    solver_stats: dict[str, int] = field(default_factory=dict)


def make_task(
    aig: Aig, leaf: CubeLeaf, tag: int, group: int = 0
) -> ConquerTask:
    """Extract one open leaf into a standalone solver payload."""
    cons_edges = [literal.edge for literal in leaf.assumed]
    small, edges, node_map = aig.extract([leaf.base_target, *cons_edges])
    input_nodes = {
        node_map[node] >> 1: node
        for node in node_map
        if node and aig.is_input(node)
    }
    return ConquerTask(
        tag=tag,
        group=group,
        literals=leaf.literals,
        aig=small,
        target=edges[0],
        assumptions=tuple(edges[1:]),
        assumed=leaf.assumed,
        input_nodes=input_nodes,
    )


def _solve_task(
    task: ConquerTask, conflict_budget: int | None
) -> tuple[str, object, dict[str, int]]:
    """Solve one cube; shared by the worker body and the in-process path."""
    from repro.aig.cnf import CnfMapper

    solver = Solver()
    mapper = CnfMapper(task.aig, solver)
    solver.add_clause([mapper.lit_for(task.target)])
    assumption_lits = [mapper.lit_for(edge) for edge in task.assumptions]
    result = solver.solve(assumption_lits, conflict_budget=conflict_budget)
    stats = {
        "conflicts": solver.conflicts,
        "decisions": solver.decisions,
        "propagations": solver.propagations,
    }
    if result is SolveResult.SAT:
        model = {
            task.input_nodes[node]: value
            for node, value in mapper.model_inputs().items()
            if node in task.input_nodes
        }
        return "sat", model, stats
    if result is SolveResult.UNSAT:
        core = solver.core or ()
        core_positions = [
            index
            for index, lit in enumerate(assumption_lits)
            if lit in core
        ]
        return "unsat", core_positions, stats
    return "unknown", None, stats


def _conquer_worker(conn, task, conflict_budget, obs_cfg):
    """Cube subprocess body: announce, solve, stream obs, report back."""
    tracer = None
    try:
        conn.send(
            ("event", {"kind": "cube_started", "cube": task.tag,
                       "pid": os.getpid()})
        )
        tracer = child_obs_tracer(obs_cfg)
        with _obs.span("cnc.solve_cube", "engine", cube=task.tag,
                       literals=len(task.literals)):
            verdict, payload, stats = _solve_task(task, conflict_budget)
        if tracer is not None:
            conn.send(("obs", tracer.export_records()))
        conn.send(("ok", (verdict, payload, stats)))
    except BaseException as exc:  # noqa: BLE001 - contained
        try:
            if tracer is not None:
                conn.send(("obs", tracer.export_records()))
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


def _refuted_cube(
    task: ConquerTask, core_positions: Sequence[int]
) -> frozenset[CubeLiteral]:
    """The (smaller) cube the UNSAT core actually falsified."""
    prefix = task.literals[: len(task.literals) - len(task.assumed)]
    return frozenset(prefix) | {task.assumed[i] for i in core_positions}


def conquer(
    tasks: Sequence[ConquerTask],
    *,
    workers: int = 2,
    conflict_budget: int | None = None,
    cube_budget: float | None = None,
    lookahead_refuted: int = 0,
    stats: StatsBag | None = None,
) -> list[CubeOutcome]:
    """Solve every task, with per-group SAT cancellation and core pruning.

    Returns one :class:`CubeOutcome` per task, in task order.
    """
    bag = stats if stats is not None else StatsBag()
    outcomes: dict[int, CubeOutcome] = {}
    pending = list(tasks)
    sat_groups: set[int] = set()
    refuted: list[tuple[int, frozenset[CubeLiteral]]] = []
    solved = 0

    def tick(active: int) -> None:
        if _obs.ENABLED:
            _obs.cnc_tick(
                open_cubes=len(pending),
                solved_cubes=solved,
                refuted_cubes=lookahead_refuted,
                active_workers=active,
                bag=bag,
            )

    def absorb(task: ConquerTask, verdict: str, payload, solver_stats,
               elapsed: float) -> None:
        nonlocal solved
        outcome = CubeOutcome(
            tag=task.tag, group=task.group, verdict=verdict,
            elapsed=elapsed, solver_stats=solver_stats or {},
        )
        if verdict == "sat":
            outcome.model = payload
            sat_groups.add(task.group)
            bag.incr("cnc_cubes_sat")
        elif verdict == "unsat":
            cube = _refuted_cube(task, payload or ())
            outcome.refuted_cube = cube
            refuted.append((task.group, cube))
            bag.incr("cnc_cubes_unsat")
        elif verdict == "unknown":
            bag.incr("cnc_cubes_unknown")
        else:
            bag.incr(f"cnc_cubes_{verdict}")
        for key, value in (solver_stats or {}).items():
            bag.incr(f"cnc_{key}", value)
        solved += 1
        outcomes[task.tag] = outcome

    def dead(task: ConquerTask) -> str | None:
        """Why this task no longer needs solving (None = still live)."""
        if task.group in sat_groups:
            return "cancelled"
        literals = set(task.literals)
        for group, cube in refuted:
            if group == task.group and cube <= literals:
                return "pruned"
        return None

    def retire(task: ConquerTask, why: str) -> None:
        outcomes[task.tag] = CubeOutcome(
            tag=task.tag, group=task.group, verdict=why
        )
        bag.incr(f"cnc_cubes_{why}")

    if workers <= 0:
        for task in pending:
            why = dead(task)
            if why is not None:
                retire(task, why)
                continue
            start = time.monotonic()
            verdict, payload, solver_stats = _solve_task(
                task, conflict_budget
            )
            absorb(task, verdict, payload, solver_stats,
                   time.monotonic() - start)
            tick(0)
        return [outcomes[task.tag] for task in tasks]

    ctx = spawn_context()
    obs_cfg = parent_obs_config()
    tracer = None
    if obs_cfg is not None:
        from repro import obs

        tracer = obs.current_tracer()
    running: list[WorkerHandle] = []

    def launch() -> None:
        while pending and len(running) < workers:
            task = pending.pop(0)
            why = dead(task)
            if why is not None:
                retire(task, why)
                continue
            running.append(
                WorkerHandle(
                    ctx,
                    _conquer_worker,
                    (task, conflict_budget, obs_cfg),
                    label=f"cube{task.tag}",
                    payload=task,
                )
            )

    def reap(run: WorkerHandle, verdict: str, payload, solver_stats) -> None:
        running.remove(run)
        elapsed = run.elapsed
        run.kill()
        absorb(run.payload, verdict, payload, solver_stats, elapsed)

    launch()
    while running or pending:
        progressed = False
        for run in list(running):
            if run not in running:
                continue
            task: ConquerTask = run.payload
            why = dead(task)
            if why is not None:
                progressed = True
                running.remove(run)
                run.kill()
                retire(task, why)
                continue
            if run.conn.poll():
                progressed = True
                try:
                    kind, payload = run.conn.recv()
                except (EOFError, OSError):
                    kind, payload = "error", "worker died mid-message"
                if kind == "event":
                    continue
                if kind == "obs":
                    if tracer is not None:
                        tracer.merge_records(payload)
                    continue
                if kind == "ok":
                    verdict, result, solver_stats = payload
                    reap(run, verdict, result, solver_stats)
                else:
                    reap(run, "crashed", None, {})
            elif cube_budget is not None and run.elapsed > cube_budget:
                progressed = True
                reap(run, "unknown", None, {})
                bag.incr("cnc_cubes_timed_out")
            elif not run.process.is_alive():
                progressed = True
                reap(run, "crashed", None, {})
        launch()
        tick(len(running))
        if not progressed and (running or pending):
            time.sleep(_POLL_INTERVAL)
    return [outcomes[task.tag] for task in tasks]
