"""Lookahead gate scoring for the Cube stage.

Three layers, cheapest first:

1. **Weight heuristic** — rank the AND nodes of the current target cone
   by fanout-within-the-cone times approximate subtree size (one pass
   over the cached :class:`~repro.aig.simulate.ConePlan`, no dict
   access).  High-fanout deep gates are the ones whose assignment
   constant-folds the most downstream logic.
2. **SWAR ternary lookahead** — trial-assign the top-K candidates both
   ways in *one* pass over the plan.  Each trial owns a W-bit lane of a
   pair of packed Python integers: a ternary value is encoded as two
   mask bits ``(can0, can1)`` (``X`` = both set), negation swaps the
   masks, AND is ``(or, and)``, and the per-lane count of gates forced
   to a definite constant accumulates carry-free in the lane's W-bit
   counter field (``W`` is sized so the op count cannot overflow it).
   This is the same packed-integer style as the bit-parallel simulator,
   so 2K trials cost one interpreted loop instead of 2K.
3. **Decision** — a trial whose root goes to constant 0 soundly refutes
   that branch (overriding the gate's wire with the trial value drives
   the target false for *every* input, so no model can give the gate
   that value): the opposite value is *forced* and costs no tree depth.
   Both branches refuted means the whole cube is refuted.  Among the
   still-open candidates the split gate maximising the balanced
   reduction ``min(def0, def1)`` wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.aig.graph import Aig
from repro.aig.simulate import ConePlan, cone_plan

# Tree-size DP saturates here: beyond this the "how much logic hangs off
# this gate" signal does not improve and the ints stay machine-sized.
_SIZE_CAP = 1 << 20


@dataclass(frozen=True)
class LookaheadResult:
    """What the lookahead learned about one cube's target."""

    refuted: bool
    forced: tuple[tuple[int, bool], ...]
    gate: int | None
    score: tuple[int, int]  # definite-gate counts of the (0, 1) branches

    @property
    def progress(self) -> bool:
        return self.refuted or bool(self.forced) or self.gate is not None


def gate_weights(plan: ConePlan) -> list[tuple[int, int]]:
    """``(weight, node)`` per AND node of the plan, heaviest first.

    Weight = (1 + fanout within the cone) * approximate subtree size.
    The subtree size is the tree-size recurrence (shared logic counted
    per path) — an overcount, but a one-pass proxy for "AND nodes below",
    which is what the split is trying to collapse.
    """
    refs = [0] * plan.size
    sizes = [0] * plan.size
    for dst, src0, _n0, src1, _n1 in plan.ops:
        refs[src0] += 1
        refs[src1] += 1
        sizes[dst] = min(1 + sizes[src0] + sizes[src1], _SIZE_CAP)
    weights = [
        ((1 + refs[dst]) * sizes[dst], plan.nodes[dst])
        for dst, _s0, _n0, _s1, _n1 in plan.ops
    ]
    weights.sort(key=lambda pair: (-pair[0], pair[1]))
    return weights


def ternary_eval(
    plan: ConePlan, edge: int, clamps: Mapping[int, int]
) -> tuple[int, int]:
    """Scalar ternary evaluation (the SWAR kernel's reference).

    ``clamps`` maps node ids to 0/1 wire overrides; unclamped inputs are
    ``X`` (encoded 2).  Returns ``(root_value, definite_ops)`` where
    ``root_value`` is 0/1/2 for ``edge`` and ``definite_ops`` counts the
    AND nodes whose value settled to a constant.
    """
    values = [0] * plan.size
    for index, node in plan.inputs:
        values[index] = clamps.get(node, 2)
    definite = 0
    for dst, src0, neg0, src1, neg1 in plan.ops:
        clamp = clamps.get(plan.nodes[dst])
        if clamp is not None:
            values[dst] = clamp
            definite += 1
            continue
        a = values[src0]
        if neg0 and a != 2:
            a ^= 1
        b = values[src1]
        if neg1 and b != 2:
            b ^= 1
        if a == 0 or b == 0:
            value = 0
        elif a == 1 and b == 1:
            value = 1
        else:
            value = 2
        values[dst] = value
        if value != 2:
            definite += 1
    root = values[plan.pos.get(edge >> 1, 0)]
    if root != 2 and edge & 1:
        root ^= 1
    return root, definite


def ternary_lookahead(
    plan: ConePlan, edge: int, trials: Sequence[tuple[int, int]]
) -> list[tuple[int, int]]:
    """All ``trials`` (node, value) evaluated in one SWAR plan pass.

    Returns one ``(root_value, definite_ops)`` pair per trial, matching
    :func:`ternary_eval` with ``clamps={node: value}``.
    """
    k = len(trials)
    if k == 0:
        return []
    ops = plan.ops
    # Lane counter width: each op adds at most one to a lane's definite
    # count, so 2**w > len(ops) keeps the fields carry-free.
    w = max(2, len(ops).bit_length() + 1)
    ones = 0
    for i in range(k):
        ones |= 1 << (i * w)
    # Per-node lane patches: clear the trial lanes, then set exactly the
    # can0 or can1 bit the trial pins.
    patch: dict[int, tuple[int, int, int]] = {}
    for i, (node, value) in enumerate(trials):
        clear, p0, p1 = patch.get(node, (0, 0, 0))
        bit = 1 << (i * w)
        clear |= bit
        if value:
            p1 |= bit
        else:
            p0 |= bit
        patch[node] = (clear, p0, p1)

    can0 = [0] * plan.size
    can1 = [0] * plan.size
    can0[0] = ones  # constant FALSE: definitely 0 in every lane
    for index, node in plan.inputs:
        entry = patch.get(node)
        if entry is None:
            can0[index] = ones
            can1[index] = ones
        else:
            clear, p0, p1 = entry
            keep = ones & ~clear
            can0[index] = keep | p0
            can1[index] = keep | p1
    score = 0
    for dst, src0, neg0, src1, neg1 in ops:
        a0, a1 = (can1[src0], can0[src0]) if neg0 else (can0[src0], can1[src0])
        b0, b1 = (can1[src1], can0[src1]) if neg1 else (can0[src1], can1[src1])
        c0 = a0 | b0
        c1 = a1 & b1
        entry = patch.get(plan.nodes[dst])
        if entry is not None:
            clear, p0, p1 = entry
            c0 = (c0 & ~clear) | p0
            c1 = (c1 & ~clear) | p1
        can0[dst] = c0
        can1[dst] = c1
        score += ones & ~(c0 & c1)

    index = plan.pos.get(edge >> 1, 0)
    r0, r1 = can0[index], can1[index]
    if edge & 1:
        r0, r1 = r1, r0
    field = (1 << w) - 1
    results = []
    for i in range(k):
        bit = 1 << (i * w)
        zero, one = bool(r0 & bit), bool(r1 & bit)
        value = 2 if (zero and one) else (1 if one else 0)
        results.append((value, (score >> (i * w)) & field))
    return results


def analyze(
    aig: Aig,
    target: int,
    *,
    candidates_limit: int = 10,
    exclude: Iterable[int] = (),
) -> LookaheadResult:
    """Score one cube's target: forced values, refutation, split gate.

    ``exclude`` lists nodes already assigned on this cube's path (their
    consistency conjuncts keep them in the cone, but re-splitting them
    makes no progress).  The target's own root is likewise excluded —
    assigning it rebuilds the identical target.
    """
    plan = cone_plan(aig, (target,))
    excluded = set(exclude)
    excluded.add(target >> 1)
    candidates = [
        node
        for _weight, node in gate_weights(plan)
        if node not in excluded
    ][:candidates_limit]
    if not candidates:
        # Purely-structural cones (no AND left to split): fall back to
        # the cone's primary inputs, widest implied reduction first.
        candidates = [
            node for _index, node in plan.inputs if node not in excluded
        ][:candidates_limit]
    if not candidates:
        return LookaheadResult(False, (), None, (0, 0))
    trials: list[tuple[int, int]] = []
    for node in candidates:
        trials.append((node, 0))
        trials.append((node, 1))
    lanes = ternary_lookahead(plan, target, trials)
    forced: list[tuple[int, bool]] = []
    best: tuple[int, int, int] | None = None  # (-min, -sum, node) ordering
    best_score = (0, 0)
    for pos, node in enumerate(candidates):
        value0, def0 = lanes[2 * pos]
        value1, def1 = lanes[2 * pos + 1]
        if value0 == 0 and value1 == 0:
            return LookaheadResult(True, tuple(forced), None, (def0, def1))
        if value0 == 0:
            forced.append((node, True))
            continue
        if value1 == 0:
            forced.append((node, False))
            continue
        key = (-min(def0, def1), -(def0 + def1), node)
        if best is None or key < best:
            best = key
            best_score = (def0, def1)
    if forced:
        # Apply the free assignments first; the caller re-analyzes the
        # reduced target before spending depth on a split.
        return LookaheadResult(False, tuple(forced), None, (0, 0))
    return LookaheadResult(
        False, (), best[2] if best is not None else None, best_score
    )
