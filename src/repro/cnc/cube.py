"""The Cube stage: recursive lookahead splitting into a cube tree.

A cube is an ordered conjunction of *gate literals* ``(node, value)``
over the shared manager.  Assuming a literal rewrites the target by
constant propagation (:meth:`repro.aig.graph.Aig.rebuild` with the gate
replaced by the constant) and conjoins the gate's consistency edge, so

    assume(target, g, v)  ==  target AND (g == v)      (pointwise)

holds by construction.  That single identity carries the whole scheme:

* sibling cubes diverge on one literal, so they are pairwise
  contradictory and the leaf cubes of a tree *partition* the space;
* any model of a leaf's reduced target is a model of the original;
* all leaves UNSAT implies the original target UNSAT.

Downstream logic of an assigned gate constant-folds away (the "genuinely
smaller CNF" the conquer workers see); the gate's own fanin cone stays,
pinned by the consistency conjunct.  Leaves whose target folds to the
constant FALSE — directly or via the lookahead's ternary refutation —
are *refuted* without ever reaching a solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aig.graph import FALSE, TRUE, Aig
from repro.cnc.lookahead import analyze
from repro.obs import probes as _obs
from repro.util.stats import StatsBag

# Forced-value applications per tree node are bounded defensively: each
# one assigns a fresh gate, but the consistency conjuncts can surface new
# foldable structure indefinitely on pathological cones.
_MAX_FORCED_PER_NODE = 64


@dataclass(frozen=True)
class CubeLiteral:
    """One gate assignment of a cube."""

    node: int
    value: bool

    @property
    def edge(self) -> int:
        """The edge asserting "this gate's function equals the value"."""
        return 2 * self.node + (0 if self.value else 1)


@dataclass(frozen=True)
class CubeLeaf:
    """One leaf of the cube tree.

    ``target`` is the fully-reduced edge (original AND all literals);
    ``base_target`` is the ancestor's reduction with the last
    ``len(assumed)`` literals *not* applied — the conquer stage asserts
    ``base_target`` and poses the tail literals as solver assumptions,
    so an UNSAT core over them refutes an ancestor cube, not just this
    leaf.
    """

    literals: tuple[CubeLiteral, ...]
    target: int
    base_target: int
    assumed: tuple[CubeLiteral, ...]
    refuted: bool = False


@dataclass
class CubeTree:
    """The Cube stage's product: every leaf, open and refuted."""

    root_target: int
    leaves: list[CubeLeaf] = field(default_factory=list)
    splits: int = 0
    forced: int = 0

    @property
    def open_leaves(self) -> list[CubeLeaf]:
        return [leaf for leaf in self.leaves if not leaf.refuted]

    @property
    def refuted_leaves(self) -> int:
        return sum(1 for leaf in self.leaves if leaf.refuted)


def assume_literal(aig: Aig, target: int, node: int, value: bool) -> int:
    """``target AND (gate == value)``, with the gate constant-folded."""
    constant = TRUE if value else FALSE
    reduced = aig.rebuild(target, {node: constant})
    return aig.and_(reduced, 2 * node + (0 if value else 1))


def build_cube_tree(
    aig: Aig,
    target: int,
    *,
    cube_depth: int = 4,
    candidates_limit: int = 10,
    assume_tail: int = 1,
    stats: StatsBag | None = None,
) -> CubeTree:
    """Split ``target`` into a cube tree of at most ``2**cube_depth`` leaves.

    Forced values (branches the ternary lookahead refutes) are applied
    without spending depth; their refuted siblings become leaves so the
    leaf set stays a full partition.
    """
    tree = CubeTree(root_target=target)
    bag = stats if stats is not None else StatsBag()

    def leaf(literals, path_targets, refuted):
        cut = max(0, len(literals) - assume_tail)
        tree.leaves.append(
            CubeLeaf(
                literals=tuple(literals),
                target=path_targets[-1],
                base_target=path_targets[cut],
                assumed=tuple(literals[cut:]),
                refuted=refuted,
            )
        )
        if refuted:
            bag.incr("cnc_cube_refuted_leaves")

    # Depth-first over (literals, per-literal target chain, budget).
    # path_targets[i] is the reduction after literals[:i], so it is one
    # longer than literals.
    stack: list[tuple[list[CubeLiteral], list[int], int]] = [
        ([], [target], cube_depth)
    ]
    while stack:
        literals, path_targets, budget = stack.pop()
        current = path_targets[-1]
        refuted_here = False
        forced_rounds = 0
        gate = None
        while True:
            if current == FALSE:
                refuted_here = True
                break
            if budget == 0 or forced_rounds >= _MAX_FORCED_PER_NODE:
                break
            look = analyze(
                aig,
                current,
                candidates_limit=candidates_limit,
                exclude=[lit.node for lit in literals],
            )
            if look.refuted:
                refuted_here = True
                break
            if look.forced:
                for node, value in look.forced:
                    # The opposite branch is refuted by lookahead: emit
                    # it as a leaf so the partition stays complete.
                    sibling = literals + [CubeLiteral(node, not value)]
                    leaf(sibling, path_targets + [FALSE], refuted=True)
                    current = assume_literal(aig, current, node, value)
                    literals = literals + [CubeLiteral(node, value)]
                    path_targets = path_targets + [current]
                    tree.forced += 1
                    bag.incr("cnc_cube_forced")
                    forced_rounds += 1
                    if current == FALSE:
                        break
                continue
            gate = look.gate
            break
        if refuted_here:
            leaf(literals, path_targets, refuted=True)
        elif gate is None or budget == 0:
            leaf(literals, path_targets, refuted=False)
        else:
            tree.splits += 1
            bag.incr("cnc_cube_splits")
            for value in (True, False):
                child = assume_literal(aig, current, gate, value)
                stack.append(
                    (
                        literals + [CubeLiteral(gate, value)],
                        path_targets + [child],
                        budget - 1,
                    )
                )
        if _obs.ENABLED:
            _obs.cnc_tick(
                open_cubes=len(stack),
                solved_cubes=0,
                refuted_cubes=int(bag.get("cnc_cube_refuted_leaves")),
                active_workers=0,
                bag=bag,
            )
    bag.set("cnc_cube_leaves", len(tree.leaves))
    return tree
