"""SAT-based merge-point detection (step 3 of the paper's merge phase).

All equivalence checks of one sweeping session share a single incremental
solver: the AIG cones are Tseitin-encoded once through a persistent
:class:`~repro.aig.cnf.CnfMapper`, and each check activates two temporary
"difference" clauses through a fresh selector variable assumed for that call
only.  This is the paper's factorization of "several checks together within
a single ZChaff run": no clause database is ever reloaded, and everything
the solver learns carries over to later checks.

Checks yield three verdicts: proven equal (UNSAT), proven different (SAT —
the model becomes a new simulation pattern), or unknown (conflict budget
exhausted; the pair is conservatively left unmerged).
"""

from __future__ import annotations

from repro.aig.cnf import CnfMapper
from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.sat.solver import Solver, SolveResult
from repro.sweep.signatures import SignatureTable
from repro.util.stats import StatsBag


class SatSweeper:
    """Incremental SAT sweeping over one AIG manager."""

    def __init__(
        self,
        aig: Aig,
        signatures: SignatureTable | None = None,
        conflict_budget: int = 3000,
        max_candidates: int = 8,
        sim_words: int = 4,
        seed: int = 2005,
    ) -> None:
        self.aig = aig
        self.mapper = CnfMapper(aig, Solver())
        self.signatures = signatures
        self.conflict_budget = conflict_budget
        self.max_candidates = max_candidates
        self._sim_words = sim_words
        self._seed = seed
        self.stats = StatsBag()

    # ------------------------------------------------------------------ #
    # Primitive checks
    # ------------------------------------------------------------------ #

    def check_equal(self, a: int, b: int) -> bool | None:
        """Is ``a == b`` for all inputs?  True / False / None (unknown).

        On a SAT (different) verdict the distinguishing input pattern is
        pushed into the signature table, refining future candidate classes.
        """
        if a == b:
            return True
        if a == edge_not(b):
            return False
        self.stats.incr("sat_checks")
        solver = self.mapper.solver
        lit_a = self.mapper.lit_for(a)
        lit_b = self.mapper.lit_for(b)
        selector = solver.new_var()
        # selector -> (a != b)
        solver.add_clause([-selector, lit_a, lit_b])
        solver.add_clause([-selector, -lit_a, -lit_b])
        result = solver.solve(
            [selector], conflict_budget=self.conflict_budget
        )
        solver.add_clause([-selector])  # retire this check's clauses
        if result is SolveResult.UNSAT:
            self.stats.incr("proved_equal")
            return True
        if result is SolveResult.SAT:
            self.stats.incr("proved_different")
            self._learn_counterexample()
            return False
        self.stats.incr("unknown_checks")
        return None

    def check_constant(self, edge: int, value: bool) -> bool | None:
        """Is ``edge`` constantly ``value``?  True / False / None."""
        target = edge_not(edge) if value else edge
        if target == FALSE:
            return True
        if target == TRUE:
            return False
        self.stats.incr("sat_checks")
        solver = self.mapper.solver
        lit = self.mapper.lit_for(target)
        result = solver.solve([lit], conflict_budget=self.conflict_budget)
        if result is SolveResult.UNSAT:
            self.stats.incr("proved_constant")
            return True
        if result is SolveResult.SAT:
            self._learn_counterexample()
            return False
        self.stats.incr("unknown_checks")
        return None

    def _learn_counterexample(self) -> None:
        if self.signatures is None:
            return
        pattern = self.mapper.model_inputs()
        self.signatures.add_pattern(pattern)
        self.stats.incr("counterexamples_learned")

    # ------------------------------------------------------------------ #
    # Forward sweeping
    # ------------------------------------------------------------------ #

    def sweep(self, roots: list[int]) -> tuple[list[int], dict[int, int]]:
        """Forward sweep: merge equivalent nodes bottom-up.

        "Forward processing is more similar to the BDD sweeping technique,
        as we start merging from primary inputs and propagate checks to the
        primary outputs.  In this case as long as we find equivalent points,
        we can learn them, thus simplifying successive equivalence checks."

        Returns ``(new_roots, rebuilt)`` where ``rebuilt`` maps original
        nodes to their representative edges in the same manager.
        """
        aig = self.aig
        if self.signatures is None:
            self.signatures = SignatureTable(
                aig, roots, words=self._sim_words, seed=self._seed
            )
        else:
            self.signatures.refresh_roots(roots)
        signatures = self.signatures
        signatures.freeze()  # keys must stay comparable within this sweep
        rebuilt: dict[int, int] = {0: FALSE}
        # Candidate classes over *original* nodes; reps store the
        # phase-normalized rebuilt edge.
        reps: dict[bytes, list[int]] = {}
        for node in aig.cone(roots):
            if aig.is_input(node):
                rebuilt[node] = 2 * node
                phase, key = signatures.signature_key(node)
                reps.setdefault(key, []).append(2 * node ^ int(phase))
                continue
            f0, f1 = aig.fanins(node)
            default = aig.and_(
                rebuilt[f0 >> 1] ^ (f0 & 1),
                rebuilt[f1 >> 1] ^ (f1 & 1),
            )
            if default in (FALSE, TRUE):
                rebuilt[node] = default
                self.stats.incr("constant_folds")
                continue
            # Constant candidates first (all-0/all-1 signature).
            suggested = signatures.is_candidate_constant(node)
            if suggested is not None:
                verdict = self.check_constant(default, suggested)
                if verdict:
                    rebuilt[node] = TRUE if suggested else FALSE
                    self.stats.incr("constant_merges")
                    continue
            phase, key = signatures.signature_key(node)
            merged = False
            candidates = reps.get(key, ())
            for normalized_rep in candidates[: self.max_candidates]:
                candidate = normalized_rep ^ int(phase)
                if candidate == default:
                    rebuilt[node] = default
                    merged = True
                    self.stats.incr("hash_merges")
                    break
                verdict = self.check_equal(default, candidate)
                if verdict:
                    rebuilt[node] = candidate
                    merged = True
                    self.stats.incr("sat_merges")
                    break
            if not merged:
                rebuilt[node] = default
                reps.setdefault(key, []).append(default ^ int(phase))
        new_roots = [rebuilt[e >> 1] ^ (e & 1) for e in roots]
        signatures.thaw()
        return new_roots, rebuilt

    # ------------------------------------------------------------------ #
    # Backward pairwise merging
    # ------------------------------------------------------------------ #

    def merge_pair_backward(self, a: int, b: int) -> tuple[int, dict[int, int]]:
        """Merge the cone of ``b`` into ``a`` starting from the outputs.

        "Backward processing is generally better in case of high merge
        probability (similar cofactors), as few checks on the output region
        can quickly find equivalence and merge points, and stop recursion."

        Works down from the root pair: when a pair proves equivalent the
        descent stops there (the whole sub-cone merges at once); otherwise
        the fanin pairs are tried.  Returns ``(new_b, merge_map)`` where
        ``merge_map`` maps nodes of b's cone to edges into a's cone.
        """
        aig = self.aig
        if self.signatures is None:
            self.signatures = SignatureTable(
                aig, [a, b], words=self._sim_words, seed=self._seed
            )
        else:
            self.signatures.refresh_roots([a, b])
        signatures = self.signatures
        signatures.freeze()
        merge_map: dict[int, int] = {}
        visited_pairs: set[tuple[int, int]] = set()
        # Worklist of (node_of_a_cone_edge, node_of_b_cone_edge) pairs.
        worklist: list[tuple[int, int]] = [(a, b)]
        while worklist:
            edge_a, edge_b = worklist.pop()
            node_a, node_b = edge_a >> 1, edge_b >> 1
            pair = (node_a, node_b)
            if pair in visited_pairs or node_b in merge_map:
                continue
            visited_pairs.add(pair)
            if node_a == node_b:
                continue
            if node_b == 0 or aig.is_input(node_b):
                continue  # only AND nodes of b's cone get merged
            sig_a = signatures.edge_signature(edge_a)
            sig_b = signatures.edge_signature(edge_b)
            compatible_equal = bool((sig_a == sig_b).all())
            compatible_compl = bool((sig_a == ~sig_b).all())
            if compatible_equal or compatible_compl:
                target = edge_a if compatible_equal else edge_not(edge_a)
                verdict = self.check_equal(target, edge_b)
                if verdict:
                    # b-node expressed through a's cone; stop descending.
                    merge_map[node_b] = target ^ (edge_b & 1)
                    self.stats.incr("backward_merges")
                    continue
            # Descend into fanin pairs (all four combinations, signature
            # filtering happens on the next visit).
            if aig.is_and(node_a) and aig.is_and(node_b):
                a0, a1 = aig.fanins(node_a)
                b0, b1 = aig.fanins(node_b)
                for fa in (a0, a1):
                    for fb in (b0, b1):
                        worklist.append((fa, fb))
        signatures.thaw()
        if not merge_map:
            return b, merge_map
        new_b = aig.rebuild(b, merge_map)
        return new_b, merge_map


def prove_edges_equivalent(
    aig: Aig,
    a: int,
    b: int,
    conflict_budget: int | None = None,
    split_workers: int | None = None,
) -> tuple[bool | None, dict[int, bool] | None]:
    """One-shot combinational equivalence check of two edges.

    Returns ``(verdict, counterexample)``: verdict True (equal), False
    (different, with a distinguishing input assignment), or None (budget
    exhausted).

    ``split_workers`` (``None`` = off) reroutes the check through
    :func:`repro.cnc.engine.split_solve`: the XOR difference miter is
    cube-split and conquered on that many worker processes (0 keeps the
    cubes in-process) — the escape hatch for the rare merge candidate
    hard enough to dominate a sweeping session.
    """
    if a == b:
        return True, None
    if split_workers is not None:
        from repro.aig.ops import support_many, xnor
        from repro.cnc.engine import split_solve

        diff = edge_not(xnor(aig, a, b))
        if diff == FALSE:
            return True, None
        if diff == TRUE:
            return False, {n: False for n in support_many(aig, [a, b])}
        outcome = split_solve(
            aig, diff, workers=split_workers,
            conflict_budget=conflict_budget,
        )
        if outcome.verdict is SolveResult.UNSAT:
            return True, None
        if outcome.verdict is SolveResult.SAT:
            pattern = {n: False for n in support_many(aig, [a, b])}
            pattern.update(outcome.model)
            return False, pattern
        return None, None
    mapper = CnfMapper(aig, Solver())
    lit_a = mapper.lit_for(a)
    lit_b = mapper.lit_for(b)
    solver = mapper.solver
    selector = solver.new_var()
    solver.add_clause([-selector, lit_a, lit_b])
    solver.add_clause([-selector, -lit_a, -lit_b])
    result = solver.solve(
        [selector],
        conflict_budget=conflict_budget,
    )
    if result is SolveResult.UNSAT:
        return True, None
    if result is SolveResult.SAT:
        return False, mapper.model_inputs()
    return None, None
