"""Circuit-SAT sweeping: the merge phase with a circuit solver back end.

The paper runs its step-3 equivalence checks through a general CNF solver
(ZChaff) and notes "we plan to experiment with circuit-SAT in the future".
:class:`CircuitSweeper` is that experiment plugged into the same sweeping
skeleton as :class:`repro.sweep.satsweep.SatSweeper`: identical candidate
detection through simulation signatures, identical forward merge order, but
every proof obligation is discharged by the justification-based
:class:`repro.sat.circuit.CircuitSolver` directly on the AIG — no Tseitin
encoding, no clause database.

The two sweepers are deliberately interchangeable (same ``sweep`` contract)
so the merge-engine benchmarks can swap them and compare check counts and
merge yields under both back ends.
"""

from __future__ import annotations

from repro.aig.graph import FALSE, TRUE, Aig
from repro.sat.circuit import CircuitSolver
from repro.sweep.signatures import SignatureTable
from repro.util.stats import StatsBag


class CircuitSweeper:
    """Forward sweeping with circuit-SAT equivalence checks.

    Mirrors :class:`repro.sweep.satsweep.SatSweeper`'s forward pass:
    candidate classes come from phase-normalized simulation signatures,
    constant candidates are tried first, and counterexamples found by the
    solver refine the signature table for later checks.
    """

    def __init__(
        self,
        aig: Aig,
        signatures: SignatureTable | None = None,
        conflict_budget: int = 3000,
        max_candidates: int = 8,
        sim_words: int = 4,
        seed: int = 2005,
    ) -> None:
        self.aig = aig
        self.solver = CircuitSolver(aig, conflict_budget=conflict_budget)
        self.signatures = signatures
        self.conflict_budget = conflict_budget
        self.max_candidates = max_candidates
        self._sim_words = sim_words
        self._seed = seed
        self.stats = StatsBag()

    # ------------------------------------------------------------------ #
    # Primitive checks (same contract as SatSweeper)
    # ------------------------------------------------------------------ #

    def check_equal(self, a: int, b: int) -> bool | None:
        """Is ``a == b`` for all inputs?  True / False / None (unknown)."""
        self.stats.incr("sat_checks")
        verdict = self.solver.check_equal(a, b, self.conflict_budget)
        if verdict is True:
            self.stats.incr("proved_equal")
        elif verdict is False:
            self.stats.incr("proved_different")
            self._learn_counterexample()
        else:
            self.stats.incr("unknown_checks")
        return verdict

    def check_constant(self, edge: int, value: bool) -> bool | None:
        """Is ``edge`` constantly ``value``?  True / False / None."""
        self.stats.incr("sat_checks")
        verdict = self.solver.check_constant(edge, value, self.conflict_budget)
        if verdict is True:
            self.stats.incr("proved_constant")
        elif verdict is False:
            self._learn_counterexample()
        else:
            self.stats.incr("unknown_checks")
        return verdict

    def _learn_counterexample(self) -> None:
        if self.signatures is None:
            return
        self.signatures.add_pattern(self.solver.model_inputs())
        self.stats.incr("counterexamples_learned")

    # ------------------------------------------------------------------ #
    # Forward sweeping
    # ------------------------------------------------------------------ #

    def sweep(self, roots: list[int]) -> tuple[list[int], dict[int, int]]:
        """Forward sweep with circuit-SAT checks; same contract as SatSweeper.

        Returns ``(new_roots, rebuilt)`` where ``rebuilt`` maps original
        nodes to their representative edges in the same manager.
        """
        aig = self.aig
        if self.signatures is None:
            self.signatures = SignatureTable(
                aig, roots, words=self._sim_words, seed=self._seed
            )
        else:
            self.signatures.refresh_roots(roots)
        signatures = self.signatures
        signatures.freeze()
        rebuilt: dict[int, int] = {0: FALSE}
        reps: dict[bytes, list[int]] = {}
        for node in aig.cone(roots):
            if aig.is_input(node):
                rebuilt[node] = 2 * node
                phase, key = signatures.signature_key(node)
                reps.setdefault(key, []).append(2 * node ^ int(phase))
                continue
            f0, f1 = aig.fanins(node)
            default = aig.and_(
                rebuilt[f0 >> 1] ^ (f0 & 1),
                rebuilt[f1 >> 1] ^ (f1 & 1),
            )
            if default in (FALSE, TRUE):
                rebuilt[node] = default
                self.stats.incr("constant_folds")
                continue
            suggested = signatures.is_candidate_constant(node)
            if suggested is not None:
                verdict = self.check_constant(default, suggested)
                if verdict:
                    rebuilt[node] = TRUE if suggested else FALSE
                    self.stats.incr("constant_merges")
                    continue
            phase, key = signatures.signature_key(node)
            merged = False
            candidates = reps.get(key, ())
            for normalized_rep in candidates[: self.max_candidates]:
                candidate = normalized_rep ^ int(phase)
                if candidate == default:
                    rebuilt[node] = default
                    merged = True
                    self.stats.incr("hash_merges")
                    break
                verdict = self.check_equal(default, candidate)
                if verdict:
                    rebuilt[node] = candidate
                    merged = True
                    self.stats.incr("sat_merges")
                    break
            if not merged:
                rebuilt[node] = default
                reps.setdefault(key, []).append(default ^ int(phase))
        new_roots = [rebuilt[e >> 1] ^ (e & 1) for e in roots]
        signatures.thaw()
        return new_roots, rebuilt
