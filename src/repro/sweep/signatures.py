"""Random-simulation signatures for candidate-equivalence detection.

Two nodes can only be functionally equivalent (or antivalent) if their
simulation vectors agree (or are complements) on every pattern.  The table
maintains per-node vectors, groups nodes into candidate classes by
phase-normalized signature, and accepts counterexample patterns from failed
SAT checks to split classes — the feedback loop the paper describes.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.aig.graph import Aig
from repro.aig.simulate import simulate_nodes

_WORD_BITS = 64


class SignatureTable:
    """Per-node simulation signatures over a growing pattern set.

    Patterns are stored column-wise as uint64 words per input.  New
    counterexample patterns are buffered and applied in batches of 64
    (one extra word) to keep numpy overhead low.
    """

    def __init__(
        self,
        aig: Aig,
        roots: Sequence[int],
        words: int = 4,
        seed: int = 2005,
    ) -> None:
        self.aig = aig
        self.roots = list(roots)
        self._rng = np.random.default_rng(seed)
        self._inputs = [
            node for node in aig.cone(self.roots) if aig.is_input(node)
        ]
        self._input_vectors: dict[int, np.ndarray] = {
            node: self._rng.integers(0, 2**64, size=words, dtype=np.uint64)
            for node in self._inputs
        }
        self._pending: list[Mapping[int, bool]] = []
        self._node_sigs: dict[int, np.ndarray] = {}
        self._frozen = False
        self._resimulate()

    # ------------------------------------------------------------------ #
    # Simulation management
    # ------------------------------------------------------------------ #

    def _resimulate(self) -> None:
        self._node_sigs = simulate_nodes(
            self.aig, self._input_vectors, self.roots
        )

    def add_pattern(self, assignment: Mapping[int, bool]) -> None:
        """Queue a counterexample pattern (input node -> value).

        Patterns are folded in lazily; while a sweep is in flight the table
        is frozen (see :meth:`freeze`) so that signature keys stay mutually
        comparable within that sweep.
        """
        self._pending.append(dict(assignment))
        if not self._frozen and len(self._pending) >= _WORD_BITS:
            self.flush()

    def freeze(self) -> None:
        """Suspend automatic flushing (keys stay stable until :meth:`thaw`)."""
        self._frozen = True

    def thaw(self) -> None:
        """Re-enable flushing and fold any queued patterns."""
        self._frozen = False
        self.flush()

    def flush(self) -> None:
        """Fold queued patterns into the vectors and resimulate."""
        if not self._pending:
            return
        num_words = (len(self._pending) + _WORD_BITS - 1) // _WORD_BITS
        for node in self._inputs:
            extra = np.zeros(num_words, dtype=np.uint64)
            for bit, pattern in enumerate(self._pending):
                if pattern.get(node, False):
                    extra[bit // _WORD_BITS] |= np.uint64(1) << np.uint64(
                        bit % _WORD_BITS
                    )
            self._input_vectors[node] = np.concatenate(
                [self._input_vectors[node], extra]
            )
        self._pending.clear()
        self._resimulate()

    def refresh_roots(self, roots: Sequence[int]) -> None:
        """Extend the table to cover additional root cones."""
        self.roots = list(dict.fromkeys(list(self.roots) + list(roots)))
        new_inputs = [
            node
            for node in self.aig.cone(self.roots)
            if self.aig.is_input(node) and node not in self._input_vectors
        ]
        words = self.words
        for node in new_inputs:
            self._inputs.append(node)
            self._input_vectors[node] = self._rng.integers(
                0, 2**64, size=words, dtype=np.uint64
            )
        self._resimulate()

    @property
    def words(self) -> int:
        if not self._input_vectors:
            return 0
        return len(next(iter(self._input_vectors.values())))

    # ------------------------------------------------------------------ #
    # Signatures
    # ------------------------------------------------------------------ #

    def node_signature(self, node: int) -> np.ndarray:
        """Raw simulation vector of a node (patterns pending are excluded)."""
        sig = self._node_sigs.get(node)
        if sig is None:
            # Node created after the last resimulation: simulate its cone.
            self._node_sigs.update(
                simulate_nodes(self.aig, self._input_vectors, [2 * node])
            )
            sig = self._node_sigs[node]
        return sig

    def edge_signature(self, edge: int) -> np.ndarray:
        sig = self.node_signature(edge >> 1)
        return ~sig if edge & 1 else sig

    def signature_key(self, node: int) -> tuple[bool, bytes]:
        """Phase-normalized hashable signature.

        Returns ``(phase, key)`` where nodes with equal keys are candidates:
        equal phase suggests equivalence, opposite phase antivalence.
        """
        sig = self.node_signature(node)
        phase = bool(sig[0] & np.uint64(1))
        normalized = ~sig if phase else sig
        return phase, normalized.tobytes()

    def edges_may_be_equal(self, a: int, b: int) -> bool:
        """Necessary condition for edge equivalence (vector equality)."""
        return bool(np.array_equal(self.edge_signature(a), self.edge_signature(b)))

    def classes(self, nodes: Iterable[int]) -> dict[bytes, list[tuple[int, bool]]]:
        """Group nodes into candidate classes.

        Returns key -> list of (node, phase).  Nodes in one class with equal
        phases are equivalence candidates; opposite phases, antivalence.
        """
        table: dict[bytes, list[tuple[int, bool]]] = {}
        for node in nodes:
            phase, key = self.signature_key(node)
            table.setdefault(key, []).append((node, phase))
        return table

    def is_candidate_constant(self, node: int) -> bool | None:
        """If the node's signature is all-0 or all-1, the suggested constant."""
        sig = self.node_signature(node)
        if not sig.any():
            return False
        if np.array_equal(sig, np.full_like(sig, ~np.uint64(0))):
            return True
        return None
