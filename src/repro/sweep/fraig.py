"""FRAIG-style functional reduction: sweep, then garbage-collect.

The paper's merge phase proves node equivalences but leaves the manager
monotone — superseded logic stays behind (append-only AIGs never free
nodes).  A *functionally reduced* AIG additionally drops that garbage:
the swept cones are extracted into a fresh manager, so the node count
really shrinks instead of only the live cone getting smaller.

``fraig`` iterates sweep-and-extract rounds until no further merge is
found; each extraction gives the next round's signatures and SAT session
a smaller problem.  The traversal engine uses a single round per
compaction period; the benchmarks run it standalone on state-set
snapshots (experiment F3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.graph import Aig
from repro.errors import AigError
from repro.sweep.circuitsweep import CircuitSweeper
from repro.sweep.satsweep import SatSweeper
from repro.util.stats import StatsBag


@dataclass
class FraigResult:
    """A functionally reduced copy of the requested cones."""

    aig: Aig
    edges: list[int]
    node_map: dict[int, int]   # original input nodes -> new input nodes
    stats: StatsBag

    @property
    def size(self) -> int:
        return self.aig.num_ands


def fraig(
    aig: Aig,
    roots: list[int],
    engine: str = "cnf",
    conflict_budget: int = 3000,
    max_rounds: int = 4,
    sim_words: int = 4,
    seed: int = 2005,
    keep_all_inputs: bool = False,
) -> FraigResult:
    """Functionally reduce the cones of ``roots`` into a fresh manager.

    ``engine`` selects the proof back end for the sweep: ``"cnf"`` (the
    factorized incremental CDCL session) or ``"circuit"`` (the
    justification-based circuit solver).  Rounds repeat while merges keep
    landing, up to ``max_rounds``.

    Returns a :class:`FraigResult` whose ``node_map`` maps the original
    manager's *input nodes* to the new manager's input nodes, so callers
    (e.g. the traversal engine) can re-anchor latches and inputs.
    """
    if engine not in ("cnf", "circuit"):
        raise AigError(f"unknown fraig engine: {engine!r}")
    stats = StatsBag()
    stats.set("size_before", _live_ands(aig, roots))
    current_aig = aig
    current_roots = list(roots)
    # original input node -> current manager's input node
    input_map = {node: node for node in aig.inputs}
    for _ in range(max_rounds):
        if engine == "cnf":
            sweeper = SatSweeper(
                current_aig,
                conflict_budget=conflict_budget,
                sim_words=sim_words,
                seed=seed,
            )
        else:
            sweeper = CircuitSweeper(
                current_aig,
                conflict_budget=conflict_budget,
                sim_words=sim_words,
                seed=seed,
            )
        swept_roots, _ = sweeper.sweep(current_roots)
        stats.merge(sweeper.stats)
        stats.incr("rounds")
        merges = sweeper.stats.get("sat_merges", 0) + sweeper.stats.get(
            "constant_merges", 0
        )
        extracted, new_roots, node_map = current_aig.extract(
            swept_roots, keep_all_inputs=keep_all_inputs
        )
        input_map = {
            original: node_map[node] >> 1
            for original, node in input_map.items()
            if node in node_map
        }
        current_aig, current_roots = extracted, new_roots
        if merges == 0:
            break
    stats.set("size_after", _live_ands(current_aig, current_roots))
    return FraigResult(
        aig=current_aig,
        edges=current_roots,
        node_map=input_map,
        stats=stats,
    )


def fraig_netlist(netlist) -> "Netlist":
    """A functionally reduced copy posing the same verification problem.

    Reduces the latch next-state cones, the property and the constraints
    into a fresh manager, preserving latch/input registration order,
    names and initial values — so the copy has the same structural hash
    *role* layout and the same positional trace encoding as the original
    (a counterexample found on the copy remaps onto the original by
    position).  This is the portfolio's preprocessing hook.
    """
    # Imported here: repro.circuits must not become a hard dependency of
    # the sweep package's module graph (the AIG-level API stays pure).
    from repro.circuits.netlist import Latch, Netlist

    netlist.validate()
    roots = [latch.next_edge for latch in netlist.latches]
    if netlist.has_property:
        roots.append(netlist.property_edge)
    roots.extend(netlist.constraints)
    if not roots:
        return netlist
    reduced = fraig(netlist.aig, roots, keep_all_inputs=True)
    node_map = reduced.node_map  # original input node -> new input node
    latches = []
    cursor = 0
    for latch in netlist.latches:
        latches.append(
            Latch(
                node=node_map[latch.node],
                next_edge=reduced.edges[cursor],
                init=latch.init,
                name=latch.name,
            )
        )
        cursor += 1
    property_edge = None
    if netlist.has_property:
        property_edge = reduced.edges[cursor]
        cursor += 1
    return Netlist.from_aig(
        reduced.aig,
        input_nodes=[node_map[n] for n in netlist.input_nodes],
        latches=latches,
        property_edge=property_edge,
        constraints=reduced.edges[cursor:],
        name=netlist.name,
    )


def fraig_in_place(
    aig: Aig,
    roots: list[int],
    engine: str = "cnf",
    conflict_budget: int = 3000,
    sweeper: SatSweeper | CircuitSweeper | None = None,
) -> tuple[list[int], StatsBag]:
    """One functional-reduction round that stays in the same manager.

    The manager keeps growing (append-only), but the returned root cones
    are functionally reduced.  Useful when edges must stay valid in the
    caller's manager — e.g. between quantification steps.
    """
    stats = StatsBag()
    stats.set("size_before", _live_ands(aig, roots))
    if sweeper is None:
        if engine == "cnf":
            sweeper = SatSweeper(aig, conflict_budget=conflict_budget)
        elif engine == "circuit":
            sweeper = CircuitSweeper(aig, conflict_budget=conflict_budget)
        else:
            raise AigError(f"unknown fraig engine: {engine!r}")
    new_roots, _ = sweeper.sweep(roots)
    stats.merge(sweeper.stats)
    stats.set("size_after", _live_ands(aig, new_roots))
    return new_roots, stats


def _live_ands(aig: Aig, roots: list[int]) -> int:
    return sum(1 for node in aig.cone(roots) if aig.is_and(node))
