"""Merge-phase engines (Section 2.1 of the paper).

Three escalating ways to find merge points between the cofactor circuits:

1. structural hashing — free, courtesy of the AIG manager's hash-consing
   ("we exploit AIG semi-canonicity and hashing scheme to early detect
   functionally equivalent map points");
2. BDD sweeping — canonical BDDs under a node budget, cut points past it
   (:mod:`repro.sweep.bddsweep`, after Kuehlmann-Krohm [4]);
3. SAT-based checks for the remaining compare points, factorized inside a
   single incremental solver (:mod:`repro.sweep.satsweep`).

Simulation signatures (:mod:`repro.sweep.signatures`) pre-filter candidate
pairs for the SAT engine, and every SAT counterexample refines the
signatures — "any SAT solver solution thus potentially rules-out several
non matching couples".
"""

from repro.sweep.signatures import SignatureTable
from repro.sweep.satsweep import SatSweeper, prove_edges_equivalent
from repro.sweep.circuitsweep import CircuitSweeper
from repro.sweep.bddsweep import bdd_sweep
from repro.sweep.engine import sweep_edges, SweepResult
from repro.sweep.fraig import fraig, fraig_in_place, fraig_netlist, FraigResult

__all__ = [
    "SignatureTable",
    "SatSweeper",
    "CircuitSweeper",
    "prove_edges_equivalent",
    "bdd_sweep",
    "sweep_edges",
    "fraig",
    "fraig_in_place",
    "fraig_netlist",
    "FraigResult",
    "SweepResult",
]
