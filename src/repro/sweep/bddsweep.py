"""BDD sweeping (step 2 of the merge phase, after Kuehlmann-Krohm [4]).

BDDs are built bottom-up for every node of the target cones inside a
node-budgeted manager.  Two nodes whose BDDs coincide (directly or as
complements) are *provably* equivalent — canonicity makes the check free —
and merge immediately.  When a node's BDD construction blows the budget,
the node becomes a *cut point*: it gets a fresh BDD variable and
construction continues above it.  Equality of BDDs over cut variables still
implies functional equivalence (the cut variable can be re-substituted by
the common function), so merging stays sound; inequality however proves
nothing, which is why SAT checks follow as step 3.
"""

from __future__ import annotations

from repro.aig.graph import FALSE, TRUE, Aig
from repro.bdd.manager import BDD_FALSE, BDD_TRUE, BddManager
from repro.errors import BddLimitExceeded
from repro.util.stats import StatsBag


def bdd_sweep(
    aig: Aig,
    roots: list[int],
    node_limit: int = 5000,
) -> tuple[list[int], dict[int, int], StatsBag]:
    """Sweep the cones of ``roots`` by bounded BDD construction.

    Returns ``(new_roots, rebuilt, stats)``: ``rebuilt`` maps original
    nodes to representative edges in the same AIG manager.
    """
    stats = StatsBag()
    manager = BddManager(max_nodes=node_limit)
    # BDD variables for primary inputs are allocated on demand; cut points
    # get fresh variables as well.
    bdd_of_input: dict[int, int] = {}
    rebuilt: dict[int, int] = {0: FALSE}
    node_bdd: dict[int, int] = {0: BDD_FALSE}
    # Canonical BDD -> representative AIG edge.  Store both phases so that
    # antivalent nodes merge through a complemented edge.
    representative: dict[int, int] = {BDD_FALSE: FALSE, BDD_TRUE: TRUE}

    def fresh_var_for(node: int) -> int:
        var_bdd = manager.new_var()
        bdd_of_input[node] = var_bdd
        return var_bdd

    for node in aig.cone(roots):
        if aig.is_input(node):
            rebuilt[node] = 2 * node
            bdd = fresh_var_for(node)
            node_bdd[node] = bdd
            representative.setdefault(bdd, 2 * node)
            try:
                representative.setdefault(manager.not_(bdd), 2 * node + 1)
            except BddLimitExceeded:
                stats.incr("complement_skipped")
            continue
        f0, f1 = aig.fanins(node)
        default = aig.and_(
            rebuilt[f0 >> 1] ^ (f0 & 1),
            rebuilt[f1 >> 1] ^ (f1 & 1),
        )
        if default in (FALSE, TRUE):
            rebuilt[node] = default
            node_bdd[node] = BDD_FALSE if default == FALSE else BDD_TRUE
            stats.incr("constant_folds")
            continue
        b0 = node_bdd[f0 >> 1]
        b1 = node_bdd[f1 >> 1]
        try:
            if f0 & 1:
                b0 = manager.not_(b0)
            if f1 & 1:
                b1 = manager.not_(b1)
            bdd = manager.and_(b0, b1)
        except BddLimitExceeded:
            # Too big: this node becomes a cut point with a fresh variable.
            stats.incr("cut_points")
            bdd = fresh_var_for(node)
        node_bdd[node] = bdd
        existing = representative.get(bdd)
        if existing is not None:
            if existing != default:
                stats.incr("bdd_merges")
            rebuilt[node] = existing
            continue
        rebuilt[node] = default
        representative[bdd] = default
        try:
            representative.setdefault(manager.not_(bdd), default ^ 1)
        except BddLimitExceeded:
            stats.incr("complement_skipped")
    stats.set("bdd_nodes", manager.num_nodes)
    new_roots = [rebuilt[e >> 1] ^ (e & 1) for e in roots]
    return new_roots, rebuilt, stats
