"""Façade over the three merge engines.

``sweep_edges`` runs the configured pipeline — structural hashing is
implicit in every rebuild; BDD sweeping and SAT sweeping are optional
stages — and reports combined statistics.  This is the exact three-step
recipe of Section 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aig.graph import Aig
from repro.sweep.bddsweep import bdd_sweep
from repro.sweep.satsweep import SatSweeper
from repro.util.stats import StatsBag


@dataclass
class SweepResult:
    """Outcome of a sweeping pipeline run."""

    edges: list[int]
    stats: StatsBag = field(default_factory=StatsBag)


def sweep_edges(
    aig: Aig,
    edges: list[int],
    use_bdd: bool = True,
    use_sat: bool = True,
    bdd_node_limit: int = 5000,
    sat_conflict_budget: int = 3000,
    sweeper: SatSweeper | None = None,
) -> SweepResult:
    """Run hash / BDD / SAT sweeping over the given edges.

    Structural hashing happens in every rebuild (step 1).  ``use_bdd``
    enables the bounded-BDD stage (step 2) and ``use_sat`` the factorized
    SAT stage (step 3).  A caller-provided ``sweeper`` lets one solver
    instance persist across many sweeps (e.g. across traversal iterations).
    """
    stats = StatsBag()
    current = list(edges)
    # Step 1: structural hashing via plain rebuild into the same manager.
    rebuilt = {}
    hashed = [aig.rebuild(edge, {}, rebuilt) for edge in current]
    current = hashed
    if use_bdd:
        current, _, bdd_stats = bdd_sweep(aig, current, node_limit=bdd_node_limit)
        stats.merge(bdd_stats)
    if use_sat:
        if sweeper is None:
            sweeper = SatSweeper(aig, conflict_budget=sat_conflict_budget)
        current, _ = sweeper.sweep(current)
        stats.merge(sweeper.stats)
    return SweepResult(edges=current, stats=stats)
