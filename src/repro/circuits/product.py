"""Product machines and sequential miters.

The paper's abstract frames the whole method as "adapting equivalence
checking and logic synthesis techniques" to state-set manipulation, and
its Section 2.1 talks about "the product machine of the combined ...
cofactors".  This module builds the actual construction: two sequential
designs driven by the same inputs, composed into one netlist whose
invariant says the designs agree — so *sequential equivalence checking*
reduces to the library's invariant engines.
"""

from __future__ import annotations

from repro.aig.ops import and_all, transfer, xnor
from repro.circuits.netlist import Netlist
from repro.errors import NetlistError


def product_machine(
    left: Netlist,
    right: Netlist,
    name: str | None = None,
) -> tuple[Netlist, dict[str, int], dict[str, int]]:
    """Compose two netlists over shared primary inputs.

    Inputs are matched *by position* (both designs must have the same
    input count); each side keeps its own latches.  Returns
    ``(product, left_outputs, right_outputs)`` where the output maps give
    the transferred output edges of each side inside the product netlist.
    No property is attached — see :func:`sequential_miter`.
    """
    left.validate()
    right.validate()
    if left.num_inputs != right.num_inputs:
        raise NetlistError(
            f"input count mismatch: {left.num_inputs} vs {right.num_inputs}"
        )
    label = name if name is not None else f"{left.name}_x_{right.name}"
    product = Netlist(label)
    shared_inputs = [
        product.add_input(left.aig.input_name(node))
        for node in left.input_nodes
    ]

    def import_side(side: Netlist, prefix: str) -> dict[str, int]:
        leaf_map = {
            node: edge
            for node, edge in zip(side.input_nodes, shared_inputs)
        }
        for latch in side.latches:
            leaf_map[latch.node] = product.add_latch(
                f"{prefix}_{latch.name}", latch.init
            )
        cache: dict[int, int] = {}
        for latch in side.latches:
            product.set_next(
                leaf_map[latch.node],
                transfer(side.aig, latch.next_edge, product.aig, leaf_map, cache),
            )
        return {
            out_name: transfer(side.aig, edge, product.aig, leaf_map, cache)
            for out_name, edge in side.outputs.items()
        }

    left_outputs = import_side(left, "l")
    right_outputs = import_side(right, "r")
    product.validate()
    return product, left_outputs, right_outputs


def sequential_miter(
    left: Netlist,
    right: Netlist,
    outputs: list[str] | None = None,
    name: str | None = None,
) -> Netlist:
    """The product machine with the invariant "selected outputs agree".

    ``outputs`` names the output pairs to compare (default: every output
    name the two designs share).  The returned netlist's property holds in
    all reachable states iff the two designs are sequentially equivalent
    on those outputs from their initial states — hand it to any engine in
    :mod:`repro.mc`.
    """
    product, left_outputs, right_outputs = product_machine(left, right, name)
    if outputs is None:
        outputs = sorted(set(left_outputs) & set(right_outputs))
    if not outputs:
        raise NetlistError("no common outputs to compare")
    comparisons = []
    for out_name in outputs:
        if out_name not in left_outputs or out_name not in right_outputs:
            raise NetlistError(f"output {out_name!r} missing on one side")
        agree = xnor(
            product.aig, left_outputs[out_name], right_outputs[out_name]
        )
        product.set_output(f"eq_{out_name}", agree)
        comparisons.append(agree)
    product.set_property(and_all(product.aig, comparisons))
    product.validate()
    return product
