"""BLIF (Berkeley Logic Interchange Format) subset: reader and writer.

Supported constructs — the subset that covers the classic sequential
benchmark suites::

    .model <name>
    .inputs a b c
    .outputs f g
    .latch <input> <output> [<type> <control>] [<init-val>]
    .names a b f       # single-output PLA cover
    11 1
    0- 1
    .end

``.names`` covers are sums of cube products (``-`` is don't-care).  An
output column of ``0`` describes the *offset*; the function is then the
complement of the cover.  A ``.names`` block with no cube lines is the
constant 0 (and with a single empty-input ``1`` line, constant 1), per the
BLIF definition.  Latch init values 0/1 are honoured; 2/3 (don't
care/unknown) default to 0.
"""

from __future__ import annotations

from repro.aig.graph import FALSE, TRUE, edge_not
from repro.aig.ops import and_all, or_all
from repro.circuits.netlist import Netlist
from repro.errors import NetlistError


def parse_blif(text: str) -> Netlist:
    """Parse a BLIF model into a validated :class:`Netlist`."""
    # Join continuation lines, strip comments.
    logical_lines: list[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        line = pending + line
        pending = ""
        if line.strip():
            logical_lines.append(line.strip())

    name = "blif"
    inputs: list[str] = []
    outputs: list[str] = []
    latches: list[tuple[str, str, bool]] = []  # (input, output, init)
    covers: dict[str, tuple[list[str], list[tuple[str, str]]]] = {}

    index = 0
    current_names: str | None = None
    for line in logical_lines:
        index += 1
        if line.startswith(".model"):
            parts = line.split()
            name = parts[1] if len(parts) > 1 else "blif"
            current_names = None
        elif line.startswith(".inputs"):
            inputs.extend(line.split()[1:])
            current_names = None
        elif line.startswith(".outputs"):
            outputs.extend(line.split()[1:])
            current_names = None
        elif line.startswith(".latch"):
            parts = line.split()[1:]
            if len(parts) < 2:
                raise NetlistError(f"malformed .latch line: {line!r}")
            init = False
            if len(parts) in (3, 5):  # trailing init value present
                init = parts[-1] == "1"
            latches.append((parts[0], parts[1], init))
            current_names = None
        elif line.startswith(".names"):
            signals = line.split()[1:]
            if not signals:
                raise NetlistError(".names needs at least an output")
            target = signals[-1]
            if target in covers:
                raise NetlistError(f"{target!r} has two .names blocks")
            covers[target] = (signals[:-1], [])
            current_names = target
        elif line.startswith(".end"):
            current_names = None
        elif line.startswith("."):
            raise NetlistError(f"unsupported BLIF construct: {line!r}")
        else:
            if current_names is None:
                raise NetlistError(f"cube line outside .names: {line!r}")
            parts = line.split()
            cover_inputs, cubes = covers[current_names]
            if len(cover_inputs) == 0:
                if len(parts) != 1:
                    raise NetlistError(f"malformed constant cube: {line!r}")
                cubes.append(("", parts[0]))
            else:
                if len(parts) != 2:
                    raise NetlistError(f"malformed cube line: {line!r}")
                cubes.append((parts[0], parts[1]))

    netlist = Netlist(name)
    signals: dict[str, int] = {}
    for signal in inputs:
        signals[signal] = netlist.add_input(signal)
    latch_edges: dict[str, int] = {}
    for _, latch_out, init in latches:
        edge = netlist.add_latch(latch_out, init=init)
        signals[latch_out] = edge
        latch_edges[latch_out] = edge

    elaborating: set[str] = set()

    def elaborate(signal: str) -> int:
        if signal in signals:
            return signals[signal]
        if signal not in covers:
            raise NetlistError(f"undefined signal {signal!r}")
        if signal in elaborating:
            raise NetlistError(f"combinational cycle through {signal!r}")
        elaborating.add(signal)
        cover_inputs, cubes = covers[signal]
        operand_edges = [elaborate(s) for s in cover_inputs]
        signals[signal] = _build_cover(
            netlist, operand_edges, cubes, signal
        )
        elaborating.discard(signal)
        return signals[signal]

    for latch_in, latch_out, _ in latches:
        netlist.set_next(latch_edges[latch_out], elaborate(latch_in))
    for signal in outputs:
        netlist.set_output(signal, elaborate(signal))
    netlist.validate()
    return netlist


def _build_cover(
    netlist: Netlist,
    operand_edges: list[int],
    cubes: list[tuple[str, str]],
    signal: str,
) -> int:
    aig = netlist.aig
    if not cubes:
        return FALSE
    out_values = {value for _, value in cubes}
    if len(out_values) != 1:
        raise NetlistError(
            f".names {signal!r} mixes onset and offset cubes"
        )
    out_value = out_values.pop()
    if out_value not in ("0", "1"):
        raise NetlistError(f"bad cover output {out_value!r} for {signal!r}")
    products = []
    for pattern, _ in cubes:
        if len(pattern) != len(operand_edges):
            raise NetlistError(
                f"cube width mismatch in .names {signal!r}"
            )
        literals = []
        for char, edge in zip(pattern, operand_edges):
            if char == "1":
                literals.append(edge)
            elif char == "0":
                literals.append(edge_not(edge))
            elif char != "-":
                raise NetlistError(f"bad cube character {char!r}")
        products.append(and_all(aig, literals) if literals else TRUE)
    cover = or_all(aig, products)
    return cover if out_value == "1" else edge_not(cover)


def serialize_blif(netlist: Netlist) -> str:
    """Write a netlist as BLIF (two-input AND covers, one per AIG node)."""
    aig = netlist.aig
    lines = [f".model {netlist.name or 'repro'}"]
    names: dict[int, str] = {}
    input_names = []
    for node in netlist.input_nodes:
        names[node] = aig.input_name(node)
        input_names.append(names[node])
    if input_names:
        lines.append(".inputs " + " ".join(input_names))
    if netlist.outputs:
        lines.append(".outputs " + " ".join(netlist.outputs))
    for latch in netlist.latches:
        names[latch.node] = latch.name

    roots = [latch.next_edge for latch in netlist.latches]
    roots.extend(netlist.outputs.values())

    counter = 0
    body: list[str] = []
    invert_cache: dict[int, str] = {}
    constant_cache: dict[int, str] = {}

    def fresh() -> str:
        nonlocal counter
        counter += 1
        return f"w{counter}"

    def define_edge(edge: int) -> str:
        """A signal carrying the edge's value (inverter covers cached)."""
        node = edge >> 1
        if node == 0:
            cached = constant_cache.get(edge)
            if cached is None:
                cached = fresh()
                constant_cache[edge] = cached
                body.append(f".names {cached}")
                if edge & 1:
                    body.append("1")
            return cached
        if not (edge & 1):
            return names[node]
        cached = invert_cache.get(node)
        if cached is None:
            cached = fresh()
            invert_cache[node] = cached
            body.append(f".names {names[node]} {cached}")
            body.append("0 1")
        return cached

    for node in aig.cone(roots):
        if not aig.is_and(node):
            continue
        f0, f1 = aig.fanins(node)
        name = fresh()
        names[node] = name
        s0, s1 = define_edge(f0), define_edge(f1)
        body.append(f".names {s0} {s1} {name}")
        body.append("11 1")
    for latch in netlist.latches:
        next_signal = define_edge(latch.next_edge)
        body.append(f".latch {next_signal} {latch.name} {int(latch.init)}")
    for out_name, edge in netlist.outputs.items():
        signal = define_edge(edge)
        if signal != out_name:
            body.append(f".names {signal} {out_name}")
            body.append("1 1")
    return "\n".join(lines + body + [".end"]) + "\n"
