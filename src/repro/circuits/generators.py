"""Parametric sequential benchmark families.

Every generator returns a validated :class:`~repro.circuits.netlist.Netlist`
with a property whose status is known by construction:

================  =========================  ===========================
family            safe variant               buggy variant
================  =========================  ===========================
mod_counter       value < modulus            value != modulus-1
                                             (fails at depth modulus-1)
ring_counter      one-hot invariant          bit k reached (depth k)
shift_register    parity of taps invariant   --
gray_counter      one-bit-change invariant   --
arbiter           mutual exclusion           grant dropped (unfair ack)
fifo_level        never overflows            overflow without guard
traffic_light     never both green           --
lfsr              never all-zero             --
bug_at_depth      --                         fails exactly at depth d
johnson_counter   at most one 01 boundary    adjacent bits never differ
up_down_counter   saturation prevents wrap   wraps without the guard
one_hot_fsm       exactly one state bit      glitch sets a second bit
multiplier_miter  array == Wallace product   one partial product dropped
================  =========================  ===========================

These are the stand-ins for the paper's unnamed "hard-to-verify circuits":
widths scale the difficulty, and safe/buggy pairs exercise both fix-point
termination and counterexample extraction.
"""

from __future__ import annotations

from repro.aig.graph import TRUE, edge_not
from repro.aig.ops import and_all, ite, or_, or_all, xnor, xor
from repro.circuits.netlist import Netlist
from repro.errors import NetlistError


def _equals_constant(netlist: Netlist, bits: list[int], value: int) -> int:
    """Edge that is 1 iff the bit vector equals the constant."""
    aig = netlist.aig
    literals = [
        bit if (value >> k) & 1 else edge_not(bit)
        for k, bit in enumerate(bits)
    ]
    return and_all(aig, literals)


def _less_than_constant(netlist: Netlist, bits: list[int], bound: int) -> int:
    """Edge that is 1 iff the (unsigned) bit vector is < bound."""
    aig = netlist.aig
    width = len(bits)
    if bound >= (1 << width):
        return TRUE
    # LSB-up recurrence: after step k, ``result`` compares bits[k..0] with
    # bound[k..0]: "strictly less at position k" or "equal at k and less
    # in the lower slice".
    result = 0  # FALSE: empty slices are equal, hence not less
    for k in range(width):
        bit = bits[k]
        if (bound >> k) & 1:
            result = or_(aig, edge_not(bit), result)
        else:
            result = aig.and_(edge_not(bit), result)
    return result


def _incrementer(netlist: Netlist, bits: list[int], enable: int) -> list[int]:
    """Next-state edges of a binary +1 (with enable)."""
    aig = netlist.aig
    nexts = []
    carry = enable
    for bit in bits:
        nexts.append(xor(aig, bit, carry))
        carry = aig.and_(bit, carry)
    return nexts


def mod_counter(width: int, modulus: int | None = None, safe: bool = True,
                with_enable: bool = False) -> Netlist:
    """Binary counter counting 0..modulus-1 and wrapping.

    Safe property: value stays below ``modulus`` (the dead states above are
    unreachable).  Buggy property: value never equals ``modulus - 1`` —
    violated at depth modulus-1 (or later with enable).
    """
    if modulus is None:
        modulus = (1 << width) - 1
    if not 2 <= modulus <= (1 << width):
        raise NetlistError("modulus must fit the counter width")
    n = Netlist(f"mod_counter_{width}_{modulus}")
    bits = n.add_latches(width, prefix="c")
    enable = n.add_input("en") if with_enable else TRUE
    aig = n.aig
    wrap = _equals_constant(n, bits, modulus - 1)
    incremented = _incrementer(n, bits, enable)
    for bit, nxt in zip(bits, incremented):
        held = ite(aig, aig.and_(wrap, enable), 0, nxt)  # wrap to zero
        n.set_next(bit, held)
    if safe:
        n.set_property(_less_than_constant(n, bits, modulus))
    else:
        n.set_property(edge_not(_equals_constant(n, bits, modulus - 1)))
    n.validate()
    return n


def ring_counter(width: int, safe: bool = True, target_bit: int | None = None) -> Netlist:
    """One-hot rotating token.

    Safe property: the token count is exactly one (one-hot invariant).
    Buggy property: "bit ``target_bit`` is never 1" — the token arrives
    there at depth ``target_bit``.
    """
    if width < 2:
        raise NetlistError("ring counter needs width >= 2")
    n = Netlist(f"ring_counter_{width}")
    bits = n.add_latches(width, prefix="r", init=1)  # token at bit 0
    for k, bit in enumerate(bits):
        n.set_next(bit, bits[(k - 1) % width])
    aig = n.aig
    if safe:
        # Exactly one bit set: OR of bits AND no two adjacent-or-not bits.
        any_set = or_all(aig, bits)
        pairwise = [
            edge_not(aig.and_(bits[i], bits[j]))
            for i in range(width)
            for j in range(i + 1, width)
        ]
        n.set_property(aig.and_(any_set, and_all(aig, pairwise)))
    else:
        if target_bit is None:
            target_bit = width - 1
        n.set_property(edge_not(bits[target_bit]))
    n.validate()
    return n


def shift_register(width: int) -> Netlist:
    """Serial-in shift register; safe parity-style property.

    Property: the XNOR of shifted copies of the same input history holds —
    concretely, bit k+1 next-cycle equals bit k this cycle, expressed over
    a shadow register (always true, needs induction depth 1).
    """
    if width < 2:
        raise NetlistError("shift register needs width >= 2")
    n = Netlist(f"shift_register_{width}")
    serial = n.add_input("serial")
    bits = n.add_latches(width, prefix="s")
    shadow = n.add_latch("shadow", init=False)
    n.set_next(bits[0], serial)
    for k in range(1, width):
        n.set_next(bits[k], bits[k - 1])
    # Shadow tracks bits[0] delayed by one, so shadow == bits[1].
    n.set_next(shadow, bits[0])
    n.set_property(xnor(n.aig, shadow, bits[1]))
    n.validate()
    return n


def gray_counter(width: int) -> Netlist:
    """Gray-code counter with the one-bit-change invariant.

    The circuit keeps the previous value in shadow latches; the property
    says current and previous differ in at most one bit position.
    """
    if width < 2:
        raise NetlistError("gray counter needs width >= 2")
    n = Netlist(f"gray_counter_{width}")
    aig = n.aig
    binary = n.add_latches(width, prefix="b")
    gray_now = [
        xor(aig, binary[k], binary[k + 1]) if k + 1 < width else binary[k]
        for k in range(width)
    ]
    prev = n.add_latches(width, prefix="p")
    incremented = _incrementer(n, binary, TRUE)
    for bit, nxt in zip(binary, incremented):
        n.set_next(bit, nxt)
    for latch, value in zip(prev, gray_now):
        n.set_next(latch, value)
    diffs = [xor(aig, g, p) for g, p in zip(gray_now, prev)]
    # At most one difference: no pair of differences simultaneously 1.
    at_most_one = and_all(
        aig,
        [
            edge_not(aig.and_(diffs[i], diffs[j]))
            for i in range(width)
            for j in range(i + 1, width)
        ],
    )
    n.set_property(at_most_one)
    n.validate()
    return n


def arbiter(num_clients: int, safe: bool = True) -> Netlist:
    """Round-robin arbiter: token rotates, grant = request AND token.

    Safe property: grants are mutually exclusive.  Buggy variant drives
    grants directly from requests (no token) so two requests collide.
    """
    if num_clients < 2:
        raise NetlistError("arbiter needs at least 2 clients")
    n = Netlist(f"arbiter_{num_clients}")
    aig = n.aig
    requests = n.add_inputs(num_clients, prefix="req")
    token = n.add_latches(num_clients, prefix="tok", init=1)
    for k, bit in enumerate(token):
        n.set_next(bit, token[(k - 1) % num_clients])
    if safe:
        grants = [aig.and_(req, tok) for req, tok in zip(requests, token)]
    else:
        grants = list(requests)  # bug: requests granted unconditionally
    for k, grant in enumerate(grants):
        n.set_output(f"gnt{k}", grant)
    exclusive = and_all(
        aig,
        [
            edge_not(aig.and_(grants[i], grants[j]))
            for i in range(num_clients)
            for j in range(i + 1, num_clients)
        ],
    )
    n.set_property(exclusive)
    n.validate()
    return n


def fifo_level(depth_bits: int, safe: bool = True) -> Netlist:
    """FIFO fill-level tracker with push/pop inputs.

    Level is a ``depth_bits``-wide counter; usable capacity is
    ``2**depth_bits - 1`` and the all-ones value is the illegal overflow
    state.  The safe variant refuses pushes at capacity (and pops when
    empty), so the overflow state is unreachable; the buggy variant pushes
    unconditionally and reaches it after ``capacity + 1`` pushes.
    Property (both variants): ``level != all-ones``.
    """
    n = Netlist(f"fifo_level_{depth_bits}")
    aig = n.aig
    push = n.add_input("push")
    pop = n.add_input("pop")
    level = n.add_latches(depth_bits, prefix="lv")
    overflow_value = (1 << depth_bits) - 1
    at_capacity = _equals_constant(n, level, overflow_value - 1)
    empty = _equals_constant(n, level, 0)
    do_push = aig.and_(push, edge_not(pop))
    do_pop = aig.and_(pop, edge_not(push))
    if safe:
        do_push = aig.and_(do_push, edge_not(at_capacity))
        do_pop = aig.and_(do_pop, edge_not(empty))
    plus_one = _incrementer(n, level, TRUE)
    minus_one = _decrementer(n, level)
    for k, bit in enumerate(level):
        nxt = ite(aig, do_push, plus_one[k], ite(aig, do_pop, minus_one[k], bit))
        n.set_next(bit, nxt)
    n.set_property(edge_not(_equals_constant(n, level, overflow_value)))
    n.validate()
    return n


def _decrementer(netlist: Netlist, bits: list[int]) -> list[int]:
    aig = netlist.aig
    nexts = []
    borrow = TRUE
    for bit in bits:
        nexts.append(xor(aig, bit, borrow))
        borrow = aig.and_(edge_not(bit), borrow)
    return nexts


def traffic_light() -> Netlist:
    """Two one-hot FSMs for crossing roads; property: never both green.

    Each light cycles green -> yellow -> red; the north-south light holds
    green while east-west is not red, driven by a shared phase token.
    """
    n = Netlist("traffic_light")
    aig = n.aig
    # Phase counter 0..5; NS green in phases 0-1, EW green in phases 3-4.
    phase = n.add_latches(3, prefix="ph")
    wrap = _equals_constant(n, phase, 5)
    incremented = _incrementer(n, phase, TRUE)
    for bit, nxt in zip(phase, incremented):
        n.set_next(bit, ite(aig, wrap, 0, nxt))
    ns_green = or_(
        aig,
        _equals_constant(n, phase, 0),
        _equals_constant(n, phase, 1),
    )
    ew_green = or_(
        aig,
        _equals_constant(n, phase, 3),
        _equals_constant(n, phase, 4),
    )
    n.set_output("ns_green", ns_green)
    n.set_output("ew_green", ew_green)
    n.set_property(edge_not(aig.and_(ns_green, ew_green)))
    n.validate()
    return n


def lfsr(width: int, taps: tuple[int, ...] | None = None) -> Netlist:
    """Fibonacci LFSR seeded non-zero; property: never reaches all-zero."""
    if width < 2:
        raise NetlistError("lfsr needs width >= 2")
    if taps is None:
        taps = (width - 1, 0)
    n = Netlist(f"lfsr_{width}")
    aig = n.aig
    bits = n.add_latches(width, prefix="x", init=1)
    feedback = 0
    for tap in taps:
        if not 0 <= tap < width:
            raise NetlistError(f"tap {tap} out of range")
        feedback = xor(aig, feedback, bits[tap])
    n.set_next(bits[0], feedback)
    for k in range(1, width):
        n.set_next(bits[k], bits[k - 1])
    n.set_property(or_all(aig, bits))
    n.validate()
    return n


def bug_at_depth(depth: int, width: int | None = None) -> Netlist:
    """A circuit whose property fails at exactly ``depth`` steps.

    A counter reaches ``depth`` and trips the property; used to validate
    counterexample lengths of BMC and backward reachability.
    """
    if depth < 1:
        raise NetlistError("depth must be >= 1")
    if width is None:
        width = max(2, depth.bit_length() + 1)
    if depth >= (1 << width):
        raise NetlistError("depth does not fit the counter width")
    n = Netlist(f"bug_at_depth_{depth}")
    bits = n.add_latches(width, prefix="d")
    saturate = _equals_constant(n, bits, depth)
    incremented = _incrementer(n, bits, edge_not(saturate))
    for bit, nxt in zip(bits, incremented):
        n.set_next(bit, nxt)
    n.set_property(edge_not(saturate))
    n.validate()
    return n


def johnson_counter(width: int, safe: bool = True) -> Netlist:
    """Johnson (twisted-ring) counter: shift with inverted feedback.

    The reachable codes are exactly the 2*width "runs" patterns, so the
    invariant "the bit vector is a valid Johnson code" holds.  A valid
    code has at most one 0->1 and at most one 1->0 boundary when read
    cyclically; the safe property encodes that.  The buggy variant feeds
    back without the inversion (a plain ring over an all-zero start), so
    the all-ones code — not a Johnson code boundary-wise reachable from
    the seed — never appears and the buggy property "bit pattern never
    alternates" fails once the twist is excited.
    """
    if width < 2:
        raise NetlistError("johnson counter needs width >= 2")
    n = Netlist(f"johnson_{width}" if safe else f"johnson_{width}_buggy")
    aig = n.aig
    bits = n.add_latches(width, prefix="j")
    for k in range(width - 1):
        n.set_next(bits[k + 1], bits[k])
    n.set_next(bits[0], edge_not(bits[-1]))
    # Boundary count: a Johnson code has at most one 01 boundary among
    # adjacent pairs (cyclically, ignoring the twist position).
    boundaries = [
        aig.and_(edge_not(bits[k]), bits[k + 1]) for k in range(width - 1)
    ]
    at_most_one = and_all(
        aig,
        [
            edge_not(aig.and_(boundaries[i], boundaries[j]))
            for i in range(len(boundaries))
            for j in range(i + 1, len(boundaries))
        ],
    )
    if safe:
        n.set_property(at_most_one)
    else:
        # "Bit 0 and bit 1 never differ" — falsified after `width` steps
        # when the inverted feedback wraps around.
        n.set_property(xnor(aig, bits[0], bits[1]))
    n.validate()
    return n


def up_down_counter(width: int, safe: bool = True) -> Netlist:
    """A saturating up/down counter with direction and enable inputs.

    Counts up when ``up`` is held, down otherwise; saturates at both ends
    instead of wrapping.  Safe property: the counter never wraps, i.e.
    the value never jumps between all-ones and all-zeros in one step
    (expressed via a shadow copy of the previous MSB).  The buggy variant
    drops the saturation guard, so incrementing past the top wraps.
    """
    if width < 2:
        raise NetlistError("up/down counter needs width >= 2")
    n = Netlist(
        f"updown_{width}" if safe else f"updown_{width}_buggy"
    )
    aig = n.aig
    up = n.add_input("up")
    enable = n.add_input("enable")
    bits = n.add_latches(width, prefix="c")
    at_top = and_all(aig, bits)
    at_bottom = and_all(aig, [edge_not(b) for b in bits])
    if safe:
        step_up = aig.and_(up, edge_not(at_top))
        step_down = aig.and_(edge_not(up), edge_not(at_bottom))
    else:
        step_up = up  # bug: increments past the top wrap to zero
        step_down = edge_not(up)
    do_step = aig.and_(enable, or_(aig, step_up, step_down))
    # Ripple increment/decrement selected by direction.
    carry = do_step
    next_bits = []
    for bit in bits:
        toggled = xor(aig, bit, carry)
        # Carry propagates on 1s when counting up, on 0s when down.
        carry = aig.and_(carry, ite(aig, up, bit, edge_not(bit)))
        next_bits.append(toggled)
    for bit, nxt in zip(bits, next_bits):
        n.set_next(bit, nxt)
    # Shadow latch remembering "was at top while stepping up".
    wrapped = n.add_latch("wrapped", init=False)
    wrap_now = or_(
        aig,
        aig.and_(aig.and_(enable, up), at_top),
        aig.and_(aig.and_(enable, edge_not(up)), at_bottom),
    )
    if safe:
        n.set_next(wrapped, wrapped)  # stays 0: saturation prevents wrap
    else:
        n.set_next(wrapped, or_(aig, wrapped, wrap_now))
    n.set_property(edge_not(wrapped))
    n.set_output("at_top", at_top)
    n.validate()
    return n


def one_hot_fsm(num_states: int, safe: bool = True) -> Netlist:
    """A one-hot encoded FSM cycling through its states on ``advance``.

    Safe property: exactly-one-hot is invariant.  The buggy variant
    skips clearing the previous state bit on a hidden input pattern, so
    two bits end up set.
    """
    if num_states < 2:
        raise NetlistError("FSM needs at least 2 states")
    n = Netlist(
        f"onehot_{num_states}" if safe else f"onehot_{num_states}_buggy"
    )
    aig = n.aig
    advance = n.add_input("advance")
    glitch = n.add_input("glitch")
    bits = n.add_latches(num_states, prefix="s", init=1)
    for k, bit in enumerate(bits):
        previous = bits[(k - 1) % num_states]
        stay = aig.and_(bit, edge_not(advance))
        take = aig.and_(previous, advance)
        nxt = or_(aig, stay, take)
        if not safe and k == 1:
            # Bug: a glitch latches state 1 without clearing state 0.
            nxt = or_(aig, nxt, aig.and_(glitch, bits[0]))
        n.set_next(bit, nxt)
    some = or_all(aig, bits)
    no_pair = and_all(
        aig,
        [
            edge_not(aig.and_(bits[i], bits[j]))
            for i in range(num_states)
            for j in range(i + 1, num_states)
        ],
    )
    n.set_property(aig.and_(some, no_pair))
    n.validate()
    return n


def _full_adder(aig, a: int, b: int, c: int) -> tuple[int, int]:
    """(sum, carry) of three bits: XOR chain and majority."""
    s = xor(aig, xor(aig, a, b), c)
    carry = or_(
        aig,
        aig.and_(a, b),
        or_(aig, aig.and_(a, c), aig.and_(b, c)),
    )
    return s, carry


def _ripple_add(aig, xs: list[int], ys: list[int]) -> list[int]:
    """Same-width ripple-carry sum (the final carry is dropped)."""
    carry = 0  # FALSE
    out = []
    for a, b in zip(xs, ys):
        s, carry = _full_adder(aig, a, b, carry)
        out.append(s)
    return out


def _partial_products(aig, xs: list[int], ys: list[int]) -> list[list[int]]:
    """``pp[i][j] = xs[i] AND ys[j]``."""
    return [[aig.and_(a, b) for b in ys] for a in xs]


def _array_multiplier(aig, xs: list[int], ys: list[int]) -> list[int]:
    """Row-by-row array multiplier: accumulate shifted rows by ripple add."""
    width = len(xs)
    total = 2 * width
    pp = _partial_products(aig, xs, ys)
    acc = [0] * total  # FALSE
    for i in range(width):
        row = [0] * total
        for j in range(width):
            row[i + j] = pp[i][j]
        acc = _ripple_add(aig, acc, row)
    return acc


def _wallace_multiplier(
    aig, xs: list[int], ys: list[int], drop: tuple[int, int] | None = None
) -> list[int]:
    """Column-wise Wallace-style reduction: 3:2 and 2:2 compressors
    until every column holds at most two bits, then one ripple add.

    ``drop`` names a partial product (i, j) to omit — the planted bug of
    the miter families (the products then differ exactly when
    ``xs[i] AND ys[j]``).
    """
    width = len(xs)
    total = 2 * width
    columns: list[list[int]] = [[] for _ in range(total)]
    for i in range(width):
        for j in range(width):
            if drop is not None and (i, j) == drop:
                continue
            columns[i + j].append(aig.and_(xs[i], ys[j]))
    while any(len(column) > 2 for column in columns):
        reduced: list[list[int]] = [[] for _ in range(total + 1)]
        for c, column in enumerate(columns):
            index = 0
            while len(column) - index >= 3:
                s, carry = _full_adder(
                    aig, column[index], column[index + 1], column[index + 2]
                )
                reduced[c].append(s)
                reduced[c + 1].append(carry)
                index += 3
            if len(column) - index == 2:
                s = xor(aig, column[index], column[index + 1])
                carry = aig.and_(column[index], column[index + 1])
                reduced[c].append(s)
                reduced[c + 1].append(carry)
            else:
                reduced[c].extend(column[index:])
        columns = [reduced[c] for c in range(total)]
    row_a = [column[0] if column else 0 for column in columns]
    row_b = [column[1] if len(column) > 1 else 0 for column in columns]
    return _ripple_add(aig, row_a, row_b)


def multiplier_miter(width: int, safe: bool = True) -> Netlist:
    """Equivalence miter of an array and a Wallace-style multiplier.

    Purely combinational, ``2 * width`` shared input bits, property
    "every product bit pair agrees".  The two reduction orders share no
    internal structure beyond the partial products, so the miter is the
    classic hard-for-one-core SAT family the cube-and-conquer engine is
    benchmarked on.  The buggy variant drops the top partial product of
    the Wallace side: the property fails exactly when the two operand
    MSBs are both 1 (a quarter of the input space).
    """
    if width < 2:
        raise NetlistError("multiplier miter needs width >= 2")
    name = f"mul_miter_{width}" + ("" if safe else "_buggy")
    n = Netlist(name)
    aig = n.aig
    xs = n.add_inputs(width, prefix="a")
    ys = n.add_inputs(width, prefix="b")
    product_a = _array_multiplier(aig, xs, ys)
    drop = None if safe else (width - 1, width - 1)
    product_b = _wallace_multiplier(aig, xs, ys, drop=drop)
    for k, bit in enumerate(product_a):
        n.set_output(f"p{k}", bit)
    n.set_property(
        and_all(
            aig,
            [xnor(aig, a, b) for a, b in zip(product_a, product_b)],
        )
    )
    n.validate()
    return n


FAMILIES = {
    "mod_counter": mod_counter,
    "ring_counter": ring_counter,
    "shift_register": shift_register,
    "gray_counter": gray_counter,
    "arbiter": arbiter,
    "fifo_level": fifo_level,
    "traffic_light": traffic_light,
    "lfsr": lfsr,
    "bug_at_depth": bug_at_depth,
    "johnson_counter": johnson_counter,
    "up_down_counter": up_down_counter,
    "one_hot_fsm": one_hot_fsm,
    "multiplier_miter": multiplier_miter,
}
