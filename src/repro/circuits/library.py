"""A small library of classic benchmark circuits.

The paper reports results on unnamed "hard-to-verify circuits"; the
closest public stand-ins are the ISCAS-85/89 suites, whose smallest
members are embedded here verbatim in ``.bench`` text (they are tiny and
serve as fixed, well-understood test vehicles next to the parametric
generators).  Each loader returns a fresh :class:`Netlist`.

* :func:`c17` — ISCAS-85 c17: 5 inputs, 6 NAND gates, combinational.
* :func:`s27` — ISCAS-89 s27: 4 inputs, 3 DFFs, the smallest sequential
  benchmark.
* :func:`s27_with_property` — s27 plus an invariant over its state bits
  (an actual model-checking instance: the property is an assertion about
  the reachable state space, checked safe by the engines in the tests).
* :func:`handshake` — a two-phase req/ack handshake controller with a
  mutual-exclusion invariant (safe) and a broken variant.
* :func:`mul_miter2` — the 2-bit array-vs-Wallace multiplier miter from
  :func:`repro.circuits.generators.multiplier_miter`, catalogued here
  (with its buggy variant) as the fixed combinational equivalence
  instance next to the sequential classics.
"""

from __future__ import annotations

from repro.aig.graph import edge_not
from repro.aig.ops import or_
from repro.circuits.bench_format import parse_bench
from repro.circuits.generators import multiplier_miter
from repro.circuits.netlist import Netlist

_C17 = """
# ISCAS-85 c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""

_S27 = """
# ISCAS-89 s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""


def c17() -> Netlist:
    """The ISCAS-85 c17 combinational benchmark."""
    return parse_bench(_C17, name="c17")


def s27() -> Netlist:
    """The ISCAS-89 s27 sequential benchmark (no property attached)."""
    return parse_bench(_S27, name="s27")


def s27_with_property() -> Netlist:
    """s27 with the invariant "latches G5 and G6 are never both 1".

    From the initial all-zero state, G5' = NOR(NOT G0, G11) and
    G6' = NOR(G5, G9) can each rise, but the NOR feedback structure never
    raises both in the same cycle — a small, true invariant that gives the
    traversal engines a real fix-point to find.
    """
    netlist = s27()
    by_name = {latch.name: latch for latch in netlist.latches}
    g5 = 2 * by_name["G5"].node
    g6 = 2 * by_name["G6"].node
    netlist.set_property(edge_not(netlist.aig.and_(g5, g6)))
    netlist.validate()
    return netlist


def handshake(safe: bool = True) -> Netlist:
    """A two-phase request/acknowledge handshake controller.

    Two latches track a requester and a responder grant.  The protocol
    only grants the responder after the requester released (two-phase),
    so the invariant "never both grants" holds.  With ``safe=False`` the
    responder ignores the release, making the invariant fail after one
    granted request.
    """
    netlist = Netlist("handshake" if safe else "handshake_buggy")
    req = netlist.add_input("req")
    grant_a = netlist.add_latch("grant_a", init=False)
    grant_b = netlist.add_latch("grant_b", init=False)
    aig = netlist.aig
    # grant_a rises on req when nothing is granted, falls when req drops.
    idle = aig.and_(edge_not(grant_a), edge_not(grant_b))
    netlist.set_next(grant_a, aig.and_(req, or_(aig, grant_a, idle)))
    if safe:
        # grant_b only after grant_a released and a request is pending.
        take_b = aig.and_(req, aig.and_(edge_not(grant_a), grant_b))
        rise_b = aig.and_(
            req, aig.and_(edge_not(grant_a), edge_not(grant_b))
        )
        # Rise only when grant_a is low *and stays low* (req held gives
        # grant_a priority) — gate the rise on NOT next(grant_a).
        next_a = aig.and_(req, or_(aig, grant_a, idle))
        rise_b = aig.and_(rise_b, edge_not(next_a))
        netlist.set_next(grant_b, or_(aig, take_b, rise_b))
    else:
        # Bug: grant_b rises whenever a request is pending, ignoring a.
        netlist.set_next(grant_b, req)
    netlist.set_property(edge_not(aig.and_(grant_a, grant_b)))
    netlist.set_output("busy", or_(aig, grant_a, grant_b))
    netlist.validate()
    return netlist


def mul_miter2(safe: bool = True) -> Netlist:
    """The 2-bit multiplier equivalence miter (array vs Wallace).

    A combinational instance: the property asserts both multiplier
    implementations agree on every product bit.  ``safe=False`` drops
    one Wallace partial product, so the miter fails on a quarter of the
    input space — a fixed, fully enumerable equivalence-checking test
    vehicle for the SAT engines and ``cnc``.
    """
    return multiplier_miter(2, safe=safe)


def catalogue() -> dict[str, Netlist]:
    """All library circuits by name (fresh instances)."""
    return {
        "c17": c17(),
        "s27": s27(),
        "s27_with_property": s27_with_property(),
        "handshake": handshake(True),
        "handshake_buggy": handshake(False),
        "mul_miter2": mul_miter2(True),
        "mul_miter2_buggy": mul_miter2(False),
    }
