"""A small text format for sequential netlists (AIGER-inspired).

Format (line oriented, ``#`` comments)::

    netlist <name>
    input <name>
    latch <name> <init 0|1>
    # gates reference signals by name; operands may be prefixed with !
    and <name> <op1> <op2>
    next <latch-name> <signal>
    output <name> <signal>
    property <signal>
    constraint <signal>

``and`` lines must be topologically ordered.  The constants ``0`` and ``1``
are predefined signal names.
"""

from __future__ import annotations

from repro.aig.graph import FALSE, TRUE, edge_not
from repro.circuits.netlist import Netlist
from repro.errors import NetlistError


def parse_netlist(text: str) -> Netlist:
    """Parse the textual netlist format into a validated Netlist."""
    netlist: Netlist | None = None
    signals: dict[str, int] = {"0": FALSE, "1": TRUE}
    latch_edges: dict[str, int] = {}

    def resolve(token: str) -> int:
        invert = token.startswith("!")
        name = token[1:] if invert else token
        if name not in signals:
            raise NetlistError(f"unknown signal {name!r}")
        edge = signals[name]
        return edge_not(edge) if invert else edge

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        keyword = parts[0]
        try:
            if keyword == "netlist":
                netlist = Netlist(parts[1] if len(parts) > 1 else "")
            elif netlist is None:
                raise NetlistError("file must start with a netlist line")
            elif keyword == "input":
                signals[parts[1]] = netlist.add_input(parts[1])
            elif keyword == "latch":
                init = bool(int(parts[2])) if len(parts) > 2 else False
                edge = netlist.add_latch(parts[1], init=init)
                signals[parts[1]] = edge
                latch_edges[parts[1]] = edge
            elif keyword == "and":
                signals[parts[1]] = netlist.aig.and_(
                    resolve(parts[2]), resolve(parts[3])
                )
            elif keyword == "next":
                if parts[1] not in latch_edges:
                    raise NetlistError(f"{parts[1]!r} is not a latch")
                netlist.set_next(latch_edges[parts[1]], resolve(parts[2]))
            elif keyword == "output":
                netlist.set_output(parts[1], resolve(parts[2]))
            elif keyword == "property":
                netlist.set_property(resolve(parts[1]))
            elif keyword == "constraint":
                netlist.add_constraint(resolve(parts[1]))
            else:
                raise NetlistError(f"unknown keyword {keyword!r}")
        except IndexError as exc:
            raise NetlistError(f"line {line_no}: missing fields") from exc
        except NetlistError as exc:
            raise NetlistError(f"line {line_no}: {exc}") from exc
    if netlist is None:
        raise NetlistError("empty netlist text")
    netlist.validate()
    return netlist


def serialize_netlist(netlist: Netlist) -> str:
    """Inverse of :func:`parse_netlist` (gate names are generated)."""
    aig = netlist.aig
    lines = [f"netlist {netlist.name}".rstrip()]
    names: dict[int, str] = {}
    for node in netlist.input_nodes:
        name = aig.input_name(node)
        names[node] = name
        lines.append(f"input {name}")
    for latch in netlist.latches:
        names[latch.node] = latch.name
        lines.append(f"latch {latch.name} {int(latch.init)}")

    roots = [latch.next_edge for latch in netlist.latches]
    roots.extend(netlist.outputs.values())
    if netlist.has_property:
        roots.append(netlist.property_edge)
    roots.extend(netlist.constraints)

    def token(edge: int) -> str:
        node = edge >> 1
        if node == 0:
            return "1" if edge & 1 else "0"
        return ("!" if edge & 1 else "") + names[node]

    counter = 0
    for node in aig.cone(roots):
        if not aig.is_and(node):
            continue
        name = f"g{counter}"
        counter += 1
        f0, f1 = aig.fanins(node)
        names[node] = name
        lines.append(f"and {name} {token(f0)} {token(f1)}")
    for latch in netlist.latches:
        lines.append(f"next {latch.name} {token(latch.next_edge)}")
    for out_name, edge in netlist.outputs.items():
        lines.append(f"output {out_name} {token(edge)}")
    if netlist.has_property:
        lines.append(f"property {token(netlist.property_edge)}")
    for edge in netlist.constraints:
        lines.append(f"constraint {token(edge)}")
    return "\n".join(lines) + "\n"
