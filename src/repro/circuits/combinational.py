"""Combinational benchmark families for the quantification experiments.

Each generator returns ``(aig, input_edges, output_edge)``.  These circuits
are the workloads of experiments T1-T3 and F2: quantifying inputs out of
arithmetic, comparator, selection and random logic stresses the merge and
optimization phases in qualitatively different ways (arithmetic cofactors
are similar; random-logic cofactors are not).
"""

from __future__ import annotations

import random

from repro.aig.graph import Aig, edge_not
from repro.aig.ops import and_all, ite, or_, or_all, xor
from repro.errors import AigError


def ripple_adder(width: int) -> tuple[Aig, list[int], int]:
    """Ripple-carry adder; output is the final carry (a compact summary bit)."""
    aig = Aig()
    a = aig.add_inputs(width, prefix="a")
    b = aig.add_inputs(width, prefix="b")
    carry = 0
    for x, y in zip(a, b):
        gen = aig.and_(x, y)
        prop = xor(aig, x, y)
        carry = or_(aig, gen, aig.and_(prop, carry))
    return aig, a + b, carry


def adder_sum_parity(width: int) -> tuple[Aig, list[int], int]:
    """Parity of the sum bits of an adder (deep XOR over carries)."""
    aig = Aig()
    a = aig.add_inputs(width, prefix="a")
    b = aig.add_inputs(width, prefix="b")
    carry = 0
    parity = 0
    for x, y in zip(a, b):
        s = xor(aig, xor(aig, x, y), carry)
        parity = xor(aig, parity, s)
        gen = aig.and_(x, y)
        prop = xor(aig, x, y)
        carry = or_(aig, gen, aig.and_(prop, carry))
    return aig, a + b, parity


def comparator(width: int) -> tuple[Aig, list[int], int]:
    """Unsigned ``a < b``."""
    aig = Aig()
    a = aig.add_inputs(width, prefix="a")
    b = aig.add_inputs(width, prefix="b")
    less = 0
    for x, y in zip(a, b):  # LSB to MSB
        eq = edge_not(xor(aig, x, y))
        less = or_(aig, aig.and_(edge_not(x), y), aig.and_(eq, less))
    return aig, a + b, less


def mux_tree(select_bits: int) -> tuple[Aig, list[int], int]:
    """A 2^k : 1 multiplexer tree (selects among data inputs)."""
    aig = Aig()
    selects = aig.add_inputs(select_bits, prefix="s")
    data = aig.add_inputs(1 << select_bits, prefix="d")
    layer = list(data)
    for sel in selects:
        layer = [
            ite(aig, sel, layer[2 * i + 1], layer[2 * i])
            for i in range(len(layer) // 2)
        ]
    return aig, selects + data, layer[0]


def parity(width: int) -> tuple[Aig, list[int], int]:
    """XOR of all inputs — the classic BDD-friendly, AIG-deep function."""
    aig = Aig()
    xs = aig.add_inputs(width, prefix="x")
    acc = 0
    for x in xs:
        acc = xor(aig, acc, x)
    return aig, xs, acc


def majority(width: int) -> tuple[Aig, list[int], int]:
    """Majority of ``width`` inputs via a sorting-free threshold counter."""
    if width < 1:
        raise AigError("majority needs at least one input")
    aig = Aig()
    xs = aig.add_inputs(width, prefix="x")
    threshold = width // 2 + 1
    # counts[j] == "at least j of the inputs seen so far are 1"
    counts = [0] * (threshold + 1)
    counts[0] = 1  # TRUE
    for x in xs:
        for j in range(threshold, 0, -1):
            counts[j] = or_(aig, counts[j], aig.and_(counts[j - 1], x))
    return aig, xs, counts[threshold]


def random_logic(
    num_inputs: int, num_gates: int, seed: int = 0
) -> tuple[Aig, list[int], int]:
    """Random AND/INV DAG; the low-cofactor-similarity stress case."""
    rng = random.Random(seed)
    aig = Aig()
    xs = aig.add_inputs(num_inputs, prefix="x")
    nodes = list(xs)
    for _ in range(num_gates):
        a = rng.choice(nodes) ^ rng.randint(0, 1)
        b = rng.choice(nodes) ^ rng.randint(0, 1)
        nodes.append(aig.and_(a, b))
    root = nodes[-1] ^ rng.randint(0, 1)
    return aig, xs, root


def equality_with_constant_slices(
    width: int, num_slices: int = 2
) -> tuple[Aig, list[int], int]:
    """OR of equality comparisons of input slices — highly similar cofactors.

    Quantifying one variable leaves the other slices untouched, so the two
    cofactors share almost everything: the best case for backward merging.
    """
    aig = Aig()
    xs = aig.add_inputs(width * num_slices, prefix="x")
    terms = []
    for s in range(num_slices):
        chunk = xs[s * width:(s + 1) * width]
        terms.append(and_all(aig, chunk))
    return aig, xs, or_all(aig, terms)


def mux_of_variants(
    num_terms: int, similar: bool = True
) -> tuple[Aig, list[int], int]:
    """``x ? A : B`` where A and B are term-wise restructured circuits.

    With ``similar=True`` each pair of terms applies distributivity —
    ``(a AND b) OR (a AND c)`` on one side, ``a AND (b OR c)`` on the
    other — so the two cofactors w.r.t. ``x`` are *functionally equal at
    every term* but share no internal structure.  This is the paper's
    "high merge probability (similar cofactors)" case distilled: a
    backward merge proves the roots equal in one check, a forward sweep
    must work through the terms.

    With ``similar=False`` the B-side terms compute different functions
    (``a OR (b AND c)``), the low-merge-probability case.

    Returns ``(aig, [x, a0, b0, c0, a1, ...], root)``.
    """
    aig = Aig()
    x = aig.add_input("x")
    inputs = [x]
    a_terms = []
    b_terms = []
    for index in range(num_terms):
        a = aig.add_input(f"a{index}")
        b = aig.add_input(f"b{index}")
        c = aig.add_input(f"c{index}")
        inputs.extend([a, b, c])
        a_terms.append(or_(aig, aig.and_(a, b), aig.and_(a, c)))
        if similar:
            b_terms.append(aig.and_(a, or_(aig, b, c)))
        else:
            b_terms.append(or_(aig, a, aig.and_(b, c)))
    side_a = or_all(aig, a_terms)
    side_b = or_all(aig, b_terms)
    root = or_(aig, aig.and_(x, side_a), aig.and_(edge_not(x), side_b))
    return aig, inputs, root


COMBINATIONAL_FAMILIES = {
    "ripple_adder": ripple_adder,
    "adder_sum_parity": adder_sum_parity,
    "comparator": comparator,
    "mux_tree": mux_tree,
    "parity": parity,
    "majority": majority,
    "random_logic": random_logic,
    "equality_slices": equality_with_constant_slices,
    "mux_of_variants": mux_of_variants,
}
