"""Sequential circuit model: latches + next-state functions + properties.

A :class:`Netlist` owns one AIG manager.  State variables and primary
inputs are AIG inputs; each latch carries a next-state edge and an initial
value.  An invariant property is a single edge that must hold in every
reachable state ("Given an invariant property P we start reachability from
its complement...").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.aig.graph import TRUE, Aig, edge_not
from repro.aig.ops import and_all, support
from repro.aig.simulate import eval_edge
from repro.errors import NetlistError


@dataclass
class Latch:
    """One state element."""

    node: int              # the AIG input node acting as the state variable
    next_edge: int | None  # next-state function (over inputs and latches)
    init: bool             # initial value
    name: str


class Netlist:
    """A deterministic sequential circuit over one AIG manager.

    >>> n = Netlist("toggler")
    >>> t = n.add_latch("t", init=False)
    >>> n.set_next(t, edge_not(t))
    >>> n.set_property(TRUE)    # trivially safe
    >>> n.validate()
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.aig = Aig()
        self._input_nodes: list[int] = []
        self._latches: list[Latch] = []
        self._latch_by_node: dict[int, Latch] = {}
        self._outputs: dict[str, int] = {}
        self._property: int | None = None
        self._constraints: list[int] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_aig(
        cls,
        aig: Aig,
        *,
        input_nodes: Sequence[int],
        latches: Sequence[Latch],
        property_edge: int | None = None,
        constraints: Sequence[int] = (),
        outputs: Mapping[str, int] | None = None,
        name: str = "",
    ) -> "Netlist":
        """Re-anchor a netlist onto an existing manager.

        Used by transformations (e.g. FRAIG preprocessing) that rebuild
        the logic in a fresh ``Aig`` and need a netlist over it without
        re-creating the leaves through :meth:`add_input`/:meth:`add_latch`.
        The given nodes/edges must already live in ``aig``; the result is
        validated before being returned.
        """
        netlist = cls(name)
        netlist.aig = aig
        netlist._input_nodes = list(input_nodes)
        netlist._latches = list(latches)
        netlist._latch_by_node = {latch.node: latch for latch in latches}
        if outputs:
            netlist._outputs = dict(outputs)
        netlist._property = property_edge
        netlist._constraints = list(constraints)
        netlist.validate()
        return netlist

    def add_input(self, name: str | None = None) -> int:
        """A primary (free) input; returns its edge."""
        edge = self.aig.add_input(
            name if name is not None else f"in{len(self._input_nodes)}"
        )
        self._input_nodes.append(edge >> 1)
        return edge

    def add_inputs(self, count: int, prefix: str = "in") -> list[int]:
        return [self.add_input(f"{prefix}{k}") for k in range(count)]

    def add_latch(self, name: str | None = None, init: bool = False) -> int:
        """A state variable; returns its edge.  Set its next edge later."""
        label = name if name is not None else f"l{len(self._latches)}"
        edge = self.aig.add_input(label)
        latch = Latch(node=edge >> 1, next_edge=None, init=init, name=label)
        self._latches.append(latch)
        self._latch_by_node[latch.node] = latch
        return edge

    def add_latches(
        self, count: int, prefix: str = "l", init: int = 0
    ) -> list[int]:
        """``count`` latches; bit ``k`` of ``init`` is latch k's init value."""
        return [
            self.add_latch(f"{prefix}{k}", init=bool((init >> k) & 1))
            for k in range(count)
        ]

    def set_next(self, latch_edge: int, next_edge: int) -> None:
        """Define the next-state function of a latch (by its edge)."""
        node = latch_edge >> 1
        if latch_edge & 1:
            raise NetlistError("pass the positive latch edge to set_next")
        latch = self._latch_by_node.get(node)
        if latch is None:
            raise NetlistError(f"node {node} is not a latch")
        latch.next_edge = next_edge

    def set_output(self, name: str, edge: int) -> None:
        self._outputs[name] = edge

    def set_property(self, edge: int) -> None:
        """The invariant: this edge must be 1 in every reachable state."""
        self._property = edge

    def add_constraint(self, edge: int) -> None:
        """An environment assumption over inputs and state.

        Constraints restrict the executions the engines consider: every
        step of a path (including the violating one) must satisfy every
        constraint.  Image computations conjoin them before quantifying,
        and the SAT-based engines assert them in every time frame.
        """
        self._constraints.append(edge)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def input_nodes(self) -> list[int]:
        return list(self._input_nodes)

    @property
    def latch_nodes(self) -> list[int]:
        return [latch.node for latch in self._latches]

    @property
    def latches(self) -> list[Latch]:
        return list(self._latches)

    @property
    def num_latches(self) -> int:
        return len(self._latches)

    @property
    def num_inputs(self) -> int:
        return len(self._input_nodes)

    @property
    def outputs(self) -> dict[str, int]:
        return dict(self._outputs)

    @property
    def property_edge(self) -> int:
        if self._property is None:
            raise NetlistError("no property set")
        return self._property

    @property
    def has_property(self) -> bool:
        return self._property is not None

    @property
    def constraints(self) -> list[int]:
        return list(self._constraints)

    def constraint_edge(self) -> int:
        """Conjunction of all constraints (``TRUE`` when unconstrained)."""
        if not self._constraints:
            return TRUE
        return and_all(self.aig, self._constraints)

    def constraints_hold(
        self, state: Mapping[int, bool], inputs: Mapping[int, bool]
    ) -> bool:
        """Evaluate every constraint under one concrete step."""
        assignment = dict(inputs)
        assignment.update(state)
        return all(
            eval_edge(self.aig, edge, assignment)
            for edge in self._constraints
        )

    def next_functions(self) -> dict[int, int]:
        """Map latch node -> next-state edge (validation included)."""
        result: dict[int, int] = {}
        for latch in self._latches:
            if latch.next_edge is None:
                raise NetlistError(f"latch {latch.name} has no next function")
            result[latch.node] = latch.next_edge
        return result

    def init_assignment(self) -> dict[int, bool]:
        """Latch node -> initial value."""
        return {latch.node: latch.init for latch in self._latches}

    def init_state_edge(self) -> int:
        """Characteristic function of the (single) initial state."""
        literals = []
        for latch in self._latches:
            edge = 2 * latch.node
            literals.append(edge if latch.init else edge_not(edge))
        return and_all(self.aig, literals)

    # ------------------------------------------------------------------ #
    # Validation and simulation
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Raise :class:`NetlistError` on dangling or ill-scoped logic."""
        legal = set(self._input_nodes) | set(self._latch_by_node)
        for latch in self._latches:
            if latch.next_edge is None:
                raise NetlistError(f"latch {latch.name} has no next function")
            used = support(self.aig, latch.next_edge)
            if not used <= legal:
                raise NetlistError(
                    f"next function of {latch.name} uses foreign inputs "
                    f"{sorted(used - legal)}"
                )
        if self._property is not None:
            used = support(self.aig, self._property)
            if not used <= legal:
                raise NetlistError("property uses foreign inputs")
        for index, edge in enumerate(self._constraints):
            used = support(self.aig, edge)
            if not used <= legal:
                raise NetlistError(f"constraint {index} uses foreign inputs")

    def simulate_step(
        self,
        state: Mapping[int, bool],
        inputs: Mapping[int, bool],
    ) -> dict[int, bool]:
        """One clock tick: returns the next state (latch node -> value)."""
        assignment = dict(inputs)
        assignment.update(state)
        return {
            latch.node: eval_edge(self.aig, latch.next_edge, assignment)
            for latch in self._latches
        }

    def run_trace(
        self,
        input_sequence: Sequence[Mapping[int, bool]],
        state: Mapping[int, bool] | None = None,
    ) -> list[dict[int, bool]]:
        """Simulate from the initial (or given) state; returns state list.

        The returned list has ``len(input_sequence) + 1`` entries, starting
        with the initial state.
        """
        current = dict(state) if state is not None else self.init_assignment()
        states = [dict(current)]
        for step_inputs in input_sequence:
            current = self.simulate_step(current, step_inputs)
            states.append(dict(current))
        return states

    def property_holds(
        self, state: Mapping[int, bool], inputs: Mapping[int, bool] | None = None
    ) -> bool:
        assignment = dict(inputs) if inputs else {}
        assignment.update(state)
        return eval_edge(self.aig, self.property_edge, assignment)

    # ------------------------------------------------------------------ #
    # Cloning (used by traversal engines for private working copies)
    # ------------------------------------------------------------------ #

    def clone(
        self, extra_edges: Sequence[int] = ()
    ) -> tuple["Netlist", list[int], dict[int, int]]:
        """Deep-copy into a fresh manager, dropping unreferenced logic.

        Returns ``(clone, transferred_extra_edges, node_map)`` where
        ``node_map`` maps this netlist's input/latch nodes to the clone's
        nodes.  Latch order, names, init values, outputs and property are
        preserved.  ``extra_edges`` (e.g. in-flight state sets) are
        transferred alongside — this is the traversal engine's compaction
        primitive.
        """
        from repro.aig.ops import transfer

        duplicate = Netlist(self.name)
        leaf_map: dict[int, int] = {}
        latch_node_set = set(self._latch_by_node)
        input_node_set = set(self._input_nodes)
        for node in self.aig.inputs:
            if node in latch_node_set:
                latch = self._latch_by_node[node]
                leaf_map[node] = duplicate.add_latch(latch.name, latch.init)
            elif node in input_node_set:
                leaf_map[node] = duplicate.add_input(self.aig.input_name(node))
            else:
                # Foreign scratch input (e.g. post-image placeholder):
                # recreate it to keep identities stable, but unregistered.
                leaf_map[node] = duplicate.aig.add_input(
                    self.aig.input_name(node)
                )
        cache: dict[int, int] = {}
        for latch in self._latches:
            if latch.next_edge is not None:
                duplicate.set_next(
                    leaf_map[latch.node],
                    transfer(
                        self.aig, latch.next_edge, duplicate.aig, leaf_map, cache
                    ),
                )
        for out_name, edge in self._outputs.items():
            duplicate.set_output(
                out_name,
                transfer(self.aig, edge, duplicate.aig, leaf_map, cache),
            )
        if self._property is not None:
            duplicate.set_property(
                transfer(self.aig, self._property, duplicate.aig, leaf_map, cache)
            )
        for edge in self._constraints:
            duplicate.add_constraint(
                transfer(self.aig, edge, duplicate.aig, leaf_map, cache)
            )
        transferred = [
            transfer(self.aig, edge, duplicate.aig, leaf_map, cache)
            for edge in extra_edges
        ]
        node_map = {node: leaf_map[node] >> 1 for node in leaf_map}
        return duplicate, transferred, node_map

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist({self.name!r}, latches={self.num_latches}, "
            f"inputs={self.num_inputs}, ands={self.aig.num_ands})"
        )
