"""ISCAS-89 ``.bench`` format: reader and writer.

The paper evaluates on "hard-to-verify circuits" of its era, which
circulate in the ISCAS-85/89 ``.bench`` netlist format::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5  = DFF(G10)
    G14 = NOT(G0)
    G8  = AND(G14, G6)
    G9  = NAND(G16, G15)

Gates may reference signals defined later (DFFs routinely do), so parsing
is two-pass: collect definitions first, then elaborate on demand with a
cycle check.  ``DFF`` becomes a latch with initial value 0 (the standard
assumption for these benchmarks); every ``OUTPUT`` becomes a netlist
output.  Properties are not part of the format — callers attach one with
:meth:`~repro.circuits.netlist.Netlist.set_property`.
"""

from __future__ import annotations

import re

from repro.aig.graph import edge_not
from repro.aig.ops import and_all, or_all, xor
from repro.circuits.netlist import Netlist
from repro.errors import NetlistError

_GATE_RE = re.compile(
    r"^\s*([^\s=]+)\s*=\s*([A-Za-z]+)\s*\(([^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(([^)]*)\)\s*$", re.IGNORECASE)

_SUPPORTED = {
    "AND", "NAND", "OR", "NOR", "XOR", "XNOR", "NOT", "BUFF", "BUF", "DFF"
}


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` text into a validated :class:`Netlist`."""
    inputs: list[str] = []
    outputs: list[str] = []
    gates: dict[str, tuple[str, list[str]]] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind, signal = io_match.group(1).upper(), io_match.group(2).strip()
            (inputs if kind == "INPUT" else outputs).append(signal)
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match is None:
            raise NetlistError(f"line {line_no}: cannot parse {line!r}")
        target = gate_match.group(1)
        op = gate_match.group(2).upper()
        operands = [
            token.strip()
            for token in gate_match.group(3).split(",")
            if token.strip()
        ]
        if op not in _SUPPORTED:
            raise NetlistError(f"line {line_no}: unsupported gate {op!r}")
        if target in gates:
            raise NetlistError(f"line {line_no}: {target!r} defined twice")
        gates[target] = (op, operands)

    netlist = Netlist(name)
    signals: dict[str, int] = {}
    for signal in inputs:
        signals[signal] = netlist.add_input(signal)
    latch_edges: dict[str, int] = {}
    for signal, (op, _) in gates.items():
        if op == "DFF":
            edge = netlist.add_latch(signal, init=False)
            signals[signal] = edge
            latch_edges[signal] = edge

    elaborating: set[str] = set()

    def elaborate(signal: str) -> int:
        if signal in signals:
            return signals[signal]
        if signal not in gates:
            raise NetlistError(f"undefined signal {signal!r}")
        if signal in elaborating:
            raise NetlistError(
                f"combinational cycle through {signal!r}"
            )
        elaborating.add(signal)
        op, operands = gates[signal]
        edges = [elaborate(operand) for operand in operands]
        signals[signal] = _build_gate(netlist, op, edges, signal)
        elaborating.discard(signal)
        return signals[signal]

    for signal, (op, operands) in gates.items():
        if op == "DFF":
            if len(operands) != 1:
                raise NetlistError(f"DFF {signal!r} needs exactly one input")
            netlist.set_next(latch_edges[signal], elaborate(operands[0]))
        else:
            elaborate(signal)
    for signal in outputs:
        netlist.set_output(signal, elaborate(signal))
    netlist.validate()
    return netlist


def _build_gate(
    netlist: Netlist, op: str, edges: list[int], signal: str
) -> int:
    aig = netlist.aig
    if op in ("NOT", "BUFF", "BUF"):
        if len(edges) != 1:
            raise NetlistError(f"{op} gate {signal!r} needs one operand")
        return edge_not(edges[0]) if op == "NOT" else edges[0]
    if not edges:
        raise NetlistError(f"gate {signal!r} has no operands")
    if op in ("AND", "NAND"):
        result = and_all(aig, edges)
        return edge_not(result) if op == "NAND" else result
    if op in ("OR", "NOR"):
        result = or_all(aig, edges)
        return edge_not(result) if op == "NOR" else result
    if op in ("XOR", "XNOR"):
        result = edges[0]
        for edge in edges[1:]:
            result = xor(aig, result, edge)
        return edge_not(result) if op == "XNOR" else result
    raise NetlistError(f"unsupported gate {op!r}")  # pragma: no cover


def serialize_bench(netlist: Netlist) -> str:
    """Write a netlist as ``.bench`` text (AND/NOT/DFF gates only).

    The AIG's two-input AND + inverter structure maps directly; inverted
    edges are materialized as ``NOT`` gates on demand.  Outputs and
    latches keep their names; internal gates get generated names.
    """
    aig = netlist.aig
    lines = [f"# {netlist.name}"] if netlist.name else []
    names: dict[int, str] = {}
    for node in netlist.input_nodes:
        names[node] = aig.input_name(node)
        lines.append(f"INPUT({names[node]})")
    for out_name in netlist.outputs:
        lines.append(f"OUTPUT({out_name})")
    for latch in netlist.latches:
        names[latch.node] = latch.name

    # Properties are not expressible in .bench; only latches and outputs
    # anchor the serialized logic.
    roots = [latch.next_edge for latch in netlist.latches]
    roots.extend(netlist.outputs.values())

    gate_lines: list[str] = []
    counter = 0
    not_cache: dict[int, str] = {}

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    def signal_of(edge: int) -> str:
        node = edge >> 1
        if node == 0:
            # Constants via a self-contradictory/tautological gate pair is
            # ugly; .bench has no constants, so synthesize from an input.
            raise NetlistError(
                ".bench serialization does not support constant edges; "
                "simplify the netlist first"
            )
        base = names[node]
        if not edge & 1:
            return base
        cached = not_cache.get(node)
        if cached is None:
            cached = fresh("n")
            not_cache[node] = cached
            gate_lines.append(f"{cached} = NOT({base})")
        return cached

    for node in aig.cone(roots):
        if not aig.is_and(node):
            continue
        f0, f1 = aig.fanins(node)
        name = fresh("g")
        names[node] = name
        gate_lines.append(
            f"{name} = AND({signal_of(f0)}, {signal_of(f1)})"
        )
    for latch in netlist.latches:
        gate_lines.append(
            f"{latch.name} = DFF({signal_of(latch.next_edge)})"
        )
    output_lines = []
    for out_name, edge in netlist.outputs.items():
        # OUTPUT(x) refers to signal x; emit a BUFF if names differ.
        signal = signal_of(edge)
        if signal != out_name:
            output_lines.append(f"{out_name} = BUFF({signal})")
    return "\n".join(lines + gate_lines + output_lines) + "\n"
