"""Sequential netlists and benchmark circuit generators.

The paper evaluates on unnamed "hard-to-verify circuits and properties";
this package provides the reproducible substitute: a latch/input netlist
model over one AIG manager (:mod:`repro.circuits.netlist`), parametric
sequential families with known-safe and known-buggy properties
(:mod:`repro.circuits.generators`) and combinational families for the
quantification experiments (:mod:`repro.circuits.combinational`).
"""

from repro.circuits.netlist import Netlist
from repro.circuits import generators
from repro.circuits import combinational
from repro.circuits import library
from repro.circuits.bench_format import parse_bench, serialize_bench
from repro.circuits.blif import parse_blif, serialize_blif
from repro.circuits.parse import parse_netlist, serialize_netlist

__all__ = [
    "Netlist",
    "generators",
    "combinational",
    "library",
    "parse_bench",
    "serialize_bench",
    "parse_blif",
    "serialize_blif",
    "parse_netlist",
    "serialize_netlist",
]
