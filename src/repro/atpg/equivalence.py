"""Equivalence checking as stuck-at-fault testing on a comparison gate.

Section 2.1's closing remark: the merge procedure "is not far from testing
stuck-at-faults on comparison gates over the product machine of the
combined ... cofactors".  This module implements the remark literally:

1. build the comparison gate ``m = a XNOR b`` (the product machine's
   comparator);
2. pose the single fault *m stuck-at-1*;
3. a test for the fault is an input where ``m = 0``, i.e. ``a != b``;
4. untestable (redundant) means the comparator is constantly 1: the two
   circuits are equivalent and ``b`` may be merged into ``a``.

Either test generator (PODEM or SAT) can discharge the fault, so this
bridge doubles as a cross-check between the ATPG engines and the sweeping
engines.
"""

from __future__ import annotations

from repro.aig.graph import Aig
from repro.aig.ops import xnor
from repro.atpg.faults import OUTPUT, Fault
from repro.atpg.podem import PodemGenerator, PodemVerdict
from repro.atpg.satgen import SatTestGenerator


def check_equal_via_atpg(
    aig: Aig,
    a: int,
    b: int,
    engine: str = "sat",
    budget: int = 20_000,
    split_workers: int = 0,
) -> tuple[bool | None, dict[int, bool] | None]:
    """Equivalence of two edges posed as a comparison-gate fault.

    Returns ``(verdict, counterexample)`` with the same contract as
    :func:`repro.sweep.satsweep.prove_edges_equivalent`: ``True`` means
    the stuck-at-1 fault on the comparator is redundant (edges equal);
    ``False`` comes with the distinguishing test pattern; ``None`` means
    the budget ran out.

    ``engine="cnc"`` routes the fault through
    :func:`repro.cnc.engine.split_solve` — the cube-and-conquer path for
    comparators too hard for one monolithic SAT call; ``split_workers``
    sizes its conquer pool (0 = in-process).
    """
    if a == b:
        return True, None
    comparator = xnor(aig, a, b)
    # The XNOR may constant-fold (e.g. b == NOT a); handle directly.
    if comparator == 1:
        return True, None
    if comparator == 0:
        from repro.aig.ops import support_many

        pattern = {n: False for n in support_many(aig, [a, b])}
        return False, pattern
    if engine == "cnc":
        from repro.aig.graph import edge_not
        from repro.aig.ops import support_many
        from repro.cnc.engine import split_solve
        from repro.sat.solver import SolveResult

        outcome = split_solve(
            aig,
            edge_not(comparator),
            workers=split_workers,
            conflict_budget=budget,
        )
        if outcome.verdict is SolveResult.UNSAT:
            return True, None
        if outcome.verdict is SolveResult.SAT:
            pattern = {n: False for n in support_many(aig, [a, b])}
            pattern.update(outcome.model)
            return False, pattern
        return None, None
    # Stuck-at-1 on the comparator *function*: when the comparator edge is
    # complemented, that is stuck-at-0 on the underlying node.
    node = comparator >> 1
    fault = Fault(node, OUTPUT, not (comparator & 1))
    if engine == "podem":
        generator = PodemGenerator(aig, [comparator], backtrack_limit=budget)
        result = generator.generate(fault)
        if result.verdict is PodemVerdict.REDUNDANT:
            return True, None
        if result.verdict is PodemVerdict.TEST_FOUND:
            return False, result.pattern
        return None, None
    sat_generator = SatTestGenerator(aig, [comparator], conflict_budget=budget)
    testable, pattern = sat_generator.generate(fault)
    if testable is False:
        return True, None
    if testable is True:
        return False, pattern
    return None, None
