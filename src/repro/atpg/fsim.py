"""Bit-parallel single stuck-at fault simulation.

One numpy ``uint64`` word carries 64 test patterns, so each fault costs one
vectorized resimulation of its output cone.  Detected faults are dropped
from the active list (classic fault dropping), which makes coverage sweeps
over random patterns cheap enough for the benchmark harness.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.aig.graph import Aig
from repro.aig.simulate import simulate
from repro.atpg.faults import Fault, full_fault_list, collapse_faults
from repro.atpg.inject import inject_fault
from repro.util.stats import StatsBag


class FaultSimulator:
    """Fault simulation session over fixed target roots.

    >>> from repro.aig.graph import Aig
    >>> aig = Aig()
    >>> a, b = aig.add_inputs(2)
    >>> f = aig.and_(a, b)
    >>> sim = FaultSimulator(aig, [f])
    >>> len(sim.remaining)        # collapsed faults of a single AND cone
    7
    """

    def __init__(
        self,
        aig: Aig,
        roots: Sequence[int],
        faults: Sequence[Fault] | None = None,
        collapse: bool = True,
    ) -> None:
        self.aig = aig
        self.roots = list(roots)
        if faults is None:
            faults = full_fault_list(aig, self.roots)
            if collapse:
                faults = collapse_faults(aig, faults)
        self.remaining: list[Fault] = list(faults)
        self.detected: dict[Fault, dict[int, bool]] = {}
        self.stats = StatsBag()
        # Faulty root edges are cached per fault: injection only rebuilds
        # the fault's output cone thanks to structural hashing.
        self._faulty_roots: dict[Fault, list[int]] = {}

    def _roots_for(self, fault: Fault) -> list[int]:
        cached = self._faulty_roots.get(fault)
        if cached is None:
            cached = inject_fault(self.aig, self.roots, fault)
            self._faulty_roots[fault] = cached
        return cached

    def simulate_patterns(
        self, input_vectors: Mapping[int, np.ndarray]
    ) -> list[Fault]:
        """Run all remaining faults against the given pattern words.

        ``input_vectors`` maps input nodes to uint64 words (as produced by
        :func:`repro.aig.simulate.random_input_vectors`).  Newly detected
        faults are dropped and returned; the first detecting pattern is
        recorded per fault in :attr:`detected`.
        """
        good = simulate(self.aig, input_vectors, self.roots)
        newly_detected: list[Fault] = []
        still_remaining: list[Fault] = []
        for fault in self.remaining:
            faulty_roots = self._roots_for(fault)
            faulty = simulate(self.aig, input_vectors, faulty_roots)
            difference = np.zeros_like(good[self.roots[0]])
            for root, froot in zip(self.roots, faulty_roots):
                difference |= good[root] ^ faulty[froot]
            self.stats.incr("fault_simulations")
            if difference.any():
                pattern = _first_set_pattern(difference, input_vectors)
                self.detected[fault] = pattern
                newly_detected.append(fault)
                self.stats.incr("faults_detected")
            else:
                still_remaining.append(fault)
        self.remaining = still_remaining
        return newly_detected

    def run_random(
        self, words: int = 4, rounds: int = 4, seed: int = 2005
    ) -> float:
        """Random-pattern campaign; returns the final fault coverage."""
        rng = np.random.default_rng(seed)
        input_nodes = [
            node for node in self.aig.cone(self.roots)
            if self.aig.is_input(node)
        ]
        for _ in range(rounds):
            if not self.remaining:
                break
            vectors = {
                node: rng.integers(0, 2**64, size=words, dtype=np.uint64)
                for node in input_nodes
            }
            self.simulate_patterns(vectors)
        return self.coverage

    @property
    def coverage(self) -> float:
        """Fraction of the original fault list detected so far."""
        total = len(self.detected) + len(self.remaining)
        if total == 0:
            return 1.0
        return len(self.detected) / total


def _first_set_pattern(
    difference: np.ndarray, input_vectors: Mapping[int, np.ndarray]
) -> dict[int, bool]:
    """Decode the first detecting pattern index back to input values."""
    for word_index, word in enumerate(difference):
        value = int(word)
        if value:
            bit = (value & -value).bit_length() - 1
            return {
                node: bool(
                    (int(vector[word_index]) >> bit) & 1
                )
                for node, vector in input_vectors.items()
            }
    raise AssertionError("difference vector had no set bit")


def fault_coverage(
    aig: Aig,
    roots: Sequence[int],
    words: int = 4,
    rounds: int = 4,
    seed: int = 2005,
    collapse: bool = True,
) -> tuple[float, FaultSimulator]:
    """Convenience wrapper: random-pattern coverage of the cones of roots."""
    simulator = FaultSimulator(aig, roots, collapse=collapse)
    coverage = simulator.run_random(words=words, rounds=rounds, seed=seed)
    return coverage, simulator
