"""The single stuck-at fault model over AIG cones.

Fault sites are the *output* of any node (input or AND) and the two input
*pins* of every AND gate.  Pin faults apply to the value the gate consumes,
i.e. after the fanin edge's complement attribute has been applied — this
matches the textbook gate-level model where an inverter-free two-input AND
network carries faults on its wires.

Collapsing follows the classic rules for AND gates:

* *equivalence*: any input pin stuck-at-0 produces the same faulty function
  as the output stuck-at-0 — one representative (the output s-a-0) is kept;
* *dominance*: every test for an input pin stuck-at-1 also detects the
  output stuck-at-1, so the output s-a-1 is dropped in favour of the pin
  faults.

Primary-input outputs keep both polarities (they are the stems the collapsed
classes anchor to).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.aig.graph import Aig
from repro.errors import AigError

#: Sentinel pin index meaning "the node's output" rather than a gate input.
OUTPUT = -1


@dataclass(frozen=True, order=True)
class Fault:
    """One single stuck-at fault.

    ``node`` is the AIG node carrying the fault; ``pin`` is :data:`OUTPUT`
    for an output fault or 0/1 for the corresponding AND-gate input pin;
    ``stuck_at`` is the value the faulty wire is tied to.
    """

    node: int
    pin: int
    stuck_at: bool

    def describe(self, aig: Aig | None = None) -> str:
        """Human-readable site description (``n17/pin0 s-a-1`` style)."""
        if aig is not None and aig.is_input(self.node):
            site = aig.input_name(self.node)
        else:
            site = f"n{self.node}"
        where = "out" if self.pin == OUTPUT else f"pin{self.pin}"
        return f"{site}/{where} s-a-{int(self.stuck_at)}"


def _check_fault(aig: Aig, fault: Fault) -> None:
    if fault.node <= 0 or fault.node >= aig.num_nodes:
        raise AigError(f"fault node {fault.node} does not exist")
    if fault.pin == OUTPUT:
        return
    if fault.pin not in (0, 1):
        raise AigError(f"invalid pin {fault.pin}")
    if not aig.is_and(fault.node):
        raise AigError(f"pin fault on non-AND node {fault.node}")


def full_fault_list(aig: Aig, roots: Sequence[int]) -> list[Fault]:
    """Every stuck-at fault in the cones of ``roots`` (uncollapsed).

    Output faults on every node plus pin faults on every AND gate: a cone
    with ``i`` inputs and ``a`` AND gates yields ``2*(i + a) + 4*a`` faults.
    """
    faults: list[Fault] = []
    for node in aig.cone(roots):
        for value in (False, True):
            faults.append(Fault(node, OUTPUT, value))
        if aig.is_and(node):
            for pin in (0, 1):
                for value in (False, True):
                    faults.append(Fault(node, pin, value))
    return faults


def collapse_faults(aig: Aig, faults: Iterable[Fault]) -> list[Fault]:
    """Equivalence + dominance collapsing of a fault list.

    For every AND gate present in the list:

    * pin s-a-0 faults collapse into the gate's output s-a-0 (equivalence);
    * the output s-a-1 is dropped when both pin s-a-1 faults are present
      (dominance).

    Faults on nodes with no gate context (inputs) are kept untouched.  The
    result is deterministic and sorted.
    """
    fault_set = set(faults)
    collapsed: set[Fault] = set()
    for fault in fault_set:
        _check_fault(aig, fault)
        if fault.pin != OUTPUT and fault.stuck_at is False:
            # Equivalent to the output s-a-0; keep the representative.
            collapsed.add(Fault(fault.node, OUTPUT, False))
            continue
        if (
            fault.pin == OUTPUT
            and fault.stuck_at is True
            and aig.is_and(fault.node)
            and Fault(fault.node, 0, True) in fault_set
            and Fault(fault.node, 1, True) in fault_set
        ):
            # Dominated by either pin s-a-1; drop it.
            continue
        collapsed.add(fault)
    return sorted(collapsed)


def collapse_ratio(aig: Aig, roots: Sequence[int]) -> tuple[int, int]:
    """(full, collapsed) fault counts for the cones of ``roots``."""
    full = full_fault_list(aig, roots)
    return len(full), len(collapse_faults(aig, full))
