"""PODEM test generation on AIG cones.

PODEM (path-oriented decision making) searches over primary-input
assignments only: an *objective* (some line must take some value) is
backtraced through the AND/INV structure to a primary input, the input is
assigned, and a five-valued composite simulation (good value, faulty value,
each in {0, 1, X}) checks whether the fault effect has reached a root.
Conflicting or dead-end assignments are undone by flipping the most recent
input decision.

The search is complete: when the backtrack budget is not exhausted, a
``redundant`` verdict is a proof of untestability — which is exactly the
paper's angle on ATPG ("we are more interested in finding redundancies,
than good test patterns for faults").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.aig.graph import Aig
from repro.atpg.faults import OUTPUT, Fault, _check_fault
from repro.util.stats import StatsBag


class PodemVerdict(enum.Enum):
    """Outcome of one PODEM run."""

    TEST_FOUND = "test"
    REDUNDANT = "redundant"
    ABORTED = "aborted"


@dataclass
class PodemResult:
    """Verdict plus the detecting pattern when one exists."""

    verdict: PodemVerdict
    pattern: dict[int, bool] | None = None

    @property
    def found(self) -> bool:
        return self.verdict is PodemVerdict.TEST_FOUND


class _Composite:
    """Per-node (good, faulty) three-valued pair; None encodes X."""

    __slots__ = ("good", "faulty")

    def __init__(self) -> None:
        self.good: bool | None = None
        self.faulty: bool | None = None

    @property
    def is_d(self) -> bool:
        """Fault effect present: both definite and different."""
        return (
            self.good is not None
            and self.faulty is not None
            and self.good != self.faulty
        )


def _and3(a: bool | None, b: bool | None) -> bool | None:
    """Three-valued AND (None is X)."""
    if a is False or b is False:
        return False
    if a is True and b is True:
        return True
    return None


def _apply_sign(value: bool | None, edge: int) -> bool | None:
    if value is None:
        return None
    return value ^ bool(edge & 1)


class PodemGenerator:
    """PODEM search for one AIG manager and a fixed set of target roots."""

    def __init__(
        self,
        aig: Aig,
        roots: Sequence[int],
        backtrack_limit: int = 10_000,
    ) -> None:
        self.aig = aig
        self.roots = list(roots)
        self.backtrack_limit = backtrack_limit
        self.stats = StatsBag()
        self._cone = aig.cone(self.roots)
        self._cone_set = set(self._cone)
        self._inputs = [n for n in self._cone if aig.is_input(n)]

    # ------------------------------------------------------------------ #
    # Composite simulation
    # ------------------------------------------------------------------ #

    def _simulate(
        self, fault: Fault, assignment: dict[int, bool]
    ) -> dict[int, _Composite]:
        """Five-valued simulation of the whole cone under the assignment."""
        values: dict[int, _Composite] = {}
        zero = _Composite()
        zero.good = False
        zero.faulty = False
        values[0] = zero
        for node in self._cone:
            composite = _Composite()
            if self.aig.is_input(node):
                composite.good = assignment.get(node)
                composite.faulty = composite.good
            else:
                f0, f1 = self.aig.fanins(node)
                g0 = _apply_sign(values[f0 >> 1].good, f0)
                g1 = _apply_sign(values[f1 >> 1].good, f1)
                composite.good = _and3(g0, g1)
                b0 = _apply_sign(values[f0 >> 1].faulty, f0)
                b1 = _apply_sign(values[f1 >> 1].faulty, f1)
                if fault.node == node and fault.pin == 0:
                    b0 = fault.stuck_at
                if fault.node == node and fault.pin == 1:
                    b1 = fault.stuck_at
                composite.faulty = _and3(b0, b1)
            if fault.node == node and fault.pin == OUTPUT:
                composite.faulty = fault.stuck_at
            values[node] = composite
        return values

    def _fault_detected(self, values: dict[int, _Composite]) -> bool:
        for root in self.roots:
            composite = values.get(root >> 1)
            if composite is not None and composite.is_d:
                return True
        return False

    # ------------------------------------------------------------------ #
    # Objectives
    # ------------------------------------------------------------------ #

    def _activation_value(self, fault: Fault) -> tuple[int, bool]:
        """(node, good value) required to excite the fault.

        For an output fault the node itself must carry the opposite of the
        stuck value.  For a pin fault the *consumed* fanin value must be
        opposite, which translates back through the edge's sign.
        """
        if fault.pin == OUTPUT:
            return fault.node, not fault.stuck_at
        f0, f1 = self.aig.fanins(fault.node)
        edge = f0 if fault.pin == 0 else f1
        consumed = not fault.stuck_at
        return edge >> 1, consumed ^ bool(edge & 1)

    def _objective(
        self, fault: Fault, values: dict[int, _Composite]
    ) -> tuple[int, bool] | None:
        """Next (node, value) goal, or None when no progress is possible."""
        site, needed = self._activation_value(fault)
        composite = values[site]
        if composite.good is None:
            return site, needed
        if composite.good != needed:
            return None  # activation contradicted: dead end
        # For a pin fault the effect is born *inside* the faulty gate: the
        # gate output only becomes D once the other pin consumes 1.
        if fault.pin != OUTPUT and not values[fault.node].is_d:
            f0, f1 = self.aig.fanins(fault.node)
            other = f1 if fault.pin == 0 else f0
            other_composite = values[other >> 1]
            if other_composite.good is None:
                return other >> 1, True ^ bool(other & 1)
            if _apply_sign(other_composite.good, other) is not True:
                return None  # side input masks the fault: dead end
        # Fault active: drive it towards a root through the D-frontier —
        # an AND gate whose output is X in at least one of the two
        # machines while some consumed fanin carries the fault effect.
        for node in self._cone:
            if not self.aig.is_and(node):
                continue
            out = values[node]
            if out.good is not None and out.faulty is not None:
                continue
            f0, f1 = self.aig.fanins(node)
            for this, other in ((f0, f1), (f1, f0)):
                if not values[this >> 1].is_d:
                    continue
                other_composite = values[other >> 1]
                if other_composite.good is None:
                    # Set the side input to non-controlling (consumed 1).
                    return other >> 1, True ^ bool(other & 1)
        return None

    # ------------------------------------------------------------------ #
    # Backtrace
    # ------------------------------------------------------------------ #

    def _backtrace(
        self, node: int, value: bool, values: dict[int, _Composite]
    ) -> tuple[int, bool]:
        """Walk an objective back to an unassigned primary input."""
        while not self.aig.is_input(node):
            f0, f1 = self.aig.fanins(node)
            if value:
                # AND output 1 needs both consumed fanins 1: chase an X.
                chosen = f0 if values[f0 >> 1].good is None else f1
                value = True ^ bool(chosen & 1)
            else:
                # AND output 0 needs one consumed-0 fanin: pick an X one,
                # preferring the shallower cone (easier objective).
                candidates = [
                    edge for edge in (f0, f1)
                    if values[edge >> 1].good is None
                ]
                chosen = min(
                    candidates, key=lambda e: self.aig.level(e >> 1)
                )
                value = False ^ bool(chosen & 1)
            node = chosen >> 1
        return node, value

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #

    def generate(self, fault: Fault) -> PodemResult:
        """Find a test for ``fault``, prove it redundant, or abort."""
        _check_fault(self.aig, fault)
        if fault.node not in self._cone_set:
            # Fault outside every target cone can never be observed.
            return PodemResult(PodemVerdict.REDUNDANT)
        self.stats.incr("podem_runs")
        assignment: dict[int, bool] = {}
        # Decision stack: (input node, value, flipped already?).
        decisions: list[tuple[int, bool, bool]] = []
        backtracks = 0
        values = self._simulate(fault, assignment)
        while True:
            if self._fault_detected(values):
                self.stats.incr("tests_found")
                return PodemResult(
                    PodemVerdict.TEST_FOUND, self._complete(assignment)
                )
            objective = self._objective(fault, values)
            if objective is not None and values[objective[0]].good is None:
                node, value = self._backtrace(*objective, values)
                assignment[node] = value
                decisions.append((node, value, False))
                self.stats.incr("decisions")
            else:
                # Dead end: activation contradicted or D-frontier empty.
                flipped = False
                while decisions:
                    node, value, tried = decisions.pop()
                    del assignment[node]
                    if not tried:
                        backtracks += 1
                        self.stats.incr("backtracks")
                        if backtracks > self.backtrack_limit:
                            self.stats.incr("aborts")
                            return PodemResult(PodemVerdict.ABORTED)
                        assignment[node] = not value
                        decisions.append((node, not value, True))
                        flipped = True
                        break
                if not flipped:
                    self.stats.incr("redundant_found")
                    return PodemResult(PodemVerdict.REDUNDANT)
            values = self._simulate(fault, assignment)

    def _complete(self, assignment: dict[int, bool]) -> dict[int, bool]:
        """Fill don't-care inputs with 0 so the pattern is total."""
        return {
            node: assignment.get(node, False) for node in self._inputs
        }
