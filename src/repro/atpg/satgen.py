"""SAT-based test generation and untestability proofs.

A test for fault ``F`` exists iff the *miter* between the good roots and
the fault-injected roots is satisfiable.  This is the same machinery the
merge phase uses for equivalence checks — the paper's observation that the
two problems coincide, run in the other direction: here UNSAT means
*redundant fault* instead of *merge point*.

Checks share one incremental CDCL session per generator, mirroring the
factorized ZChaff workflow: the good cone is encoded once; each fault adds
only its injected cone and a selector-guarded difference constraint.
"""

from __future__ import annotations

from typing import Sequence

from repro.aig.cnf import CnfMapper
from repro.aig.graph import Aig
from repro.atpg.faults import Fault
from repro.atpg.inject import inject_fault
from repro.sat.solver import Solver, SolveResult
from repro.util.stats import StatsBag


class SatTestGenerator:
    """Incremental SAT session generating tests for many faults."""

    def __init__(
        self,
        aig: Aig,
        roots: Sequence[int],
        conflict_budget: int | None = None,
    ) -> None:
        self.aig = aig
        self.roots = list(roots)
        self.conflict_budget = conflict_budget
        self.mapper = CnfMapper(aig, Solver())
        self.stats = StatsBag()

    def generate(self, fault: Fault) -> tuple[bool | None, dict[int, bool] | None]:
        """(testable?, pattern) — ``(False, None)`` proves redundancy.

        ``(None, None)`` means the conflict budget ran out.
        """
        self.stats.incr("sat_atpg_calls")
        faulty_roots = inject_fault(self.aig, self.roots, fault)
        solver = self.mapper.solver
        selector = solver.new_var()
        # selector -> (some root differs).  The difference disjunction
        # needs one auxiliary literal per root pair: d_i <-> g_i XOR f_i.
        difference_lits: list[int] = []
        for good, faulty in zip(self.roots, faulty_roots):
            if good == faulty:
                continue  # fault cannot influence this root
            lit_g = self.mapper.lit_for(good)
            lit_f = self.mapper.lit_for(faulty)
            d = solver.new_var()
            solver.add_clause([-d, lit_g, lit_f])
            solver.add_clause([-d, -lit_g, -lit_f])
            solver.add_clause([d, -lit_g, lit_f])
            solver.add_clause([d, lit_g, -lit_f])
            difference_lits.append(d)
        if not difference_lits:
            self.stats.incr("redundant_structural")
            return False, None
        solver.add_clause([-selector] + difference_lits)
        result = solver.solve(
            [selector], conflict_budget=self.conflict_budget
        )
        solver.add_clause([-selector])  # retire this fault's constraint
        if result is SolveResult.SAT:
            self.stats.incr("tests_found")
            pattern = self.mapper.model_inputs()
            return True, self._complete(pattern)
        if result is SolveResult.UNSAT:
            self.stats.incr("redundant_found")
            return False, None
        self.stats.incr("aborted")
        return None, None

    def _complete(self, pattern: dict[int, bool]) -> dict[int, bool]:
        """Total pattern over the cone inputs (don't-cares default 0)."""
        inputs = {
            node for node in self.aig.cone(self.roots)
            if self.aig.is_input(node)
        }
        return {node: pattern.get(node, False) for node in inputs}


def generate_test_sat(
    aig: Aig,
    roots: Sequence[int],
    fault: Fault,
    conflict_budget: int | None = None,
) -> tuple[bool | None, dict[int, bool] | None]:
    """One-shot SAT ATPG for a single fault."""
    generator = SatTestGenerator(aig, roots, conflict_budget)
    return generator.generate(fault)
