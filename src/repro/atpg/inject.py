"""Fault injection by cone rebuilding.

The faulty circuit is expressed inside the same AIG manager: the cone of
the targets is rebuilt with the faulty gate's behaviour substituted.  The
good and faulty circuits then share all logic outside the fault's output
cone — exactly the "product machine" construction the paper alludes to for
its comparison-gate view of equivalence checking.
"""

from __future__ import annotations

from typing import Sequence

from repro.aig.graph import FALSE, TRUE, Aig
from repro.atpg.faults import OUTPUT, Fault, _check_fault


def _constant(value: bool) -> int:
    return TRUE if value else FALSE


def inject_fault(
    aig: Aig, roots: Sequence[int], fault: Fault
) -> list[int]:
    """Rebuild ``roots`` with ``fault`` in effect; returns faulty edges.

    Output faults tie the node's value to the stuck constant; pin faults
    replace one consumed fanin value.  The rebuilt edges live in the same
    manager, so a miter between good and faulty roots is a few extra XOR
    gates.
    """
    _check_fault(aig, fault)
    if fault.pin == OUTPUT:
        return [
            aig.rebuild(root, {fault.node: _constant(fault.stuck_at)})
            for root in roots
        ]
    # Pin fault: rebuild the faulty gate by hand, then substitute it.
    f0, f1 = aig.fanins(fault.node)
    if fault.pin == 0:
        faulty_gate = aig.and_(_constant(fault.stuck_at), f1)
    else:
        faulty_gate = aig.and_(f0, _constant(fault.stuck_at))
    return [
        aig.rebuild(root, {fault.node: faulty_gate}) for root in roots
    ]


def fault_free_value(aig: Aig, fault: Fault) -> int:
    """The edge carrying the faulty wire's *good* value.

    For output faults that is the node itself; for pin faults it is the
    consumed fanin edge (complement applied).
    """
    if fault.pin == OUTPUT:
        return 2 * fault.node
    f0, f1 = aig.fanins(fault.node)
    return f0 if fault.pin == 0 else f1
