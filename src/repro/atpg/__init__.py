"""Stuck-at-fault testing over AIG cones.

The paper closes its merge-phase discussion with: "the procedure is not far
from testing stuck-at-faults on comparison gates over the product machine of
the combined cofactors.  Anyway, as our main goal is finding merge points,
we are more interested in finding redundancies, than good test patterns for
faults."  This package builds that connection out in full:

* a single stuck-at fault model over AIG nodes and AND-gate pins with
  classic equivalence/dominance collapsing (:mod:`repro.atpg.faults`);
* fault injection by cone rebuilding (:mod:`repro.atpg.inject`);
* bit-parallel fault simulation with fault dropping
  (:mod:`repro.atpg.fsim`);
* PODEM test generation with five-valued composite simulation
  (:mod:`repro.atpg.podem`);
* SAT-based test generation and untestability proofs
  (:mod:`repro.atpg.satgen`);
* redundancy removal — the synthesis transformation the paper actually
  wants from the fault view (:mod:`repro.atpg.redundancy`);
* the merge bridge itself: equivalence checking as a test for a stuck-at
  fault on the comparison gate (:mod:`repro.atpg.equivalence`).
"""

from repro.atpg.faults import (
    OUTPUT,
    Fault,
    collapse_faults,
    full_fault_list,
)
from repro.atpg.inject import inject_fault
from repro.atpg.fsim import FaultSimulator, fault_coverage
from repro.atpg.podem import PodemGenerator, PodemResult
from repro.atpg.satgen import SatTestGenerator, generate_test_sat
from repro.atpg.redundancy import remove_redundancies, find_redundant_faults
from repro.atpg.equivalence import check_equal_via_atpg

__all__ = [
    "OUTPUT",
    "Fault",
    "FaultSimulator",
    "PodemGenerator",
    "PodemResult",
    "SatTestGenerator",
    "check_equal_via_atpg",
    "collapse_faults",
    "fault_coverage",
    "find_redundant_faults",
    "full_fault_list",
    "generate_test_sat",
    "inject_fault",
    "remove_redundancies",
]
