"""Redundancy removal: the synthesis transformation behind the fault view.

An untestable stuck-at fault means the circuit's function does not change
when the faulty wire is tied to its stuck value — so the tie is a valid,
size-reducing rewrite.  This is precisely why the paper cares about the
ATPG connection: "as our main goal is finding merge points, we are more
interested in finding redundancies, than good test patterns for faults."

``remove_redundancies`` iterates identify-and-tie rounds until no
redundant fault remains (or the round limit is hit): tying one wire can
expose new redundancies elsewhere, which is why a single pass is not
enough — the classic redundancy-removal fixpoint.
"""

from __future__ import annotations

from typing import Sequence

from repro.aig.graph import Aig
from repro.aig.analysis import cone_size_many
from repro.atpg.faults import Fault, collapse_faults, full_fault_list
from repro.atpg.inject import inject_fault
from repro.atpg.satgen import SatTestGenerator
from repro.util.stats import StatsBag


def find_redundant_faults(
    aig: Aig,
    roots: Sequence[int],
    conflict_budget: int | None = 20_000,
    faults: Sequence[Fault] | None = None,
) -> list[Fault]:
    """All provably untestable faults of the cones of ``roots``.

    Faults whose check exhausts the budget are *not* reported (they might
    be testable), keeping the transformation sound.
    """
    if faults is None:
        faults = collapse_faults(aig, full_fault_list(aig, roots))
    generator = SatTestGenerator(aig, roots, conflict_budget)
    redundant: list[Fault] = []
    for fault in faults:
        testable, _ = generator.generate(fault)
        if testable is False:
            redundant.append(fault)
    return redundant


def remove_redundancies(
    aig: Aig,
    roots: Sequence[int],
    conflict_budget: int | None = 20_000,
    max_rounds: int = 4,
) -> tuple[list[int], StatsBag]:
    """Tie every redundant fault site to its stuck value, to fixpoint.

    Returns ``(new_roots, stats)``; the rewritten edges live in the same
    manager and are functionally equal to the originals.  Stats report the
    ties applied and the node count before/after.
    """
    stats = StatsBag()
    current = list(roots)
    stats.set("size_before", cone_size_many(aig, current))
    for _ in range(max_rounds):
        redundant = find_redundant_faults(aig, current, conflict_budget)
        if not redundant:
            break
        stats.incr("rounds")
        applied_this_round = 0
        for fault in redundant:
            # Re-verify against the *current* roots: earlier ties this
            # round may have removed the site or changed its context.
            candidate = inject_fault(aig, current, fault)
            if candidate == current:
                continue
            generator = SatTestGenerator(aig, current, conflict_budget)
            testable, _ = generator.generate(fault)
            if testable is False:
                current = candidate
                applied_this_round += 1
                stats.incr("ties_applied")
        if applied_this_round == 0:
            break
    stats.set("size_after", cone_size_many(aig, current))
    return current, stats
