"""Durable task queue with worker leases on the service store.

Lifecycle of a job::

    queued --claim--> running --complete--> done
      |                  |  \\--fail------> failed
      |                  \\--lease expiry--> queued (attempts < bound)
      |                                  \\-> failed (attempts >= bound)
      \\--cancel--> cancelled

* **Ordering** — higher ``priority`` first, FIFO (``job_id``) within a
  priority.
* **Leases** — a claim stamps the worker id and a lease deadline; the
  worker renews it by heartbeat while it runs.  A worker that dies
  (crash, SIGKILL, power loss) simply stops renewing: any other party
  calling :meth:`TaskQueue.requeue_expired` puts the job back in the
  queue.  Attempts are counted at claim time; a job whose lease expires
  after ``max_attempts`` claims is FAILED with a reason instead of
  looping forever.
* **Exactly-once completion** — ``complete``/``fail`` only apply while
  the caller still holds the lease (``state='running' AND worker=?``),
  so a worker that lost its lease to an expiry-requeue cannot overwrite
  the retry's verdict: at most one completion wins.
* **Backpressure** — ``submit`` rejects once ``max_pending`` jobs are
  queued, raising :class:`~repro.errors.QueueFullError` with a
  ``retry_after`` hint.
* **Cancellation** — ``cancel`` flips a flag the worker polls between
  engine races; a still-queued job is cancelled immediately.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass

from repro.errors import ModelCheckingError, QueueFullError, ServiceError
from repro.obs import metrics as _met
from repro.svc.store import Store


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One row of the job table, as plain data."""

    job_id: int
    namespace: str
    name: str | None
    netlist_text: str
    fmt: str
    method: str
    max_depth: int
    timeout: float | None
    priority: int
    state: JobState
    attempts: int
    max_attempts: int
    worker: str | None
    lease_expires: float | None
    cancel_requested: bool
    reason: str | None
    result: dict | None
    submitted_at: float
    started_at: float | None
    finished_at: float | None
    trace_id: str | None = None
    verdict: str | None = None

    @classmethod
    def from_row(cls, row) -> "Job":
        return cls(
            job_id=row["job_id"],
            namespace=row["namespace"],
            name=row["name"],
            netlist_text=row["netlist"],
            fmt=row["fmt"],
            method=row["method"],
            max_depth=row["max_depth"],
            timeout=row["timeout"],
            priority=row["priority"],
            state=JobState(row["state"]),
            attempts=row["attempts"],
            max_attempts=row["max_attempts"],
            worker=row["worker"],
            lease_expires=row["lease_expires"],
            cancel_requested=bool(row["cancel_requested"]),
            reason=row["reason"],
            result=(
                json.loads(row["result"]) if row["result"] is not None else None
            ),
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            trace_id=row["trace_id"],
            verdict=row["verdict"],
        )

    def to_dict(self) -> dict:
        """JSON-shaped status record (the ``/jobs`` wire format)."""
        return {
            "job_id": self.job_id,
            "namespace": self.namespace,
            "name": self.name,
            "method": self.method,
            "max_depth": self.max_depth,
            "timeout": self.timeout,
            "priority": self.priority,
            "state": self.state.value,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "worker": self.worker,
            "cancel_requested": self.cancel_requested,
            "reason": self.reason,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "trace_id": self.trace_id,
            "verdict": self.verdict
            or (self.result.get("status") if self.result is not None else None),
        }


_JOB_COLUMNS = "*"


class TaskQueue:
    """The queue facade over a :class:`~repro.svc.store.Store`."""

    def __init__(
        self,
        store: Store,
        *,
        max_pending: int = 1024,
        lease_seconds: float = 30.0,
        max_attempts: int = 3,
        retry_after: float = 2.0,
    ) -> None:
        self.store = store
        self.max_pending = max_pending
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self.retry_after = retry_after

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        netlist_text: str,
        *,
        fmt: str = "net",
        method: str = "portfolio",
        max_depth: int = 100,
        timeout: float | None = None,
        priority: int = 0,
        namespace: str = "",
        name: str | None = None,
        max_attempts: int | None = None,
    ) -> int:
        """Enqueue one submission; returns its job id.

        The engine name is validated against the registry up front — a
        typo fails the submit, not a worker an hour later.
        """
        from repro.api.registry import get_engine

        get_engine(method)  # raises ModelCheckingError on unknown names
        if fmt not in ("net", "bench", "blif"):
            raise ServiceError(
                f"unknown netlist format {fmt!r}; use net/bench/blif"
            )
        with self.store.transaction() as conn:
            depth = conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE state=?",
                (JobState.QUEUED.value,),
            ).fetchone()[0]
            if depth >= self.max_pending:
                raise QueueFullError(depth, self.max_pending, self.retry_after)
            cursor = conn.execute(
                """
                INSERT INTO jobs (namespace, name, netlist, fmt, method,
                                  max_depth, timeout, priority, state,
                                  max_attempts, submitted_at)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                (
                    namespace,
                    name,
                    netlist_text,
                    fmt,
                    method,
                    int(max_depth),
                    timeout,
                    int(priority),
                    JobState.QUEUED.value,
                    max_attempts
                    if max_attempts is not None
                    else self.max_attempts,
                    self.store.now(),
                ),
            )
            job_id = cursor.lastrowid
        if _met.ENABLED:
            _met.JOBS_SUBMITTED.labels(method).inc()
        self.record_event(job_id, "submitted", {"method": method})
        return job_id

    # ------------------------------------------------------------------ #
    # Claiming and leases
    # ------------------------------------------------------------------ #

    def claim(
        self, worker_id: str, lease_seconds: float | None = None
    ) -> Job | None:
        """Atomically claim the best queued job for ``worker_id``.

        Best = highest priority, then FIFO.  Returns None when the
        queue is empty.  The attempt counter increments here: an
        attempt is a claim, whether or not it survives.
        """
        lease = lease_seconds if lease_seconds is not None else (
            self.lease_seconds
        )
        now = self.store.now()
        with self.store.transaction() as conn:
            row = conn.execute(
                """
                SELECT job_id FROM jobs WHERE state=?
                ORDER BY priority DESC, job_id ASC LIMIT 1
                """,
                (JobState.QUEUED.value,),
            ).fetchone()
            if row is None:
                return None
            job_id = row["job_id"]
            conn.execute(
                """
                UPDATE jobs
                SET state=?, worker=?, lease_expires=?,
                    attempts=attempts + 1, started_at=?
                WHERE job_id=? AND state=?
                """,
                (
                    JobState.RUNNING.value,
                    worker_id,
                    now + lease,
                    now,
                    job_id,
                    JobState.QUEUED.value,
                ),
            )
            job = Job.from_row(
                conn.execute(
                    "SELECT * FROM jobs WHERE job_id=?", (job_id,)
                ).fetchone()
            )
        if _met.ENABLED:
            _met.JOBS_CLAIMED.labels(job.method).inc()
            _met.QUEUE_WAIT_SECONDS.labels(job.method).observe(
                max(0.0, now - job.submitted_at)
            )
        self.record_event(job_id, "claimed", {"worker": worker_id,
                                              "attempt": job.attempts})
        return job

    def heartbeat(
        self,
        job_id: int,
        worker_id: str,
        lease_seconds: float | None = None,
    ) -> bool:
        """Renew the lease; False means it was lost (expired + requeued)."""
        lease = lease_seconds if lease_seconds is not None else (
            self.lease_seconds
        )
        with self.store.transaction() as conn:
            cursor = conn.execute(
                """
                UPDATE jobs SET lease_expires=?
                WHERE job_id=? AND worker=? AND state=?
                """,
                (
                    self.store.now() + lease,
                    job_id,
                    worker_id,
                    JobState.RUNNING.value,
                ),
            )
            return cursor.rowcount == 1

    def requeue_expired(self, now: float | None = None) -> list[tuple[int, str]]:
        """Requeue running jobs whose lease has lapsed.

        Anyone may call this — workers do, between claims, so a fleet
        is self-healing without a dedicated reaper.  Returns
        ``(job_id, "requeued"|"failed")`` pairs for what changed; a job
        out of attempts fails with an explanatory reason.
        """
        now = self.store.now() if now is None else now
        changed: list[tuple[int, str]] = []
        with self.store.transaction() as conn:
            rows = conn.execute(
                """
                SELECT job_id, attempts, max_attempts, worker FROM jobs
                WHERE state=? AND lease_expires IS NOT NULL
                  AND lease_expires < ?
                """,
                (JobState.RUNNING.value, now),
            ).fetchall()
            for row in rows:
                if row["attempts"] >= row["max_attempts"]:
                    conn.execute(
                        """
                        UPDATE jobs SET state=?, worker=NULL,
                            lease_expires=NULL, finished_at=?, reason=?
                        WHERE job_id=? AND state=?
                        """,
                        (
                            JobState.FAILED.value,
                            now,
                            f"lease expired after {row['attempts']} "
                            f"attempts (last worker {row['worker']})",
                            row["job_id"],
                            JobState.RUNNING.value,
                        ),
                    )
                    changed.append((row["job_id"], "failed"))
                    if _met.ENABLED:
                        _met.JOBS_LEASE_FAILED.inc()
                else:
                    conn.execute(
                        """
                        UPDATE jobs SET state=?, worker=NULL,
                            lease_expires=NULL
                        WHERE job_id=? AND state=?
                        """,
                        (
                            JobState.QUEUED.value,
                            row["job_id"],
                            JobState.RUNNING.value,
                        ),
                    )
                    changed.append((row["job_id"], "requeued"))
                    if _met.ENABLED:
                        _met.JOBS_REQUEUED.inc()
        for job_id, outcome in changed:
            self.record_event(job_id, outcome, {"at": now})
        return changed

    # ------------------------------------------------------------------ #
    # Completion
    # ------------------------------------------------------------------ #

    def complete(
        self,
        job_id: int,
        worker_id: str,
        result_payload: dict,
        *,
        state: JobState = JobState.DONE,
        reason: str | None = None,
        trace_id: str | None = None,
    ) -> bool:
        """Finish a job the caller still holds; False if the lease was
        lost (the verdict is discarded — the retry owns the job now).

        ``trace_id`` references the worker's uploaded obs trace in the
        store, served back at ``GET /jobs/<id>/trace``.
        """
        if not state.terminal:
            raise ServiceError(f"completion state {state} is not terminal")
        now = self.store.now()
        verdict = result_payload.get("status")
        with self.store.transaction() as conn:
            cursor = conn.execute(
                """
                UPDATE jobs SET state=?, result=?, reason=?, verdict=?,
                    trace_id=?, lease_expires=NULL, finished_at=?
                WHERE job_id=? AND worker=? AND state=?
                """,
                (
                    state.value,
                    json.dumps(result_payload),
                    reason,
                    verdict,
                    trace_id,
                    now,
                    job_id,
                    worker_id,
                    JobState.RUNNING.value,
                ),
            )
            won = cursor.rowcount == 1
            if won and _met.ENABLED:
                row = conn.execute(
                    "SELECT method, started_at FROM jobs WHERE job_id=?",
                    (job_id,),
                ).fetchone()
        if won:
            if _met.ENABLED:
                _met.JOBS_COMPLETED.labels(row["method"], state.value).inc()
                if row["started_at"] is not None:
                    _met.JOB_RUN_SECONDS.labels(row["method"]).observe(
                        max(0.0, now - row["started_at"])
                    )
            self.record_event(
                job_id,
                "job_finished",
                {"state": state.value, "verdict": verdict,
                 "trace_id": trace_id},
            )
        return won

    def fail(
        self,
        job_id: int,
        worker_id: str,
        reason: str,
        *,
        trace_id: str | None = None,
    ) -> bool:
        """Mark a held job FAILED with a reason (engine error, bad input)."""
        with self.store.transaction() as conn:
            cursor = conn.execute(
                """
                UPDATE jobs SET state=?, reason=?, trace_id=?,
                    lease_expires=NULL, finished_at=?
                WHERE job_id=? AND worker=? AND state=?
                """,
                (
                    JobState.FAILED.value,
                    reason,
                    trace_id,
                    self.store.now(),
                    job_id,
                    worker_id,
                    JobState.RUNNING.value,
                ),
            )
            won = cursor.rowcount == 1
            if won and _met.ENABLED:
                row = conn.execute(
                    "SELECT method FROM jobs WHERE job_id=?", (job_id,)
                ).fetchone()
        if won:
            if _met.ENABLED:
                _met.JOBS_COMPLETED.labels(
                    row["method"], JobState.FAILED.value
                ).inc()
            self.record_event(job_id, "job_finished",
                              {"state": "failed", "reason": reason})
        return won

    def cancel(self, job_id: int) -> bool:
        """Request cancellation.  A queued job dies immediately; a
        running one is flagged for its worker to notice between engine
        races.  True iff the job exists and was not already terminal."""
        with self.store.transaction() as conn:
            row = conn.execute(
                "SELECT state, method FROM jobs WHERE job_id=?", (job_id,)
            ).fetchone()
            if row is None or JobState(row["state"]).terminal:
                return False
            conn.execute(
                "UPDATE jobs SET cancel_requested=1 WHERE job_id=?",
                (job_id,),
            )
            if row["state"] == JobState.QUEUED.value:
                conn.execute(
                    """
                    UPDATE jobs SET state=?, reason=?, finished_at=?
                    WHERE job_id=? AND state=?
                    """,
                    (
                        JobState.CANCELLED.value,
                        "cancelled before start",
                        self.store.now(),
                        job_id,
                        JobState.QUEUED.value,
                    ),
                )
        self.record_event(job_id, "cancel_requested", None)
        if row["state"] == JobState.QUEUED.value:
            # A queued job dies right here — give streaming clients the
            # same terminal marker a worker completion would produce.
            if _met.ENABLED:
                _met.JOBS_COMPLETED.labels(
                    row["method"], JobState.CANCELLED.value
                ).inc()
            self.record_event(
                job_id,
                "job_finished",
                {"state": JobState.CANCELLED.value,
                 "reason": "cancelled before start"},
            )
        return True

    def cancel_requested(self, job_id: int) -> bool:
        row = self.store._connection().execute(
            "SELECT cancel_requested FROM jobs WHERE job_id=?", (job_id,)
        ).fetchone()
        return bool(row["cancel_requested"]) if row is not None else False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def job(self, job_id: int) -> Job | None:
        row = self.store._connection().execute(
            "SELECT * FROM jobs WHERE job_id=?", (job_id,)
        ).fetchone()
        return Job.from_row(row) if row is not None else None

    def jobs(
        self,
        *,
        namespace: str | None = None,
        state: JobState | str | None = None,
    ) -> list[Job]:
        sql = "SELECT * FROM jobs"
        clauses, args = [], []
        if namespace is not None:
            clauses.append("namespace=?")
            args.append(namespace)
        if state is not None:
            state = JobState(state) if isinstance(state, str) else state
            clauses.append("state=?")
            args.append(state.value)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY job_id ASC"
        rows = self.store._connection().execute(sql, args).fetchall()
        return [Job.from_row(row) for row in rows]

    def depth(self) -> int:
        """Queued (claimable) jobs right now."""
        return self.store._connection().execute(
            "SELECT COUNT(*) FROM jobs WHERE state=?",
            (JobState.QUEUED.value,),
        ).fetchone()[0]

    def active_leases(self) -> int:
        return self.store._connection().execute(
            "SELECT COUNT(*) FROM jobs WHERE state=?",
            (JobState.RUNNING.value,),
        ).fetchone()[0]

    def counts(self) -> dict[str, int]:
        rows = self.store._connection().execute(
            "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
        ).fetchall()
        counts = {state.value: 0 for state in JobState}
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    def method_verdicts(self) -> dict[tuple[str, str], int]:
        """Terminal jobs grouped by ``(method, verdict)`` — the
        per-engine win-count table behind ``repro_jobs_won_total``."""
        rows = self.store._connection().execute(
            """
            SELECT method, COALESCE(verdict, state) AS verdict,
                   COUNT(*) AS n
            FROM jobs WHERE state IN (?, ?, ?)
            GROUP BY method, COALESCE(verdict, state)
            """,
            (
                JobState.DONE.value,
                JobState.FAILED.value,
                JobState.CANCELLED.value,
            ),
        ).fetchall()
        return {(row["method"], row["verdict"]): row["n"] for row in rows}

    def finished_latencies(
        self, limit: int = 512
    ) -> list[tuple[str, float, float]]:
        """``(method, queue_wait, run_seconds)`` of the most recently
        finished jobs — raw material for scrape-time latency
        histograms that cover the whole fleet, including jobs run by
        worker *processes* whose in-memory registries die with them."""
        rows = self.store._connection().execute(
            """
            SELECT method, submitted_at, started_at, finished_at
            FROM jobs
            WHERE finished_at IS NOT NULL AND started_at IS NOT NULL
            ORDER BY finished_at DESC LIMIT ?
            """,
            (int(limit),),
        ).fetchall()
        return [
            (
                row["method"],
                max(0.0, row["started_at"] - row["submitted_at"]),
                max(0.0, row["finished_at"] - row["started_at"]),
            )
            for row in rows
        ]

    # ------------------------------------------------------------------ #
    # Events
    # ------------------------------------------------------------------ #

    def record_event(
        self, job_id: int, kind: str, payload: dict | None
    ) -> None:
        """Append one event to the job's stream (monotonic ``seq``)."""
        with self.store.transaction() as conn:
            seq = conn.execute(
                "SELECT COALESCE(MAX(seq), 0) + 1 FROM job_events "
                "WHERE job_id=?",
                (job_id,),
            ).fetchone()[0]
            conn.execute(
                "INSERT INTO job_events (job_id, seq, t, kind, payload) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    job_id,
                    seq,
                    self.store.now(),
                    kind,
                    json.dumps(payload) if payload is not None else None,
                ),
            )
        if _met.ENABLED:
            _met.JOB_EVENTS.labels(kind).inc()

    def events(self, job_id: int) -> list[dict]:
        return self.events_after(job_id, 0)

    def events_after(self, job_id: int, after_seq: int) -> list[dict]:
        """Events with ``seq > after_seq``, in order — the incremental
        read the SSE streamer (and ``Last-Event-ID`` resume) runs."""
        rows = self.store._connection().execute(
            "SELECT seq, t, kind, payload FROM job_events "
            "WHERE job_id=? AND seq>? ORDER BY seq ASC",
            (job_id, int(after_seq)),
        ).fetchall()
        return [
            {
                "seq": row["seq"],
                "t": row["t"],
                "kind": row["kind"],
                "payload": (
                    json.loads(row["payload"])
                    if row["payload"] is not None
                    else None
                ),
            }
            for row in rows
        ]


__all__ = [
    "Job",
    "JobState",
    "ModelCheckingError",
    "QueueFullError",
    "TaskQueue",
]
