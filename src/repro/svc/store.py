"""SQLite-backed keyed store for the verification service.

One file holds everything a long-running service must not lose:

* ``results`` — verification verdicts keyed by
  ``(namespace, structural_hash, method, max_depth)``.  The
  ``namespace`` column is the tenant-isolation axis: two tenants
  submitting the same circuit read and write disjoint rows.  Payloads
  are the :meth:`repro.mc.result.VerificationResult.to_dict` record
  (positional trace encoding), with the certificate split out;
* ``certificates`` — PROVED-verdict certificate blobs stored
  content-addressed (the id is the SHA-256 of the canonical JSON), so
  identical invariants from different runs share one row and a result
  row only carries the reference;
* ``jobs`` / ``job_events`` — the durable task queue
  (:mod:`repro.svc.queue`) and the per-job progress/observability
  stream;
* ``traces`` — merged :mod:`repro.obs` span/counter records of a
  finished job, stored content-addressed (SHA-256 of the canonical
  JSON document) and referenced from the job row, served by the
  server as Chrome/Perfetto ``trace_event`` JSON.

Concurrency: the database runs in WAL mode with a busy timeout, so any
number of reader processes coexist with one writer at a time; writers
(claim, heartbeat, complete) use short ``BEGIN IMMEDIATE`` transactions.
Connections are per-thread (``sqlite3`` objects are not thread-safe),
handed out by a ``threading.local`` factory.

Schema versioning: every structural change appends a migration to
:data:`MIGRATIONS`; :func:`open_store` applies the pending suffix under
an exclusive transaction and stamps ``PRAGMA user_version``.  Opening a
database written by an older code level upgrades it in place; opening
one written by a *newer* level refuses loudly instead of corrupting it.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import pathlib
import sqlite3
import threading
import time

from repro.errors import ServiceError
from repro.obs import metrics as _met

# Each entry is one schema level: applied in order, each inside its own
# transaction, with user_version stamped afterwards.  Never edit an
# existing entry — append a new one.
MIGRATIONS: tuple[tuple[str, ...], ...] = (
    # v1 — results + content-addressed certificates + the job table.
    (
        """
        CREATE TABLE results (
            namespace  TEXT    NOT NULL DEFAULT '',
            hash       TEXT    NOT NULL,
            method     TEXT    NOT NULL,
            max_depth  INTEGER NOT NULL,
            budget     REAL,
            status     TEXT    NOT NULL,
            payload    TEXT    NOT NULL,
            cert_id    TEXT,
            created_at REAL    NOT NULL,
            PRIMARY KEY (namespace, hash, method, max_depth)
        )
        """,
        """
        CREATE TABLE certificates (
            cert_id    TEXT PRIMARY KEY,
            kind       TEXT NOT NULL,
            payload    TEXT NOT NULL,
            created_at REAL NOT NULL
        )
        """,
        """
        CREATE TABLE jobs (
            job_id           INTEGER PRIMARY KEY AUTOINCREMENT,
            namespace        TEXT    NOT NULL DEFAULT '',
            name             TEXT,
            netlist          TEXT    NOT NULL,
            fmt              TEXT    NOT NULL DEFAULT 'net',
            method           TEXT    NOT NULL,
            max_depth        INTEGER NOT NULL DEFAULT 100,
            timeout          REAL,
            priority         INTEGER NOT NULL DEFAULT 0,
            state            TEXT    NOT NULL DEFAULT 'queued',
            attempts         INTEGER NOT NULL DEFAULT 0,
            max_attempts     INTEGER NOT NULL DEFAULT 3,
            worker           TEXT,
            lease_expires    REAL,
            cancel_requested INTEGER NOT NULL DEFAULT 0,
            reason           TEXT,
            result           TEXT,
            submitted_at     REAL    NOT NULL,
            started_at       REAL,
            finished_at      REAL
        )
        """,
    ),
    # v2 — the per-job event stream (progress + obs records) and the
    # dequeue index the claim query scans.
    (
        """
        CREATE TABLE job_events (
            job_id  INTEGER NOT NULL,
            seq     INTEGER NOT NULL,
            t       REAL    NOT NULL,
            kind    TEXT    NOT NULL,
            payload TEXT,
            PRIMARY KEY (job_id, seq)
        )
        """,
        """
        CREATE INDEX idx_jobs_claim
            ON jobs (state, priority DESC, job_id ASC)
        """,
    ),
    # v3 — persisted per-job obs traces (content-addressed, like
    # certificates) plus the trace reference and terminal verdict on
    # the job row, so win-count metrics are pure SQL.
    (
        """
        CREATE TABLE traces (
            trace_id   TEXT PRIMARY KEY,
            payload    TEXT NOT NULL,
            created_at REAL NOT NULL
        )
        """,
        "ALTER TABLE jobs ADD COLUMN trace_id TEXT",
        "ALTER TABLE jobs ADD COLUMN verdict TEXT",
    ),
)

SCHEMA_VERSION = len(MIGRATIONS)

# Suffixes the ResultCache path-dispatch treats as "this is a store".
STORE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def certificate_id(payload: dict) -> str:
    """Content address of a certificate payload (canonical-JSON SHA-256)."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class Store:
    """One service database: results, certificates, jobs, events.

    ``path`` is a filesystem path (created on first open).  All methods
    are safe to call from any thread and from multiple processes
    sharing the file; each thread gets its own connection.
    """

    def __init__(
        self, path: str | pathlib.Path, busy_timeout: float = 5.0
    ) -> None:
        self.path = pathlib.Path(path)
        self.busy_timeout = busy_timeout
        self._local = threading.local()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._migrate()

    # ------------------------------------------------------------------ #
    # Connections and schema
    # ------------------------------------------------------------------ #

    def _connection(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(
                str(self.path),
                timeout=self.busy_timeout,
                isolation_level=None,  # explicit transactions only
            )
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(
                f"PRAGMA busy_timeout={int(self.busy_timeout * 1000)}"
            )
            conn.execute("PRAGMA synchronous=NORMAL")
            self._local.conn = conn
        return conn

    @contextlib.contextmanager
    def transaction(self):
        """A short write transaction (``BEGIN IMMEDIATE`` … commit).

        IMMEDIATE takes the write lock up front, so a claim/complete
        either sees a consistent snapshot it may write to, or blocks in
        the busy handler — never a mid-transaction upgrade deadlock.
        """
        conn = self._connection()
        metered = _met.ENABLED
        if metered:
            t0 = time.perf_counter()
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield conn
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")
        if metered:
            _met.STORE_TXN_SECONDS.observe(time.perf_counter() - t0)

    def _migrate(self) -> None:
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            if version > SCHEMA_VERSION:
                raise ServiceError(
                    f"store {self.path} has schema v{version}, newer than "
                    f"this code's v{SCHEMA_VERSION}; refusing to touch it"
                )
            for level in range(version, SCHEMA_VERSION):
                for statement in MIGRATIONS[level]:
                    conn.execute(statement)
            # PRAGMA cannot be parameterized; SCHEMA_VERSION is a literal.
            conn.execute(f"PRAGMA user_version={SCHEMA_VERSION}")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    @property
    def schema_version(self) -> int:
        return self._connection().execute("PRAGMA user_version").fetchone()[0]

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def now(self) -> float:
        return time.time()

    # ------------------------------------------------------------------ #
    # Results (the keyed result store behind ResultCache)
    # ------------------------------------------------------------------ #

    def put_result(
        self,
        namespace: str,
        digest: str,
        method: str,
        max_depth: int,
        record: dict,
    ) -> None:
        """Upsert one result record; the certificate blob (if any) is
        detached and stored content-addressed."""
        payload = dict(record)
        cert_id = None
        certificate = payload.pop("certificate", None)
        if certificate is not None:
            cert_id = self.put_certificate(certificate)
        with self.transaction() as conn:
            conn.execute(
                """
                INSERT INTO results (namespace, hash, method, max_depth,
                                     budget, status, payload, cert_id,
                                     created_at)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)
                ON CONFLICT (namespace, hash, method, max_depth)
                DO UPDATE SET budget=excluded.budget,
                              status=excluded.status,
                              payload=excluded.payload,
                              cert_id=excluded.cert_id,
                              created_at=excluded.created_at
                """,
                (
                    namespace,
                    digest,
                    method,
                    int(max_depth),
                    payload.get("budget"),
                    str(payload.get("status", "")),
                    json.dumps(payload),
                    cert_id,
                    self.now(),
                ),
            )
        if _met.ENABLED:
            _met.RESULTS_STORED.inc()

    def get_result(
        self, namespace: str, digest: str, method: str, max_depth: int
    ) -> dict | None:
        """The stored record for a key, certificate re-attached."""
        row = self._connection().execute(
            """
            SELECT payload, cert_id FROM results
            WHERE namespace=? AND hash=? AND method=? AND max_depth=?
            """,
            (namespace, digest, method, int(max_depth)),
        ).fetchone()
        if row is None:
            return None
        record = json.loads(row["payload"])
        record["certificate"] = (
            self.get_certificate(row["cert_id"])
            if row["cert_id"] is not None
            else None
        )
        return record

    def iter_results(self, namespace: str, limit: int | None = None):
        """Newest ``limit`` records of a namespace, oldest first (so a
        replay into an LRU map leaves the newest at the hot end)."""
        sql = (
            "SELECT payload, cert_id FROM results WHERE namespace=? "
            "ORDER BY created_at DESC"
        )
        args: tuple = (namespace,)
        if limit is not None:
            sql += " LIMIT ?"
            args = (namespace, int(limit))
        rows = self._connection().execute(sql, args).fetchall()
        for row in reversed(rows):
            record = json.loads(row["payload"])
            record["certificate"] = (
                self.get_certificate(row["cert_id"])
                if row["cert_id"] is not None
                else None
            )
            yield record

    def count_results(self, namespace: str | None = None) -> int:
        conn = self._connection()
        if namespace is None:
            return conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        return conn.execute(
            "SELECT COUNT(*) FROM results WHERE namespace=?", (namespace,)
        ).fetchone()[0]

    # ------------------------------------------------------------------ #
    # Certificates (content-addressed)
    # ------------------------------------------------------------------ #

    def put_certificate(self, payload: dict, kind: str = "invariant") -> str:
        cert_id = certificate_id(payload)
        with self.transaction() as conn:
            conn.execute(
                """
                INSERT INTO certificates (cert_id, kind, payload, created_at)
                VALUES (?, ?, ?, ?)
                ON CONFLICT (cert_id) DO NOTHING
                """,
                (cert_id, kind, json.dumps(payload), self.now()),
            )
        if _met.ENABLED:
            _met.CERTIFICATES_STORED.inc()
        return cert_id

    def get_certificate(self, cert_id: str) -> dict | None:
        row = self._connection().execute(
            "SELECT payload FROM certificates WHERE cert_id=?", (cert_id,)
        ).fetchone()
        return json.loads(row["payload"]) if row is not None else None

    def count_certificates(self) -> int:
        return self._connection().execute(
            "SELECT COUNT(*) FROM certificates"
        ).fetchone()[0]

    # ------------------------------------------------------------------ #
    # Traces (content-addressed per-job obs records)
    # ------------------------------------------------------------------ #

    def put_trace(self, records: list[dict], wall_epoch: float) -> str:
        """Store one job's merged obs records; returns the content
        address.  Identical traces (e.g. a deterministic replay) share
        one row, exactly like certificates."""
        doc = {
            "schema": "repro.obs/1",
            "wall_epoch": wall_epoch,
            "records": records,
        }
        canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        trace_id = hashlib.sha256(canonical.encode()).hexdigest()
        with self.transaction() as conn:
            conn.execute(
                """
                INSERT INTO traces (trace_id, payload, created_at)
                VALUES (?, ?, ?)
                ON CONFLICT (trace_id) DO NOTHING
                """,
                (trace_id, canonical, self.now()),
            )
        if _met.ENABLED:
            _met.TRACES_STORED.inc()
        return trace_id

    def get_trace(self, trace_id: str) -> dict | None:
        row = self._connection().execute(
            "SELECT payload FROM traces WHERE trace_id=?", (trace_id,)
        ).fetchone()
        return json.loads(row["payload"]) if row is not None else None

    def count_traces(self) -> int:
        return self._connection().execute(
            "SELECT COUNT(*) FROM traces"
        ).fetchone()[0]


def open_store(path: str | pathlib.Path) -> Store:
    """Open (creating/migrating as needed) the store at ``path``."""
    return Store(path)
