"""The service worker: claim, verify, report, repeat.

A :class:`Worker` drains the durable queue of one store.  Each claimed
job runs through a :class:`repro.api.Session` — so engines keep their
subprocess wall-clock budgets, results land in the store-backed
structural-hash cache (namespaced by tenant), and PROVED certificates
are persisted content-addressed.  While a job runs:

* a heartbeat thread renews the lease; a worker that is SIGKILLed just
  stops renewing, and any surviving worker's next
  :meth:`~repro.svc.queue.TaskQueue.requeue_expired` sweep puts the job
  back in the queue;
* every :class:`~repro.api.session.ProgressEvent` is appended to the
  job's event stream in the store (and, when :mod:`repro.obs` tracing
  is active, the run is additionally wrapped in a ``svc.job`` span with
  ``svc_tick`` queue/lease gauges sampled between claims);
* the session's ``cancel_poll`` reads the job's cancel flag, so a
  wire-level cancel takes effect at the next engine-race boundary.

Workers are deliberately stateless between jobs: every piece of
coordination lives in the store, which is what makes ``N`` worker
*processes* (or hosts, with the store on shared storage) equivalent to
one.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from typing import Callable

from repro.circuits.bench_format import parse_bench
from repro.circuits.blif import parse_blif
from repro.circuits.netlist import Netlist
from repro.circuits.parse import parse_netlist
from repro.obs import metrics as _met
from repro.obs import probes as _obs
from repro.svc.queue import Job, JobState, TaskQueue
from repro.svc.store import Store


def parse_submission(text: str, fmt: str, name: str | None = None) -> Netlist:
    """Decode a submission body (``net``/``bench``/``blif``)."""
    if fmt == "bench":
        return parse_bench(text, name=name or "submission")
    if fmt == "blif":
        return parse_blif(text)
    return parse_netlist(text)


class Worker:
    """One queue-draining loop.

    * ``lease_seconds`` — how long a claim stays valid without a
      heartbeat; crash-recovery latency is bounded by it.
    * ``poll_interval`` — idle sleep between empty claims.
    * ``on_claim`` — optional hook called with the claimed
      :class:`Job` before execution; tests and ops tooling use it to
      inject faults or logging.
    * ``trace_jobs`` — record an :mod:`repro.obs` trace per job and
      upload it content-addressed with the verdict, so the server can
      serve ``GET /jobs/<id>/trace``.
    """

    def __init__(
        self,
        store: Store | str,
        *,
        worker_id: str | None = None,
        lease_seconds: float = 30.0,
        poll_interval: float = 0.2,
        heartbeat_interval: float | None = None,
        max_pending: int = 1024,
        on_claim: Callable[[Job], None] | None = None,
        trace_jobs: bool = False,
    ) -> None:
        self.store = store if isinstance(store, Store) else Store(store)
        self.queue = TaskQueue(
            self.store,
            lease_seconds=lease_seconds,
            max_pending=max_pending,
        )
        self.worker_id = (
            worker_id
            if worker_id is not None
            else f"worker-{os.getpid()}-{threading.get_ident() & 0xFFFF:x}"
        )
        self.lease_seconds = lease_seconds
        self.poll_interval = poll_interval
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else max(0.05, lease_seconds / 3.0)
        )
        self.on_claim = on_claim
        self.trace_jobs = trace_jobs
        self.jobs_completed = 0

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #

    def run(
        self,
        *,
        stop: threading.Event | None = None,
        max_jobs: int | None = None,
        drain: bool = False,
    ) -> int:
        """Claim and run jobs until stopped.

        ``drain=True`` exits once the queue is empty (batch mode);
        otherwise the loop idles on ``poll_interval``.  ``max_jobs``
        bounds the number of jobs executed.  Returns the number of jobs
        this call completed.
        """
        completed = 0
        while stop is None or not stop.is_set():
            if max_jobs is not None and completed >= max_jobs:
                break
            self.queue.requeue_expired()
            if _obs.ENABLED:
                _obs.svc_tick(
                    self.queue.depth(),
                    self.queue.active_leases(),
                    self.jobs_completed,
                )
            if self.run_one():
                completed += 1
                continue
            if drain:
                break
            time.sleep(self.poll_interval)
        return completed

    def run_one(self) -> bool:
        """Claim and execute at most one job; False when queue is empty."""
        job = self.queue.claim(self.worker_id, self.lease_seconds)
        if job is None:
            return False
        if self.on_claim is not None:
            self.on_claim(job)
        lease_lost = threading.Event()
        stop_heartbeat = threading.Event()

        def heartbeat() -> None:
            while not stop_heartbeat.wait(self.heartbeat_interval):
                if not self.queue.heartbeat(
                    job.job_id, self.worker_id, self.lease_seconds
                ):
                    # The lease expired and someone requeued the job:
                    # this run is a zombie.  Stop working — the retry
                    # owns the verdict now.
                    lease_lost.set()
                    return

        beat = threading.Thread(target=heartbeat, daemon=True)
        beat.start()
        try:
            self._execute(job, lease_lost)
        finally:
            stop_heartbeat.set()
            beat.join(timeout=self.heartbeat_interval * 4)
        self.jobs_completed += 1
        return True

    # ------------------------------------------------------------------ #
    # One job
    # ------------------------------------------------------------------ #

    def _execute(self, job: Job, lease_lost: threading.Event) -> None:
        from repro.api.session import Session
        from repro.api.task import VerificationTask
        from repro.portfolio.cache import ResultCache

        try:
            netlist = parse_submission(job.netlist_text, job.fmt, job.name)
        except Exception as exc:  # noqa: BLE001 - bad input, not a crash
            if _met.ENABLED:
                _met.WORKER_JOBS.labels("parse_error").inc()
            self.queue.fail(
                job.job_id,
                self.worker_id,
                f"submission does not parse: {type(exc).__name__}: {exc}",
            )
            return

        # Per-job tracing: reuse an already-active tracer (only *this*
        # job's new records are uploaded), otherwise own one for the
        # duration of the job.
        tracer = _obs.tracer() if self.trace_jobs else None
        owned_tracer = False
        if self.trace_jobs and tracer is None:
            from repro import obs as _obs_pkg

            tracer = _obs_pkg.enable()
            owned_tracer = True
        spans0 = len(tracer.spans) if tracer is not None else 0
        counters0 = len(tracer.counters) if tracer is not None else 0

        def upload_trace() -> str | None:
            if tracer is None:
                return None
            try:
                records = [
                    span.to_record() for span in tracer.spans[spans0:]
                ] + [
                    counter.to_record()
                    for counter in tracer.counters[counters0:]
                ]
                return self.store.put_trace(records, tracer.wall_epoch)
            except Exception:  # noqa: BLE001 - telemetry must not kill jobs
                return None

        def cancel_poll() -> bool:
            return lease_lost.is_set() or self.queue.cancel_requested(
                job.job_id
            )

        def on_progress(event) -> None:
            self.queue.record_event(
                job.job_id,
                event.kind,
                {
                    "engine": event.engine,
                    "elapsed": event.elapsed,
                    "cached": event.cached,
                },
            )

        session = Session(
            cache=ResultCache(self.store, namespace=job.namespace),
            on_progress=on_progress,
            cancel_poll=cancel_poll,
        )
        task = VerificationTask(
            netlist,
            engine=job.method,
            max_depth=job.max_depth,
            timeout=job.timeout,
            label=job.name,
        )
        try:
            try:
                with _obs.span(
                    "svc.job", "svc", job_id=job.job_id, method=job.method
                ):
                    result = session.run(task)
            except Exception as exc:  # noqa: BLE001 - reported, not fatal
                if _met.ENABLED:
                    _met.WORKER_JOBS.labels("engine_error").inc()
                self.queue.fail(
                    job.job_id,
                    self.worker_id,
                    f"engine raised {type(exc).__name__}: {exc}\n"
                    + traceback.format_exc(limit=5),
                    trace_id=upload_trace(),
                )
                return
            if lease_lost.is_set():
                # the retry owns this job; our verdict is void
                if _met.ENABLED:
                    _met.WORKER_JOBS.labels("lease_lost").inc()
                return
            trace_id = upload_trace()
            payload = result.to_dict(netlist)
            if session.cancelled:
                if _met.ENABLED:
                    _met.WORKER_JOBS.labels("cancelled").inc()
                self.queue.complete(
                    job.job_id,
                    self.worker_id,
                    payload,
                    state=JobState.CANCELLED,
                    reason="cancelled by request",
                    trace_id=trace_id,
                )
            else:
                if _met.ENABLED:
                    _met.WORKER_JOBS.labels("done").inc()
                self.queue.complete(
                    job.job_id, self.worker_id, payload, trace_id=trace_id
                )
        finally:
            if owned_tracer:
                from repro import obs as _obs_pkg

                _obs_pkg.disable()


def worker_main(
    store_path: str,
    *,
    worker_id: str | None = None,
    lease_seconds: float = 30.0,
    poll_interval: float = 0.2,
    max_jobs: int | None = None,
    drain: bool = False,
    settle_seconds: float = 0.0,
    trace_jobs: bool = False,
) -> int:
    """Process entry point: build a worker over ``store_path`` and run.

    ``settle_seconds`` pauses after each claim before execution — a
    fault-injection seam for crash-recovery tests (kill the process
    while it provably holds a lease mid-task).
    """
    on_claim = None
    if settle_seconds > 0:

        def on_claim(job: Job) -> None:  # noqa: F811
            time.sleep(settle_seconds)

    worker = Worker(
        store_path,
        worker_id=worker_id,
        lease_seconds=lease_seconds,
        poll_interval=poll_interval,
        on_claim=on_claim,
        trace_jobs=trace_jobs,
    )
    stop = None
    try:
        # Graceful drain on SIGTERM (docker stop, server shutdown): the
        # job in flight finishes and completes; only the loop exits.
        import signal

        stop = threading.Event()
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
    except ValueError:  # not this process's main thread
        stop = None
    return worker.run(stop=stop, max_jobs=max_jobs, drain=drain)
