"""HTTP JSON front for the verification service.

A thread-per-request ``http.server`` API over one store — no runtime
dependencies beyond the stdlib.  Endpoints:

=============================  ==========================================
``POST /submit``               enqueue ``{netlist, format, method,
                               max_depth, timeout, priority, namespace,
                               name}`` → ``{job_id}``; 400 on an unknown
                               engine/format, 429 + ``retry_after`` when
                               the queue is full (backpressure)
``GET  /jobs``                 job table (``?state=``/``?namespace=``
                               filters)
``GET  /jobs/<id>``            one job's status record
``GET  /jobs/<id>/result``     the verdict payload (404 until terminal)
``GET  /jobs/<id>/events``     the job's progress-event stream
``POST /jobs/<id>/cancel``     request cancellation
``GET  /healthz``              liveness + queue depth, active leases,
                               store schema version
``GET  /metrics``              queue/lease/state-count/store gauges
``GET  /engines``              the engine registry
                               (:func:`repro.api.registry.engine_catalog`)
                               so clients validate ``method`` without
                               importing anything
=============================  ==========================================

:class:`VerificationServer` bundles the HTTP thread with an optional
in-host worker fleet: ``workers=N`` starts ``N`` worker *processes*
(crash-isolated, each with its own store connection) or, with
``worker_processes=False``, daemon threads sharing this process (handy
for tests and the in-process demo).
"""

from __future__ import annotations

import json
import multiprocessing
import pathlib
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ModelCheckingError, QueueFullError, ServiceError
from repro.svc.queue import TaskQueue
from repro.svc.store import Store
from repro.svc.worker import Worker, worker_main

_JOB_PATH = re.compile(r"^/jobs/(\d+)(/result|/events|/cancel)?$")


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the owning server's queue/store."""

    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; a service smoke
    # test drowning in access lines helps nobody.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def service(self) -> "VerificationServer":
        return self.server.service  # type: ignore[attr-defined]

    def _send(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        if length <= 0:
            return {}
        return json.loads(self.rfile.read(length).decode())

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            path, _, query = self.path.partition("?")
            if path == "/healthz":
                return self._send(200, self.service.health())
            if path == "/metrics":
                return self._send(200, self.service.metrics())
            if path == "/engines":
                from repro.api.registry import engine_catalog

                return self._send(200, {"engines": engine_catalog()})
            if path == "/jobs":
                filters = dict(
                    pair.split("=", 1)
                    for pair in query.split("&")
                    if "=" in pair
                )
                jobs = self.service.queue.jobs(
                    namespace=filters.get("namespace"),
                    state=filters.get("state"),
                )
                return self._send(
                    200, {"jobs": [job.to_dict() for job in jobs]}
                )
            match = _JOB_PATH.match(path)
            if match is not None and match.group(2) in (None, "/result",
                                                        "/events"):
                job_id = int(match.group(1))
                job = self.service.queue.job(job_id)
                if job is None:
                    return self._send(404, {"error": "no such job"})
                if match.group(2) == "/result":
                    if job.result is None:
                        return self._send(
                            404,
                            {"error": "no result yet",
                             "state": job.state.value},
                        )
                    return self._send(
                        200,
                        {"job_id": job_id, "state": job.state.value,
                         "result": job.result},
                    )
                if match.group(2) == "/events":
                    return self._send(
                        200,
                        {"job_id": job_id,
                         "events": self.service.queue.events(job_id)},
                    )
                return self._send(200, job.to_dict())
            return self._send(404, {"error": f"unknown path {path!r}"})
        except Exception as exc:  # noqa: BLE001 - report, don't kill thread
            return self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/submit":
                return self._submit()
            match = _JOB_PATH.match(self.path)
            if match is not None and match.group(2) == "/cancel":
                cancelled = self.service.queue.cancel(int(match.group(1)))
                return self._send(200, {"cancelled": cancelled})
            return self._send(404, {"error": f"unknown path {self.path!r}"})
        except json.JSONDecodeError as exc:
            return self._send(400, {"error": f"bad JSON: {exc}"})
        except Exception as exc:  # noqa: BLE001 - report, don't kill thread
            return self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _submit(self) -> None:
        body = self._read_json()
        netlist = body.get("netlist")
        if not isinstance(netlist, str) or not netlist.strip():
            return self._send(
                400, {"error": "submission needs a 'netlist' text field"}
            )
        try:
            job_id = self.service.queue.submit(
                netlist,
                fmt=body.get("format", "net"),
                method=body.get("method", "portfolio"),
                max_depth=int(body.get("max_depth", 100)),
                timeout=(
                    float(body["timeout"])
                    if body.get("timeout") is not None
                    else None
                ),
                priority=int(body.get("priority", 0)),
                namespace=str(body.get("namespace", "")),
                name=body.get("name"),
            )
        except QueueFullError as exc:
            return self._send(
                429, {"error": str(exc), "retry_after": exc.retry_after}
            )
        except (ModelCheckingError, ServiceError, ValueError) as exc:
            return self._send(400, {"error": str(exc)})
        return self._send(200, {"job_id": job_id})


class VerificationServer:
    """The service bundle: store + queue + HTTP front + worker fleet."""

    def __init__(
        self,
        store_path: str | pathlib.Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 1024,
        lease_seconds: float = 30.0,
        workers: int = 0,
        worker_processes: bool = True,
        worker_poll: float = 0.2,
    ) -> None:
        self.store_path = pathlib.Path(store_path)
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.lease_seconds = lease_seconds
        self.num_workers = workers
        self.worker_processes = worker_processes
        self.worker_poll = worker_poll
        self.store: Store | None = None
        self.queue: TaskQueue | None = None
        self._httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self._workers: list = []
        self._stop = threading.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> tuple[str, int]:
        """Open the store, bind the socket, launch workers; returns the
        bound ``(host, port)`` (``port=0`` picks a free one)."""
        self.store = Store(self.store_path)
        self.queue = TaskQueue(
            self.store,
            max_pending=self.max_pending,
            lease_seconds=self.lease_seconds,
        )
        self._httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        self._httpd.service = self  # type: ignore[attr-defined]
        self.port = self._httpd.server_address[1]
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._http_thread.start()
        for index in range(self.num_workers):
            if self.worker_processes:
                process = multiprocessing.get_context("fork").Process(
                    target=worker_main,
                    args=(str(self.store_path),),
                    kwargs={
                        "worker_id": f"serve-{index}",
                        "lease_seconds": self.lease_seconds,
                        "poll_interval": self.worker_poll,
                    },
                    daemon=True,
                )
                process.start()
                self._workers.append(process)
            else:
                worker = Worker(
                    self.store,
                    worker_id=f"serve-{index}",
                    lease_seconds=self.lease_seconds,
                    poll_interval=self.worker_poll,
                )
                thread = threading.Thread(
                    target=worker.run,
                    kwargs={"stop": self._stop},
                    daemon=True,
                )
                thread.start()
                self._workers.append(thread)
        return (self.host, self.port)

    def stop(self) -> None:
        self._stop.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        for worker in self._workers:
            if isinstance(worker, threading.Thread):
                worker.join(timeout=2.0)
            else:
                worker.terminate()
                worker.join(timeout=2.0)
        self._workers.clear()
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "VerificationServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # Introspection payloads
    # ------------------------------------------------------------------ #

    def health(self) -> dict:
        from repro.api.registry import engine_names

        return {
            "ok": True,
            "schema_version": self.store.schema_version,
            "queue_depth": self.queue.depth(),
            "active_leases": self.queue.active_leases(),
            "workers": len(self._workers),
            "engines": list(engine_names()),
        }

    def metrics(self) -> dict:
        counts = self.queue.counts()
        return {
            "queue_depth": self.queue.depth(),
            "active_leases": self.queue.active_leases(),
            "jobs": counts,
            "results": self.store.count_results(),
            "certificates": self.store.count_certificates(),
        }
