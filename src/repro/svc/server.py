"""HTTP JSON front for the verification service.

A thread-per-request ``http.server`` API over one store — no runtime
dependencies beyond the stdlib.  Endpoints:

=============================  ==========================================
``POST /submit``               enqueue ``{netlist, format, method,
                               max_depth, timeout, priority, namespace,
                               name}`` → ``{job_id}``; 400 on an unknown
                               engine/format, 429 + ``retry_after`` when
                               the queue is full (backpressure)
``GET  /jobs``                 job table (``?state=``/``?namespace=``
                               filters)
``GET  /jobs/<id>``            one job's status record
``GET  /jobs/<id>/result``     the verdict payload (404 until terminal)
``GET  /jobs/<id>/events``     the job's progress events: a JSON
                               snapshot by default, a live SSE stream
                               under ``Accept: text/event-stream`` (or
                               ``?stream=1``), resumable from
                               ``Last-Event-ID``/``?after=``; a
                               synthetic ``end`` event marks the
                               terminal state
``GET  /jobs/<id>/trace``      the job's uploaded obs trace as Chrome
                               ``trace_event`` JSON (404 until a
                               ``--trace-jobs`` worker finished it)
``POST /jobs/<id>/cancel``     request cancellation
``GET  /healthz``              liveness + queue depth, active leases,
                               store schema version
``GET  /metrics``              the metrics registry: JSON by default
                               (legacy gauges + full family snapshots),
                               Prometheus text exposition under
                               ``Accept: text/plain`` (or
                               ``?format=prometheus``)
``GET  /engines``              the engine registry
                               (:func:`repro.api.registry.engine_catalog`)
                               so clients validate ``method`` without
                               importing anything
=============================  ==========================================

:class:`VerificationServer` bundles the HTTP thread with an optional
in-host worker fleet: ``workers=N`` starts ``N`` worker *processes*
(crash-isolated, each with its own store connection) or, with
``worker_processes=False``, daemon threads sharing this process (handy
for tests and the in-process demo).

Metrics are fleet-correct with either fleet shape: ``start()`` enables
the :mod:`repro.obs.metrics` registry in the server process and
registers a *collector* that derives queue depth, jobs by state,
per-engine win counts and latency histograms from the durable store at
scrape time — truths worker processes wrote, which their private
in-memory registries could never report back.
"""

from __future__ import annotations

import json
import multiprocessing
import pathlib
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ModelCheckingError, QueueFullError, ServiceError
from repro.obs import metrics as _met
from repro.obs import probes as _obs
from repro.svc.queue import TaskQueue
from repro.svc.store import Store
from repro.svc.worker import Worker, worker_main

_JOB_PATH = re.compile(r"^/jobs/(\d+)(/result|/events|/trace|/cancel)?$")

# Normalized route labels so HTTP metrics stay low-cardinality (job ids
# never become label values).
_ROUTE_BY_SUFFIX = {
    None: "job",
    "/result": "job_result",
    "/events": "job_events",
    "/trace": "job_trace",
    "/cancel": "job_cancel",
}


def _route_label(path: str) -> str:
    path = path.partition("?")[0]
    fixed = {
        "/submit": "submit",
        "/healthz": "healthz",
        "/metrics": "metrics",
        "/engines": "engines",
        "/jobs": "jobs",
    }
    if path in fixed:
        return fixed[path]
    match = _JOB_PATH.match(path)
    if match is not None:
        return _ROUTE_BY_SUFFIX[match.group(2)]
    return "other"


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the owning server's queue/store."""

    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; a service smoke
    # test drowning in access lines helps nobody.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def service(self) -> "VerificationServer":
        return self.server.service  # type: ignore[attr-defined]

    def _send(self, code: int, payload: dict) -> None:
        self._sent_code = code
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, body: str, content_type: str) -> None:
        self._sent_code = code
        encoded = body.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        if length <= 0:
            return {}
        return json.loads(self.rfile.read(length).decode())

    def _query(self) -> dict[str, str]:
        _, _, query = self.path.partition("?")
        return dict(
            pair.split("=", 1) for pair in query.split("&") if "=" in pair
        )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._instrumented(self._do_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._instrumented(self._do_post)

    def _instrumented(self, handler) -> None:
        metered = _met.ENABLED
        if metered:
            t0 = time.perf_counter()
        self._sent_code = 0
        try:
            handler()
        finally:
            if metered:
                route = _route_label(self.path)
                _met.HTTP_REQUESTS.labels(route, str(self._sent_code)).inc()
                _met.HTTP_SECONDS.labels(route).observe(
                    time.perf_counter() - t0
                )

    def _do_get(self) -> None:
        try:
            path, _, query = self.path.partition("?")
            if path == "/healthz":
                return self._send(200, self.service.health())
            if path == "/metrics":
                return self._metrics()
            if path == "/engines":
                from repro.api.registry import engine_catalog

                return self._send(200, {"engines": engine_catalog()})
            if path == "/jobs":
                filters = dict(
                    pair.split("=", 1)
                    for pair in query.split("&")
                    if "=" in pair
                )
                jobs = self.service.queue.jobs(
                    namespace=filters.get("namespace"),
                    state=filters.get("state"),
                )
                return self._send(
                    200, {"jobs": [job.to_dict() for job in jobs]}
                )
            match = _JOB_PATH.match(path)
            if match is not None and match.group(2) != "/cancel":
                job_id = int(match.group(1))
                job = self.service.queue.job(job_id)
                if job is None:
                    return self._send(404, {"error": "no such job"})
                if match.group(2) == "/result":
                    if job.result is None:
                        return self._send(
                            404,
                            {"error": "no result yet",
                             "state": job.state.value},
                        )
                    return self._send(
                        200,
                        {"job_id": job_id, "state": job.state.value,
                         "result": job.result},
                    )
                if match.group(2) == "/events":
                    accept = self.headers.get("Accept", "")
                    if (
                        "text/event-stream" in accept
                        or self._query().get("stream") == "1"
                    ):
                        return self._stream_events(job_id)
                    return self._send(
                        200,
                        {"job_id": job_id,
                         "events": self.service.queue.events(job_id)},
                    )
                if match.group(2) == "/trace":
                    return self._trace(job)
                return self._send(200, job.to_dict())
            return self._send(404, {"error": f"unknown path {path!r}"})
        except Exception as exc:  # noqa: BLE001 - report, don't kill thread
            return self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _do_post(self) -> None:
        try:
            path = self.path.partition("?")[0]
            if path == "/submit":
                return self._submit()
            match = _JOB_PATH.match(path)
            if match is not None and match.group(2) == "/cancel":
                cancelled = self.service.queue.cancel(int(match.group(1)))
                return self._send(200, {"cancelled": cancelled})
            return self._send(404, {"error": f"unknown path {path!r}"})
        except json.JSONDecodeError as exc:
            return self._send(400, {"error": f"bad JSON: {exc}"})
        except Exception as exc:  # noqa: BLE001 - report, don't kill thread
            return self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _submit(self) -> None:
        body = self._read_json()
        netlist = body.get("netlist")
        if not isinstance(netlist, str) or not netlist.strip():
            return self._send(
                400, {"error": "submission needs a 'netlist' text field"}
            )
        try:
            job_id = self.service.queue.submit(
                netlist,
                fmt=body.get("format", "net"),
                method=body.get("method", "portfolio"),
                max_depth=int(body.get("max_depth", 100)),
                timeout=(
                    float(body["timeout"])
                    if body.get("timeout") is not None
                    else None
                ),
                priority=int(body.get("priority", 0)),
                namespace=str(body.get("namespace", "")),
                name=body.get("name"),
            )
        except QueueFullError as exc:
            return self._send(
                429, {"error": str(exc), "retry_after": exc.retry_after}
            )
        except (ModelCheckingError, ServiceError, ValueError) as exc:
            return self._send(400, {"error": str(exc)})
        return self._send(200, {"job_id": job_id})

    # ------------------------------------------------------------------ #
    # Metrics exposition
    # ------------------------------------------------------------------ #

    def _metrics(self) -> None:
        accept = self.headers.get("Accept", "")
        wants_text = (
            self._query().get("format") == "prometheus"
            or "text/plain" in accept
            or "openmetrics" in accept
        )
        if wants_text:
            return self._send_text(
                200,
                _met.REGISTRY.to_prometheus(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        return self._send(200, self.service.metrics())

    # ------------------------------------------------------------------ #
    # Traces
    # ------------------------------------------------------------------ #

    def _trace(self, job) -> None:
        if job.trace_id is None:
            return self._send(
                404,
                {"error": "no trace for this job (run workers with "
                          "--trace-jobs)",
                 "state": job.state.value},
            )
        doc = self.service.store.get_trace(job.trace_id)
        if doc is None:
            return self._send(404, {"error": "trace blob missing"})
        from repro.obs.trace import Tracer

        tracer = Tracer(epoch=0.0)
        tracer.wall_epoch = doc.get("wall_epoch", 0.0)
        tracer.merge_records(doc.get("records", []))
        return self._send(200, tracer.to_chrome_trace())

    # ------------------------------------------------------------------ #
    # Server-sent events
    # ------------------------------------------------------------------ #

    def _stream_events(self, job_id: int) -> None:
        """Stream the persisted event log as SSE frames.

        Each event becomes ``id:``/``event:``/``data:`` lines keyed by
        the durable ``seq``, so a dropped client resumes exactly where
        it left off via ``Last-Event-ID`` — including across a worker
        SIGKILL and lease-expiry requeue, because the log itself is in
        the store, not in any worker.  After the job goes terminal the
        streamer drains until the log is quiet, then emits a synthetic
        ``end`` event (not persisted; its id repeats the last seq).
        """
        queue = self.service.queue
        after = 0
        last_id = self.headers.get("Last-Event-ID")
        resume = last_id if last_id is not None else self._query().get("after")
        if resume is not None:
            try:
                after = int(resume)
            except ValueError:
                after = 0
        self._sent_code = 200
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # No Content-Length: the connection close delimits the stream.
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True

        service = self.service
        service.sse_opened()
        poll = service.sse_poll
        grace = max(poll * 3, 0.25)
        keepalive_every = 10.0
        quiet = 0.0
        since_write = 0.0
        try:
            while True:
                events = queue.events_after(job_id, after)
                for event in events:
                    after = event["seq"]
                    self.wfile.write(
                        f"id: {event['seq']}\n"
                        f"event: {event['kind']}\n"
                        f"data: {json.dumps(event)}\n\n".encode()
                    )
                if events:
                    self.wfile.flush()
                    quiet = 0.0
                    since_write = 0.0
                job = queue.job(job_id)
                if job is None:
                    break
                if job.state.terminal:
                    # complete() commits the terminal row *before* it
                    # appends the job_finished event — drain until the
                    # log has been quiet for a grace window so the
                    # terminal event is never cut off.
                    if quiet >= grace:
                        end = {
                            "seq": after,
                            "state": job.state.value,
                            "verdict": job.verdict,
                            "reason": job.reason,
                            "trace_id": job.trace_id,
                        }
                        self.wfile.write(
                            f"id: {after}\nevent: end\n"
                            f"data: {json.dumps(end)}\n\n".encode()
                        )
                        self.wfile.flush()
                        break
                if service.stopping:
                    break
                if since_write >= keepalive_every:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    since_write = 0.0
                time.sleep(poll)
                quiet += poll
                since_write += poll
        except (BrokenPipeError, ConnectionError, OSError):
            pass  # client went away; nothing to clean up but the gauge
        finally:
            service.sse_closed()


class VerificationServer:
    """The service bundle: store + queue + HTTP front + worker fleet."""

    def __init__(
        self,
        store_path: str | pathlib.Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 1024,
        lease_seconds: float = 30.0,
        workers: int = 0,
        worker_processes: bool = True,
        worker_poll: float = 0.2,
        trace_jobs: bool = False,
        sse_poll: float = 0.1,
    ) -> None:
        self.store_path = pathlib.Path(store_path)
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.lease_seconds = lease_seconds
        self.num_workers = workers
        self.worker_processes = worker_processes
        self.worker_poll = worker_poll
        self.trace_jobs = trace_jobs
        self.sse_poll = sse_poll
        self.store: Store | None = None
        self.queue: TaskQueue | None = None
        self._httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self._workers: list = []
        self._stop = threading.Event()
        self._sse_lock = threading.Lock()
        self._sse_clients = 0
        self._collector = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> tuple[str, int]:
        """Open the store, bind the socket, launch workers; returns the
        bound ``(host, port)`` (``port=0`` picks a free one)."""
        self.store = Store(self.store_path)
        self.queue = TaskQueue(
            self.store,
            max_pending=self.max_pending,
            lease_seconds=self.lease_seconds,
        )
        _met.enable()
        self._collector = self._store_families
        _met.REGISTRY.register_collector(self._collector)
        self._httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        self._httpd.service = self  # type: ignore[attr-defined]
        self.port = self._httpd.server_address[1]
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._http_thread.start()
        for index in range(self.num_workers):
            if self.worker_processes:
                process = multiprocessing.get_context("fork").Process(
                    target=worker_main,
                    args=(str(self.store_path),),
                    kwargs={
                        "worker_id": f"serve-{index}",
                        "lease_seconds": self.lease_seconds,
                        "poll_interval": self.worker_poll,
                        "trace_jobs": self.trace_jobs,
                    },
                    daemon=True,
                )
                process.start()
                self._workers.append(process)
            else:
                worker = Worker(
                    self.store,
                    worker_id=f"serve-{index}",
                    lease_seconds=self.lease_seconds,
                    poll_interval=self.worker_poll,
                    trace_jobs=self.trace_jobs,
                )
                thread = threading.Thread(
                    target=worker.run,
                    kwargs={"stop": self._stop},
                    daemon=True,
                )
                thread.start()
                self._workers.append(thread)
        return (self.host, self.port)

    def stop(self) -> None:
        self._stop.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        for worker in self._workers:
            if isinstance(worker, threading.Thread):
                worker.join(timeout=2.0)
            else:
                worker.terminate()
                worker.join(timeout=2.0)
        self._workers.clear()
        if self._collector is not None:
            _met.REGISTRY.unregister_collector(self._collector)
            self._collector = None
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "VerificationServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # ------------------------------------------------------------------ #
    # SSE bookkeeping
    # ------------------------------------------------------------------ #

    def sse_opened(self) -> None:
        with self._sse_lock:
            self._sse_clients += 1
            clients = self._sse_clients
        if _met.ENABLED:
            _met.SSE_STREAMS.set(clients)
        if _obs.ENABLED:
            _obs.sample("svc.sse_clients", clients)

    def sse_closed(self) -> None:
        with self._sse_lock:
            self._sse_clients -= 1
            clients = self._sse_clients
        if _met.ENABLED:
            _met.SSE_STREAMS.set(clients)
        if _obs.ENABLED:
            _obs.sample("svc.sse_clients", clients)

    # ------------------------------------------------------------------ #
    # Introspection payloads
    # ------------------------------------------------------------------ #

    def health(self) -> dict:
        from repro.api.registry import engine_names

        return {
            "ok": True,
            "schema_version": self.store.schema_version,
            "queue_depth": self.queue.depth(),
            "active_leases": self.queue.active_leases(),
            "workers": len(self._workers),
            "engines": list(engine_names()),
        }

    def metrics(self) -> dict:
        """The ``/metrics`` JSON document.

        The legacy top-level gauges stay (scripts and the smoke test
        read them); ``"metrics"`` carries the full registry snapshot —
        the same families the Prometheus variant renders.
        """
        counts = self.queue.counts()
        return {
            "queue_depth": self.queue.depth(),
            "active_leases": self.queue.active_leases(),
            "jobs": counts,
            "results": self.store.count_results(),
            "certificates": self.store.count_certificates(),
            "traces": self.store.count_traces(),
            "sse_streams": self._sse_clients,
            "metrics": _met.REGISTRY.to_json(),
        }

    def _store_families(self) -> list[dict]:
        """Scrape-time metric families derived from the durable store.

        These are fleet-wide truths: worker *processes* tally into
        their own private registries that die with them, but everything
        that matters is committed to the store — so the store is the
        source of truth the scrape reads.
        """

        def gauge(name: str, help: str, samples) -> dict:
            return {
                "name": name,
                "type": "gauge",
                "help": help,
                "samples": [
                    {"labels": labels, "value": value}
                    for labels, value in samples
                ],
            }

        counts = self.queue.counts()
        wins = self.queue.method_verdicts()
        latencies = self.queue.finished_latencies()
        by_method: dict[str, list[float]] = {}
        wait_by_method: dict[str, list[float]] = {}
        for method, wait_seconds, run_seconds in latencies:
            by_method.setdefault(method, []).append(run_seconds)
            wait_by_method.setdefault(method, []).append(wait_seconds)
        return [
            gauge(
                "repro_queue_depth",
                "Queued (claimable) jobs in the durable queue",
                [({}, self.queue.depth())],
            ),
            gauge(
                "repro_active_leases",
                "Jobs currently claimed under a live worker lease",
                [({}, self.queue.active_leases())],
            ),
            gauge(
                "repro_jobs",
                "Jobs in the store by state",
                [({"state": state}, n) for state, n in sorted(counts.items())],
            ),
            {
                "name": "repro_jobs_won_total",
                "type": "counter",
                "help": "Terminal jobs by engine method and verdict",
                "samples": [
                    {"labels": {"method": method, "verdict": verdict},
                     "value": n}
                    for (method, verdict), n in sorted(wins.items())
                ],
            },
            _met.histogram_family(
                "repro_job_latency_seconds",
                "Claim-to-finish latency of recently finished jobs "
                "(fleet-wide, derived from the store)",
                [({"method": method}, values)
                 for method, values in sorted(by_method.items())],
            ),
            _met.histogram_family(
                "repro_job_wait_seconds",
                "Submit-to-claim queue wait of recently finished jobs "
                "(fleet-wide, derived from the store)",
                [({"method": method}, values)
                 for method, values in sorted(wait_by_method.items())],
            ),
            gauge(
                "repro_store_results",
                "Result rows in the keyed store",
                [({}, self.store.count_results())],
            ),
            gauge(
                "repro_store_certificates",
                "Content-addressed certificate blobs in the store",
                [({}, self.store.count_certificates())],
            ),
            gauge(
                "repro_store_traces",
                "Content-addressed per-job trace blobs in the store",
                [({}, self.store.count_traces())],
            ),
        ]
