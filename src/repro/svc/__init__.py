"""Verification-as-a-service: durable store, task queue, workers, server.

The portfolio/Session stack runs every engine in a budgeted subprocess
with progress events and cancellation, but results and work items die
with the Python process.  This package is the durability layer on top:

* :mod:`repro.svc.store` — an SQLite-backed keyed store (WAL
  concurrency, schema versioning/migration) holding verification
  results keyed by structural hash with namespace isolation,
  content-addressed certificate blobs, the job table and job events;
* :mod:`repro.svc.queue` — a durable task queue on the same store:
  priority + FIFO ordering, worker leases with heartbeat renewal,
  lease-expiry requeue with bounded attempts, explicit backpressure;
* :mod:`repro.svc.worker` — the worker loop claiming tasks and running
  them through :class:`repro.api.Session` (engines keep their
  subprocess budgets), streaming progress events into the store and
  honoring cancellation between engine races;
* :mod:`repro.svc.server` — an ``http.server``-thread JSON API
  (submit/status/result/cancel/healthcheck/engines), with fleet
  telemetry on top: ``/metrics`` content-negotiated between JSON and
  Prometheus text exposition, ``/jobs/<id>/events`` upgrading to a
  server-sent event stream (``Last-Event-ID`` resume, terminal ``end``
  frame), ``/jobs/<id>/trace`` serving the per-job obs trace uploaded
  by ``--trace-jobs`` workers, and the ``repro serve`` / ``repro
  submit`` / ``repro jobs [--follow]`` / ``repro top`` CLI plumbing.
"""

from repro.svc.queue import Job, JobState, QueueFullError, TaskQueue
from repro.svc.store import Store, open_store
from repro.svc.server import VerificationServer
from repro.svc.worker import Worker, worker_main

__all__ = [
    "Job",
    "JobState",
    "QueueFullError",
    "Store",
    "TaskQueue",
    "VerificationServer",
    "Worker",
    "open_store",
    "worker_main",
]
