"""Bridges between AIGs and BDDs.

``aig_to_bdd`` is the workhorse of BDD sweeping: it builds BDDs bottom-up
for every node of a cone and *raises* :class:`~repro.errors.BddLimitExceeded`
when the manager's node budget is exhausted, letting the caller cut the
offending node instead.  ``bdd_to_aig`` converts back (multiplexer per BDD
node), used by tests and by the BDD-reachability baseline when extracting
witness functions.
"""

from __future__ import annotations

from typing import Mapping

from repro.aig.graph import FALSE, TRUE, Aig
from repro.aig.ops import ite as aig_ite
from repro.bdd.manager import BDD_FALSE, BDD_TRUE, BddManager
from repro.errors import BddError


def aig_to_bdd(
    aig: Aig,
    edge: int,
    manager: BddManager,
    var_map: Mapping[int, int],
    node_cache: dict[int, int] | None = None,
) -> int:
    """Build the BDD of an AIG edge.

    ``var_map`` maps AIG input *nodes* to BDD variable *indices*.  Inputs
    missing from the map raise :class:`BddError`.  ``node_cache`` (AIG node
    -> BDD node) may be shared across calls to amortize work over a cone —
    BDD sweeping does exactly that.

    Raises :class:`~repro.errors.BddLimitExceeded` if the manager has a node
    budget and it is exhausted mid-construction.
    """
    if node_cache is None:
        node_cache = {}
    node_cache.setdefault(0, BDD_FALSE)
    for node in aig.cone([edge]):
        if node in node_cache:
            continue
        if aig.is_input(node):
            if node not in var_map:
                raise BddError(f"AIG input {node} missing from var_map")
            node_cache[node] = manager.var_node(var_map[node])
        else:
            f0, f1 = aig.fanins(node)
            b0 = node_cache[f0 >> 1]
            if f0 & 1:
                b0 = manager.not_(b0)
            b1 = node_cache[f1 >> 1]
            if f1 & 1:
                b1 = manager.not_(b1)
            node_cache[node] = manager.and_(b0, b1)
    result = node_cache[edge >> 1]
    return manager.not_(result) if edge & 1 else result


def bdd_to_aig(
    manager: BddManager,
    bdd_node: int,
    aig: Aig,
    var_edges: Mapping[int, int],
) -> int:
    """Convert a BDD to an AIG edge (one mux per BDD node).

    ``var_edges`` maps BDD variable indices to AIG edges.
    """
    cache: dict[int, int] = {BDD_FALSE: FALSE, BDD_TRUE: TRUE}
    order = _topological(manager, bdd_node)
    for node in order:
        var = manager.var_of(node)
        if var not in var_edges:
            raise BddError(f"BDD variable {var} missing from var_edges")
        low = cache[manager.low_of(node)]
        high = cache[manager.high_of(node)]
        cache[node] = aig_ite(aig, var_edges[var], high, low)
    return cache[bdd_node]


def _topological(manager: BddManager, root: int) -> list[int]:
    order: list[int] = []
    seen: set[int] = set()
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if node <= 1 or node in seen:
            continue
        seen.add(node)
        stack.append((node, True))
        stack.append((manager.low_of(node), False))
        stack.append((manager.high_of(node), False))
    return order
