"""A classic ROBDD manager with an optional node budget.

Nodes are integers; 0 and 1 are the terminals.  Internal nodes are
hash-consed triples ``(var, low, high)`` with ``low != high`` and variables
ordered along every path (``var`` strictly increases downward).  There are
no complement edges — negation is a cached traversal — which keeps the
implementation small and the canonicity argument obvious.

The kernel is organized the way serious BDD packages (CUDD, BuDDy) are:

* every operator (AND, OR, XOR, NOT, ITE, EXISTS, AND-EXISTS) has its own
  *operation-tagged* apply cache, so an ``and_`` never collides with an
  ``ite`` and commutative operators normalize their operands into one
  entry;
* quantification takes a *cube* (the positive conjunction of the
  quantified variables) and eliminates every variable in one recursion
  instead of rescanning the BDD once per variable;
* the relational-product workhorse :meth:`and_exists` fuses conjunction
  and existential quantification, short-circuiting on FALSE and on a TRUE
  disjunct, dropping cube variables that lie above the operands' supports,
  and skipping quantification of variables absent from the support;
* caches are *bounded*: when ``max_cache_entries`` is set, a cache that
  fills up is dropped wholesale (the MiniSat-style "cheap amnesia beats
  bookkeeping" discipline) and the reset is counted;
* hit/miss/reset counters per operation are exposed through
  :meth:`cache_stats` so engines can surface them in their ``StatsBag``.

Recursion depth is bounded by the variable order (every recursive call
strictly descends it), so :meth:`new_var` guards deep-chain circuits
against ``RecursionError`` by raising the interpreter recursion limit in
step with the variable count.

The node budget exists for the BDD-sweeping use case: when constructing the
BDD of an AIG node overruns the budget, :class:`~repro.errors.BddLimitExceeded`
is raised and the sweeping engine falls back to a cut point, exactly the
"abandon and cut" behaviour of Kuehlmann-Krohm sweeping.
"""

from __future__ import annotations

import sys
from typing import Iterable, Iterator, Mapping

from repro.errors import BddError, BddLimitExceeded
from repro.obs import probes as _obs

BDD_FALSE = 0
BDD_TRUE = 1

# Operation tags, one apply cache per tag.
_OPS = ("ite", "and", "or", "xor", "not", "exists", "and_exists")

# Safety margin on top of the variable-count-derived recursion depth:
# interpreter frames already on the stack plus helper-call overhead.
_RECURSION_MARGIN = 512

# Never raise the interpreter recursion limit beyond this: past it the C
# stack becomes the binding constraint and a deeper Python limit would
# trade a catchable RecursionError for a hard crash.
_RECURSION_LIMIT_CAP = 100_000


class BddManager:
    """Hash-consed ROBDD manager.

    >>> mgr = BddManager()
    >>> x, y = mgr.new_var("x"), mgr.new_var("y")
    >>> f = mgr.and_(x, y)
    >>> mgr.evaluate(f, {0: True, 1: True})
    True
    >>> g = mgr.exists(f, [1])     # exists y . x AND y  ==  x
    >>> g == x
    True
    >>> mgr.and_exists(x, y, [1]) == x   # fused relational product
    True
    """

    def __init__(
        self,
        max_nodes: int | None = None,
        max_cache_entries: int | None = None,
    ) -> None:
        # Struct-of-arrays node store; slots 0/1 are the terminals
        # (var = big sentinel).  A node *is* its integer index into these
        # three columns.
        self._var: list[int] = [2**30, 2**30]
        self._low: list[int] = [-1, -1]
        self._high: list[int] = [-1, -1]
        # Unique table and apply caches are keyed by packed integers
        # (fields shifted into one int) rather than tuples: an int key
        # hashes and compares without touching three boxed elements, which
        # measures ~2x faster on the apply hot path.  The 30-bit field
        # width caps node indices at 2**30 — far past what fits in memory.
        self._unique: dict[int, int] = {}
        # Operation-tagged apply caches.  ``_not_cache`` doubles as the
        # complement table: both directions are stored, so "is g the
        # negation of f?" is one O(1) lookup whenever the complement has
        # ever been computed.
        self._ite_cache: dict[int, int] = {}
        self._and_cache: dict[int, int] = {}
        self._or_cache: dict[int, int] = {}
        self._xor_cache: dict[int, int] = {}
        self._not_cache: dict[int, int] = {}
        self._exists_cache: dict[int, int] = {}
        self._and_exists_cache: dict[int, int] = {}
        self._caches: dict[str, dict] = {
            "ite": self._ite_cache,
            "and": self._and_cache,
            "or": self._or_cache,
            "xor": self._xor_cache,
            "not": self._not_cache,
            "exists": self._exists_cache,
            "and_exists": self._and_exists_cache,
        }
        # Hit/miss counters are plain int attributes (one LOAD_ATTR +
        # inplace add on the hot path, no dict indexing); cache_stats()
        # assembles the per-op dict view on demand.  Resets stay a dict —
        # they only fire when a bounded cache overflows.
        self._hits_ite = self._misses_ite = 0
        self._hits_and = self._misses_and = 0
        self._hits_or = self._misses_or = 0
        self._hits_xor = self._misses_xor = 0
        self._hits_not = self._misses_not = 0
        self._hits_exists = self._misses_exists = 0
        self._hits_and_exists = self._misses_and_exists = 0
        self._resets: dict[str, int] = {op: 0 for op in _OPS}
        self._var_names: list[str] = []
        self._var_nodes: list[int] = []
        self.max_nodes = max_nodes
        self.max_cache_entries = max_cache_entries

    # ------------------------------------------------------------------ #
    # Variables and raw nodes
    # ------------------------------------------------------------------ #

    @property
    def num_vars(self) -> int:
        return len(self._var_names)

    @property
    def num_nodes(self) -> int:
        """Allocated node count (terminals included)."""
        return len(self._var)

    def new_var(self, name: str | None = None) -> int:
        """Append a variable at the bottom of the order; returns its node.

        Variable creation is exempt from the node budget: the budget guards
        against *function* blow-up during sweeping, and cut-point insertion
        itself must always be able to allocate a fresh variable.
        """
        index = len(self._var_names)
        self._var_names.append(name if name is not None else f"v{index}")
        node = self._make_node(index, BDD_FALSE, BDD_TRUE, exempt=True)
        self._var_nodes.append(node)
        # Every kernel recursion strictly descends the variable order, so
        # the worst-case Python stack is a small multiple of the variable
        # count (an and_exists frame may open an or_ chain).  Deep-chain
        # circuits used to die with RecursionError here.
        needed = min(3 * (index + 1) + _RECURSION_MARGIN, _RECURSION_LIMIT_CAP)
        if needed > sys.getrecursionlimit():
            sys.setrecursionlimit(needed)
        return node

    def var_node(self, index: int) -> int:
        """The node for variable ``index`` (created via :meth:`new_var`)."""
        if not 0 <= index < len(self._var_nodes):
            raise BddError(f"variable index {index} out of range")
        return self._var_nodes[index]

    def var_name(self, index: int) -> str:
        return self._var_names[index]

    def var_of(self, node: int) -> int:
        """Top variable index of a node (error on terminals)."""
        if node <= 1:
            raise BddError("terminals have no top variable")
        return self._var[node]

    def low_of(self, node: int) -> int:
        return self._low[node]

    def high_of(self, node: int) -> int:
        return self._high[node]

    def _make_node(
        self, var: int, low: int, high: int, exempt: bool = False
    ) -> int:
        if low == high:
            return low
        key = (var << 60) | (low << 30) | high
        node = self._unique.get(key)
        if node is not None:
            return node
        if (
            not exempt
            and self.max_nodes is not None
            and len(self._var) >= self.max_nodes
        ):
            raise BddLimitExceeded(
                f"BDD node budget of {self.max_nodes} exhausted"
            )
        node = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    # ------------------------------------------------------------------ #
    # Negation (also the complement table)
    # ------------------------------------------------------------------ #

    def not_(self, f: int) -> int:
        """Negation; both directions are cached as the complement table."""
        if f <= 1:
            return f ^ 1
        cache = self._not_cache
        cached = cache.get(f)
        if cached is not None:
            self._hits_not += 1
            return cached
        self._misses_not += 1
        result = self._make_node(
            self._var[f], self.not_(self._low[f]), self.not_(self._high[f])
        )
        bound = self.max_cache_entries
        if bound is not None and len(cache) >= bound:
            cache.clear()
            self._resets["not"] += 1
        cache[f] = result
        cache[result] = f
        return result

    # ------------------------------------------------------------------ #
    # Binary boolean operators (tagged apply caches)
    # ------------------------------------------------------------------ #

    def and_(self, f: int, g: int) -> int:
        if f == g or g == BDD_TRUE:
            return f
        if f == BDD_TRUE:
            return g
        if f == BDD_FALSE or g == BDD_FALSE:
            return BDD_FALSE
        if self._not_cache.get(f) == g:
            return BDD_FALSE
        if f > g:
            f, g = g, f
        cache = self._and_cache
        key = (f << 30) | g
        cached = cache.get(key)
        if cached is not None:
            self._hits_and += 1
            return cached
        self._misses_and += 1
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        vf = var_arr[f]
        vg = var_arr[g]
        if vf < vg:
            var = vf
            low = self.and_(low_arr[f], g)
            high = self.and_(high_arr[f], g)
        elif vg < vf:
            var = vg
            low = self.and_(f, low_arr[g])
            high = self.and_(f, high_arr[g])
        else:
            var = vf
            low = self.and_(low_arr[f], low_arr[g])
            high = self.and_(high_arr[f], high_arr[g])
        if low == high:
            result = low
        else:
            # Inlined _make_node: reduction rule, unique-table lookup and
            # allocation (with the node-budget check) without the method
            # call, double lookup or re-packing of the key.
            unique = self._unique
            ukey = (var << 60) | (low << 30) | high
            result = unique.get(ukey, -1)
            if result < 0:
                if (
                    self.max_nodes is not None
                    and len(var_arr) >= self.max_nodes
                ):
                    raise BddLimitExceeded(
                        f"BDD node budget of {self.max_nodes} exhausted"
                    )
                result = len(var_arr)
                var_arr.append(var)
                low_arr.append(low)
                high_arr.append(high)
                unique[ukey] = result
        bound = self.max_cache_entries
        if bound is not None and len(cache) >= bound:
            cache.clear()
            self._resets["and"] += 1
        cache[key] = result
        return result

    def or_(self, f: int, g: int) -> int:
        if f == g or g == BDD_FALSE:
            return f
        if f == BDD_FALSE:
            return g
        if f == BDD_TRUE or g == BDD_TRUE:
            return BDD_TRUE
        if self._not_cache.get(f) == g:
            return BDD_TRUE
        if f > g:
            f, g = g, f
        cache = self._or_cache
        key = (f << 30) | g
        cached = cache.get(key)
        if cached is not None:
            self._hits_or += 1
            return cached
        self._misses_or += 1
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        vf = var_arr[f]
        vg = var_arr[g]
        if vf < vg:
            var = vf
            low = self.or_(low_arr[f], g)
            high = self.or_(high_arr[f], g)
        elif vg < vf:
            var = vg
            low = self.or_(f, low_arr[g])
            high = self.or_(f, high_arr[g])
        else:
            var = vf
            low = self.or_(low_arr[f], low_arr[g])
            high = self.or_(high_arr[f], high_arr[g])
        if low == high:
            result = low
        else:
            # Inlined _make_node: reduction rule, unique-table lookup and
            # allocation (with the node-budget check) without the method
            # call, double lookup or re-packing of the key.
            unique = self._unique
            ukey = (var << 60) | (low << 30) | high
            result = unique.get(ukey, -1)
            if result < 0:
                if (
                    self.max_nodes is not None
                    and len(var_arr) >= self.max_nodes
                ):
                    raise BddLimitExceeded(
                        f"BDD node budget of {self.max_nodes} exhausted"
                    )
                result = len(var_arr)
                var_arr.append(var)
                low_arr.append(low)
                high_arr.append(high)
                unique[ukey] = result
        bound = self.max_cache_entries
        if bound is not None and len(cache) >= bound:
            cache.clear()
            self._resets["or"] += 1
        cache[key] = result
        return result

    def xor(self, f: int, g: int) -> int:
        if f == g:
            return BDD_FALSE
        if f == BDD_FALSE:
            return g
        if g == BDD_FALSE:
            return f
        if f == BDD_TRUE:
            return self.not_(g)
        if g == BDD_TRUE:
            return self.not_(f)
        if self._not_cache.get(f) == g:
            return BDD_TRUE
        if f > g:
            f, g = g, f
        cache = self._xor_cache
        key = (f << 30) | g
        cached = cache.get(key)
        if cached is not None:
            self._hits_xor += 1
            return cached
        self._misses_xor += 1
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        vf = var_arr[f]
        vg = var_arr[g]
        if vf < vg:
            var = vf
            low = self.xor(low_arr[f], g)
            high = self.xor(high_arr[f], g)
        elif vg < vf:
            var = vg
            low = self.xor(f, low_arr[g])
            high = self.xor(f, high_arr[g])
        else:
            var = vf
            low = self.xor(low_arr[f], low_arr[g])
            high = self.xor(high_arr[f], high_arr[g])
        if low == high:
            result = low
        else:
            # Inlined _make_node: reduction rule, unique-table lookup and
            # allocation (with the node-budget check) without the method
            # call, double lookup or re-packing of the key.
            unique = self._unique
            ukey = (var << 60) | (low << 30) | high
            result = unique.get(ukey, -1)
            if result < 0:
                if (
                    self.max_nodes is not None
                    and len(var_arr) >= self.max_nodes
                ):
                    raise BddLimitExceeded(
                        f"BDD node budget of {self.max_nodes} exhausted"
                    )
                result = len(var_arr)
                var_arr.append(var)
                low_arr.append(low)
                high_arr.append(high)
                unique[ukey] = result
        bound = self.max_cache_entries
        if bound is not None and len(cache) >= bound:
            cache.clear()
            self._resets["xor"] += 1
        cache[key] = result
        return result

    def xnor(self, f: int, g: int) -> int:
        return self.not_(self.xor(f, g))

    def implies(self, f: int, g: int) -> int:
        return self.or_(self.not_(f), g)

    def and_all(self, nodes: Iterable[int]) -> int:
        result = BDD_TRUE
        for node in nodes:
            result = self.and_(result, node)
            if result == BDD_FALSE:
                break
        return result

    def or_all(self, nodes: Iterable[int]) -> int:
        result = BDD_FALSE
        for node in nodes:
            result = self.or_(result, node)
            if result == BDD_TRUE:
                break
        return result

    # ------------------------------------------------------------------ #
    # Core ITE
    # ------------------------------------------------------------------ #

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else with full terminal simplification.

        Equivalent calls are rewritten to one canonical form before any
        cache is consulted: ``ite(f, f, h)`` collapses to ``f OR h``,
        ``ite(f, g, f)`` to ``f AND g``, and the complement-of-``f`` cases
        (detected through the complement table) to their two-operand
        forms, so they all share the tagged two-operand caches instead of
        sprinkling synonyms across the ITE cache.
        """
        if f == BDD_TRUE:
            return g
        if f == BDD_FALSE:
            return h
        if g == h:
            return g
        not_f = self._not_cache.get(f)
        if g == f:                   # ite(f, f, h) = f OR h
            g = BDD_TRUE
        elif g == not_f:             # ite(f, !f, h) = !f AND h
            g = BDD_FALSE
        if h == f:                   # ite(f, g, f) = f AND g
            h = BDD_FALSE
        elif h == not_f:             # ite(f, g, !f) = !f OR g
            h = BDD_TRUE
        if g == BDD_TRUE:
            return f if h == BDD_FALSE else self.or_(f, h)
        if g == BDD_FALSE:
            return self.not_(f) if h == BDD_TRUE else self.and_(self.not_(f), h)
        if h == BDD_FALSE:
            return self.and_(f, g)
        if h == BDD_TRUE:
            return self.or_(self.not_(f), g)
        cache = self._ite_cache
        key = (f << 60) | (g << 30) | h
        cached = cache.get(key)
        if cached is not None:
            self._hits_ite += 1
            return cached
        self._misses_ite += 1
        var = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self._cofactors(f, var)
        g0, g1 = self._cofactors(g, var)
        h0, h1 = self._cofactors(h, var)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._make_node(var, low, high)
        bound = self.max_cache_entries
        if bound is not None and len(cache) >= bound:
            cache.clear()
            self._resets["ite"] += 1
        cache[key] = result
        return result

    def _cofactors(self, node: int, var: int) -> tuple[int, int]:
        if node <= 1 or self._var[node] != var:
            return node, node
        return self._low[node], self._high[node]

    # ------------------------------------------------------------------ #
    # Quantification, composition, restriction
    # ------------------------------------------------------------------ #

    def restrict(self, f: int, var: int, value: bool) -> int:
        """Cofactor w.r.t. one variable."""
        cache: dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= 1 or self._var[node] > var:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            if self._var[node] == var:
                result = self._high[node] if value else self._low[node]
            else:
                result = self._make_node(
                    self._var[node],
                    walk(self._low[node]),
                    walk(self._high[node]),
                )
            cache[node] = result
            return result

        return walk(f)

    def cube_pos(self, variables: Iterable[int]) -> int:
        """The positive cube (conjunction) of a set of variable indices.

        Quantification cubes are exempt from the node budget: they are
        linear in the variable count and a budgeted sweep must always be
        able to *ask* for quantification.
        """
        result = BDD_TRUE
        for var in sorted(set(variables), reverse=True):
            if not 0 <= var < len(self._var_nodes):
                raise BddError(f"variable index {var} out of range")
            result = self._make_node(var, BDD_FALSE, result, exempt=True)
        return result

    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existential quantification over a set of variable indices.

        All variables are eliminated in one cube-directed recursion (not
        one full rescan per variable) with a persistent tagged cache.
        """
        # Probe on the non-recursive entry points only: quantification is
        # the image workhorse, so sampling here (tick-throttled, and one
        # branch when disabled) tracks node growth without touching the
        # recursion itself.
        if _obs.ENABLED:
            _obs.bdd_tick(self)
        return self._exists_rec(f, self.cube_pos(variables))

    def exists_cube(self, f: int, cube: int) -> int:
        """Existential quantification over a prebuilt positive cube.

        ``cube`` must be a conjunction of positive variable literals as
        returned by :meth:`cube_pos`; engines that quantify the same
        variable set every traversal step build the cube once.
        """
        if _obs.ENABLED:
            _obs.bdd_tick(self)
        return self._exists_rec(f, cube)

    def _exists_rec(self, f: int, cube: int) -> int:
        if f <= 1 or cube == BDD_TRUE:
            return f
        var_arr = self._var
        high_arr = self._high
        vf = var_arr[f]
        # Cube variables above the support of f are already quantified
        # away (exists x . f == f when x is absent) — drop them.
        while cube > 1 and var_arr[cube] < vf:
            cube = high_arr[cube]
        if cube == BDD_TRUE:
            return f
        cache = self._exists_cache
        key = (f << 30) | cube
        cached = cache.get(key)
        if cached is not None:
            self._hits_exists += 1
            return cached
        self._misses_exists += 1
        low, high = self._low[f], high_arr[f]
        if vf == var_arr[cube]:
            rest = high_arr[cube]
            r0 = self._exists_rec(low, rest)
            if r0 == BDD_TRUE:           # TRUE disjunct: short-circuit
                result = BDD_TRUE
            else:
                result = self.or_(r0, self._exists_rec(high, rest))
        else:
            r0 = self._exists_rec(low, cube)
            r1 = self._exists_rec(high, cube)
            if r0 == r1:
                result = r0
            else:
                result = self._unique.get(
                    (vf << 60) | (r0 << 30) | r1, -1
                )
                if result < 0:
                    result = self._make_node(vf, r0, r1)
        bound = self.max_cache_entries
        if bound is not None and len(cache) >= bound:
            cache.clear()
            self._resets["exists"] += 1
        cache[key] = result
        return result

    def and_exists(self, f: int, g: int, variables: Iterable[int]) -> int:
        """Fused relational product: ``exists variables . f AND g``.

        Never builds the full conjunction: the recursion quantifies each
        cube variable at its level, short-circuits on a FALSE conjunct and
        on a TRUE disjunct, and degrades gracefully to plain :meth:`and_`
        once the cube is exhausted.  This is the image-computation
        workhorse; see :meth:`and_exists_cube` to amortize cube
        construction across calls.
        """
        if _obs.ENABLED:
            _obs.bdd_tick(self)
        return self._and_exists_rec(f, g, self.cube_pos(variables))

    def and_exists_cube(self, f: int, g: int, cube: int) -> int:
        """Fused ``exists cube . f AND g`` over a prebuilt positive cube."""
        if _obs.ENABLED:
            _obs.bdd_tick(self)
        return self._and_exists_rec(f, g, cube)

    def _and_exists_rec(self, f: int, g: int, cube: int) -> int:
        if f == BDD_FALSE or g == BDD_FALSE:
            return BDD_FALSE
        if f == g or g == BDD_TRUE:
            return self._exists_rec(f, cube)
        if f == BDD_TRUE:
            return self._exists_rec(g, cube)
        if self._not_cache.get(f) == g:
            return BDD_FALSE
        var_arr = self._var
        high_arr = self._high
        vf, vg = var_arr[f], var_arr[g]
        top = vf if vf < vg else vg
        # Cube variables above both supports quantify to a no-op.
        while cube > 1 and var_arr[cube] < top:
            cube = high_arr[cube]
        if cube == BDD_TRUE:
            return self.and_(f, g)
        if f > g:
            f, g = g, f
            vf, vg = vg, vf
        cache = self._and_exists_cache
        key = (f << 60) | (g << 30) | cube
        cached = cache.get(key)
        if cached is not None:
            self._hits_and_exists += 1
            return cached
        self._misses_and_exists += 1
        f0, f1 = (self._low[f], high_arr[f]) if vf == top else (f, f)
        g0, g1 = (self._low[g], high_arr[g]) if vg == top else (g, g)
        if var_arr[cube] == top:
            rest = high_arr[cube]
            r0 = self._and_exists_rec(f0, g0, rest)
            if r0 == BDD_TRUE:           # TRUE disjunct: short-circuit
                result = BDD_TRUE
            else:
                result = self.or_(r0, self._and_exists_rec(f1, g1, rest))
        else:
            r0 = self._and_exists_rec(f0, g0, cube)
            r1 = self._and_exists_rec(f1, g1, cube)
            if r0 == r1:
                result = r0
            else:
                result = self._unique.get(
                    (top << 60) | (r0 << 30) | r1, -1
                )
                if result < 0:
                    result = self._make_node(top, r0, r1)
        bound = self.max_cache_entries
        if bound is not None and len(cache) >= bound:
            cache.clear()
            self._resets["and_exists"] += 1
        cache[key] = result
        return result

    def forall(self, f: int, variables: Iterable[int]) -> int:
        return self.not_(self.exists(self.not_(f), variables))

    def compose(self, f: int, substitution: Mapping[int, int]) -> int:
        """Simultaneous substitution of BDDs for variables.

        ``substitution`` maps variable indices to replacement BDD nodes.
        Implemented by Shannon expansion on every node, which is correct for
        simultaneous composition regardless of variable ordering.
        """
        cache: dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= 1:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            var = self._var[node]
            low = walk(self._low[node])
            high = walk(self._high[node])
            if var in substitution:
                selector = substitution[var]
            else:
                selector = self.var_node(var)
            result = self.ite(selector, high, low)
            cache[node] = result
            return result

        return walk(f)

    def rename(self, f: int, mapping: Mapping[int, int]) -> int:
        """Variable-to-variable renaming (indices to indices).

        When the mapping preserves the variable order over the support of
        ``f`` (and covers it), the BDD is relabeled in one linear pass —
        the common "next-state back to current-state" case.  Otherwise it
        falls back to general composition.
        """
        support = self.support(f)
        applicable = {v: mapping.get(v, v) for v in support}
        ordered = sorted(applicable)
        images = [applicable[v] for v in ordered]
        if images == sorted(set(images)):   # strictly increasing, distinct
            return self._relabel(f, applicable)
        return self.compose(
            f, {old: self.var_node(new) for old, new in mapping.items()}
        )

    def _relabel(self, f: int, mapping: Mapping[int, int]) -> int:
        """Linear-time relabeling for an order-preserving variable map."""
        cache: dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= 1:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            var = mapping.get(self._var[node], self._var[node])
            result = self._make_node(
                var, walk(self._low[node]), walk(self._high[node])
            )
            cache[node] = result
            return result

        return walk(f)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def evaluate(self, f: int, assignment: Mapping[int, bool]) -> bool:
        node = f
        while node > 1:
            var = self._var[node]
            node = self._high[node] if assignment.get(var, False) else self._low[node]
        return node == BDD_TRUE

    def size(self, f: int) -> int:
        """Number of internal nodes reachable from ``f``."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)

    def sat_count(self, f: int, num_vars: int | None = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables."""
        if num_vars is None:
            num_vars = self.num_vars
        cache: dict[int, int] = {}

        def walk(node: int) -> tuple[int, int]:
            """Returns (count over vars below node's var, node's var)."""
            if node == BDD_FALSE:
                return 0, num_vars
            if node == BDD_TRUE:
                return 1, num_vars
            if node in cache:
                return cache[node], self._var[node]
            low_count, low_var = walk(self._low[node])
            high_count, high_var = walk(self._high[node])
            var = self._var[node]
            low_count <<= low_var - var - 1
            high_count <<= high_var - var - 1
            total = low_count + high_count
            cache[node] = total
            return total, var

        count, top_var = walk(f)
        return count << top_var if f > 1 else count * (1 << num_vars) if f == 1 else 0

    def pick_cube(self, f: int) -> dict[int, bool] | None:
        """One satisfying partial assignment, or None if f is FALSE."""
        if f == BDD_FALSE:
            return None
        cube: dict[int, bool] = {}
        node = f
        while node > 1:
            var = self._var[node]
            if self._low[node] != BDD_FALSE:
                cube[var] = False
                node = self._low[node]
            else:
                cube[var] = True
                node = self._high[node]
        return cube

    def support(self, f: int) -> set[int]:
        """Variable indices appearing in the BDD."""
        seen: set[int] = set()
        variables: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            variables.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return variables

    def nodes_of(self, f: int) -> Iterator[tuple[int, int, int, int]]:
        """Yield ``(node, var, low, high)`` for every internal node under f."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            yield node, self._var[node], self._low[node], self._high[node]
            stack.append(self._low[node])
            stack.append(self._high[node])

    def cube(self, literals: Mapping[int, bool]) -> int:
        """The conjunction of variable literals (index -> polarity)."""
        result = BDD_TRUE
        for var in sorted(literals, reverse=True):
            if not 0 <= var < len(self._var_nodes):
                raise BddError(f"variable index {var} out of range")
            if literals[var]:
                result = self._make_node(var, BDD_FALSE, result)
            else:
                result = self._make_node(var, result, BDD_FALSE)
        return result

    # ------------------------------------------------------------------ #
    # Cache management
    # ------------------------------------------------------------------ #

    def _hit_counts(self) -> dict[str, int]:
        return {
            "ite": self._hits_ite,
            "and": self._hits_and,
            "or": self._hits_or,
            "xor": self._hits_xor,
            "not": self._hits_not,
            "exists": self._hits_exists,
            "and_exists": self._hits_and_exists,
        }

    def _miss_counts(self) -> dict[str, int]:
        return {
            "ite": self._misses_ite,
            "and": self._misses_and,
            "or": self._misses_or,
            "xor": self._misses_xor,
            "not": self._misses_not,
            "exists": self._misses_exists,
            "and_exists": self._misses_and_exists,
        }

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Per-operation cache statistics: hits, misses, entries, resets."""
        hits = self._hit_counts()
        misses = self._miss_counts()
        return {
            op: {
                "hits": hits[op],
                "misses": misses[op],
                "entries": len(self._caches[op]),
                "resets": self._resets[op],
            }
            for op in _OPS
        }

    def cache_summary(self) -> dict[str, float]:
        """Aggregate cache counters (for StatsBag-style reporting)."""
        hits = sum(self._hit_counts().values())
        misses = sum(self._miss_counts().values())
        lookups = hits + misses
        return {
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": hits / lookups if lookups else 0.0,
            "cache_entries": sum(len(c) for c in self._caches.values()),
            "cache_resets": sum(self._resets.values()),
        }

    def clear_caches(self) -> None:
        """Drop operation caches (unique table is kept — nodes stay valid)."""
        for cache in self._caches.values():
            cache.clear()

    def trim_caches(self, bound: int | None = None) -> int:
        """Clear every operation cache larger than ``bound`` entries.

        ``bound`` defaults to a quarter of ``max_cache_entries`` — calls
        between traversal frontier steps must trim *below* the hard bound
        that the operators' bounded-cache insert already enforces, or they
        would never fire.
        With neither set this is a no-op.  Returns the number of caches
        cleared.  Traversal engines call this between frontier steps so
        one long run cannot accumulate unbounded cache garbage.
        """
        if bound is None and self.max_cache_entries is not None:
            bound = self.max_cache_entries // 4
        if bound is None:
            return 0
        cleared = 0
        for op, cache in self._caches.items():
            if len(cache) > bound:
                cache.clear()
                self._resets[op] += 1
                cleared += 1
        return cleared
