"""A classic ROBDD manager with an optional node budget.

Nodes are integers; 0 and 1 are the terminals.  Internal nodes are
hash-consed triples ``(var, low, high)`` with ``low != high`` and variables
ordered along every path (``var`` strictly increases downward).  There are
no complement edges — negation is an ``ite`` — which keeps the
implementation small and the canonicity argument obvious.

The node budget exists for the BDD-sweeping use case: when constructing the
BDD of an AIG node overruns the budget, :class:`~repro.errors.BddLimitExceeded`
is raised and the sweeping engine falls back to a cut point, exactly the
"abandon and cut" behaviour of Kuehlmann-Krohm sweeping.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import BddError, BddLimitExceeded

BDD_FALSE = 0
BDD_TRUE = 1


class BddManager:
    """Hash-consed ROBDD manager.

    >>> mgr = BddManager()
    >>> x, y = mgr.new_var("x"), mgr.new_var("y")
    >>> f = mgr.and_(x, y)
    >>> mgr.evaluate(f, {0: True, 1: True})
    True
    >>> g = mgr.exists(f, [1])     # exists y . x AND y  ==  x
    >>> g == x
    True
    """

    def __init__(self, max_nodes: int | None = None) -> None:
        # Parallel arrays; slots 0/1 are the terminals (var = big sentinel).
        self._var: list[int] = [2**30, 2**30]
        self._low: list[int] = [-1, -1]
        self._high: list[int] = [-1, -1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._var_names: list[str] = []
        self._var_nodes: list[int] = []
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------ #
    # Variables and raw nodes
    # ------------------------------------------------------------------ #

    @property
    def num_vars(self) -> int:
        return len(self._var_names)

    @property
    def num_nodes(self) -> int:
        """Allocated node count (terminals included)."""
        return len(self._var)

    def new_var(self, name: str | None = None) -> int:
        """Append a variable at the bottom of the order; returns its node.

        Variable creation is exempt from the node budget: the budget guards
        against *function* blow-up during sweeping, and cut-point insertion
        itself must always be able to allocate a fresh variable.
        """
        index = len(self._var_names)
        self._var_names.append(name if name is not None else f"v{index}")
        node = self._make_node(index, BDD_FALSE, BDD_TRUE, exempt=True)
        self._var_nodes.append(node)
        return node

    def var_node(self, index: int) -> int:
        """The node for variable ``index`` (created via :meth:`new_var`)."""
        if not 0 <= index < len(self._var_nodes):
            raise BddError(f"variable index {index} out of range")
        return self._var_nodes[index]

    def var_name(self, index: int) -> str:
        return self._var_names[index]

    def var_of(self, node: int) -> int:
        """Top variable index of a node (error on terminals)."""
        if node <= 1:
            raise BddError("terminals have no top variable")
        return self._var[node]

    def low_of(self, node: int) -> int:
        return self._low[node]

    def high_of(self, node: int) -> int:
        return self._high[node]

    def _make_node(
        self, var: int, low: int, high: int, exempt: bool = False
    ) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if (
            not exempt
            and self.max_nodes is not None
            and len(self._var) >= self.max_nodes
        ):
            raise BddLimitExceeded(
                f"BDD node budget of {self.max_nodes} exhausted"
            )
        node = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    # ------------------------------------------------------------------ #
    # Core ITE
    # ------------------------------------------------------------------ #

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else — the single primitive everything else rides on."""
        # Terminal and simple cases.
        if f == BDD_TRUE:
            return g
        if f == BDD_FALSE:
            return h
        if g == h:
            return g
        if g == BDD_TRUE and h == BDD_FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        var = min(
            self._var[f], self._var[g], self._var[h]
        )
        f0, f1 = self._cofactors(f, var)
        g0, g1 = self._cofactors(g, var)
        h0, h1 = self._cofactors(h, var)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._make_node(var, low, high)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, var: int) -> tuple[int, int]:
        if node <= 1 or self._var[node] != var:
            return node, node
        return self._low[node], self._high[node]

    # ------------------------------------------------------------------ #
    # Boolean algebra
    # ------------------------------------------------------------------ #

    def not_(self, f: int) -> int:
        return self.ite(f, BDD_FALSE, BDD_TRUE)

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, BDD_FALSE)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, BDD_TRUE, g)

    def xor(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def xnor(self, f: int, g: int) -> int:
        return self.ite(f, g, self.not_(g))

    def implies(self, f: int, g: int) -> int:
        return self.ite(f, g, BDD_TRUE)

    def and_all(self, nodes: Iterable[int]) -> int:
        result = BDD_TRUE
        for node in nodes:
            result = self.and_(result, node)
            if result == BDD_FALSE:
                break
        return result

    def or_all(self, nodes: Iterable[int]) -> int:
        result = BDD_FALSE
        for node in nodes:
            result = self.or_(result, node)
            if result == BDD_TRUE:
                break
        return result

    # ------------------------------------------------------------------ #
    # Quantification, composition, restriction
    # ------------------------------------------------------------------ #

    def restrict(self, f: int, var: int, value: bool) -> int:
        """Cofactor w.r.t. one variable."""
        cache: dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= 1 or self._var[node] > var:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            if self._var[node] == var:
                result = self._high[node] if value else self._low[node]
            else:
                result = self._make_node(
                    self._var[node],
                    walk(self._low[node]),
                    walk(self._high[node]),
                )
            cache[node] = result
            return result

        return walk(f)

    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existential quantification over a set of variable indices."""
        result = f
        for var in sorted(set(variables), reverse=True):
            result = self._exists_one(result, var)
        return result

    def _exists_one(self, f: int, var: int) -> int:
        cache: dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= 1 or self._var[node] > var:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            if self._var[node] == var:
                result = self.or_(self._low[node], self._high[node])
            else:
                result = self._make_node(
                    self._var[node],
                    walk(self._low[node]),
                    walk(self._high[node]),
                )
            cache[node] = result
            return result

        return walk(f)

    def forall(self, f: int, variables: Iterable[int]) -> int:
        return self.not_(self.exists(self.not_(f), variables))

    def compose(self, f: int, substitution: Mapping[int, int]) -> int:
        """Simultaneous substitution of BDDs for variables.

        ``substitution`` maps variable indices to replacement BDD nodes.
        Implemented by Shannon expansion on every node, which is correct for
        simultaneous composition regardless of variable ordering.
        """
        cache: dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= 1:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            var = self._var[node]
            low = walk(self._low[node])
            high = walk(self._high[node])
            if var in substitution:
                selector = substitution[var]
            else:
                selector = self.var_node(var)
            result = self.ite(selector, high, low)
            cache[node] = result
            return result

        return walk(f)

    def rename(self, f: int, mapping: Mapping[int, int]) -> int:
        """Variable-to-variable renaming (indices to indices)."""
        return self.compose(
            f, {old: self.var_node(new) for old, new in mapping.items()}
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def evaluate(self, f: int, assignment: Mapping[int, bool]) -> bool:
        node = f
        while node > 1:
            var = self._var[node]
            node = self._high[node] if assignment.get(var, False) else self._low[node]
        return node == BDD_TRUE

    def size(self, f: int) -> int:
        """Number of internal nodes reachable from ``f``."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)

    def sat_count(self, f: int, num_vars: int | None = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables."""
        if num_vars is None:
            num_vars = self.num_vars
        cache: dict[int, int] = {}

        def walk(node: int) -> tuple[int, int]:
            """Returns (count over vars below node's var, node's var)."""
            if node == BDD_FALSE:
                return 0, num_vars
            if node == BDD_TRUE:
                return 1, num_vars
            if node in cache:
                return cache[node], self._var[node]
            low_count, low_var = walk(self._low[node])
            high_count, high_var = walk(self._high[node])
            var = self._var[node]
            low_count <<= low_var - var - 1
            high_count <<= high_var - var - 1
            total = low_count + high_count
            cache[node] = total
            return total, var

        count, top_var = walk(f)
        return count << top_var if f > 1 else count * (1 << num_vars) if f == 1 else 0

    def pick_cube(self, f: int) -> dict[int, bool] | None:
        """One satisfying partial assignment, or None if f is FALSE."""
        if f == BDD_FALSE:
            return None
        cube: dict[int, bool] = {}
        node = f
        while node > 1:
            var = self._var[node]
            if self._low[node] != BDD_FALSE:
                cube[var] = False
                node = self._low[node]
            else:
                cube[var] = True
                node = self._high[node]
        return cube

    def support(self, f: int) -> set[int]:
        """Variable indices appearing in the BDD."""
        seen: set[int] = set()
        variables: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            variables.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return variables

    def nodes_of(self, f: int) -> Iterator[tuple[int, int, int, int]]:
        """Yield ``(node, var, low, high)`` for every internal node under f."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            yield node, self._var[node], self._low[node], self._high[node]
            stack.append(self._low[node])
            stack.append(self._high[node])

    def cube(self, literals: Mapping[int, bool]) -> int:
        """The conjunction of variable literals (index -> polarity)."""
        result = BDD_TRUE
        for var in sorted(literals, reverse=True):
            node = self.var_node(var)
            literal = node if literals[var] else self.not_(node)
            result = self.and_(literal, result)
        return result

    def clear_caches(self) -> None:
        """Drop operation caches (unique table is kept — nodes stay valid)."""
        self._ite_cache.clear()
