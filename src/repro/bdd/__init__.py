"""Reduced Ordered Binary Decision Diagrams.

BDDs appear in two roles in the paper:

* as the canonical-representation *baseline* whose "well known memory
  explosion problem" motivates circuit-based state sets (the BDD
  reachability engine of :mod:`repro.mc.reach_bdd` is built on this
  package), and
* as a helper inside the merge phase — "BDD sweeping [Kuehlmann-Krohm] as a
  further enhancement of merge points detection" — where BDDs are grown
  under a node budget and abandoned past it (:class:`repro.errors.BddLimitExceeded`).
"""

from repro.bdd.manager import BddManager, BDD_FALSE, BDD_TRUE
from repro.bdd.from_aig import aig_to_bdd, bdd_to_aig

__all__ = ["BddManager", "BDD_FALSE", "BDD_TRUE", "aig_to_bdd", "bdd_to_aig"]
