"""Circuit-based quantification for unbounded model checking.

A from-scratch reproduction of Cabodi, Crivellari, Nocco, Quer,
"Circuit Based Quantification: Back to State Set Manipulation within
Unbounded Model Checking", DATE 2005 — plus every substrate the paper
relies on (CDCL and circuit SAT solvers, AIG and ROBDD packages, sweeping
engines, ATPG, benchmark circuits) and the engines it compares against
(BDD reachability, all-SAT pre-image, BMC, k-induction).

The three entry points most users want:

>>> from repro.circuits import generators
>>> from repro.mc import verify
>>> result = verify(generators.mod_counter(4, 10), method="reach_aig")
>>> result.status
<Status.PROVED: 'proved'>

* :func:`repro.mc.verify` — one front end over every registered engine;
* :class:`repro.api.Session` — the typed task API: engine registry,
  budgets, progress events, cancellation, shared result caching;
* :func:`repro.core.quantify_exists` — the paper's quantification engine
  on raw AIG edges;
* the ``repro`` console script — ``repro mc design.bench --property ok``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
