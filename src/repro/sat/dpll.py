"""A deliberately simple DPLL solver used as a correctness oracle.

No watched literals, no learning — just unit propagation, pure-literal
elimination and chronological backtracking.  Slow but easy to audit, which
is exactly what the test suite wants when cross-checking the CDCL engine.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.sat.cnf import CNF


class DpllSolver:
    """Reference DPLL solver over a :class:`CNF`.

    >>> f = CNF()
    >>> a, b = f.new_var(), f.new_var()
    >>> f.add_clause([a, b]); f.add_clause([-a]); f.add_clause([-b, a])
    >>> DpllSolver(f).solve()
    False
    """

    def __init__(self, cnf: CNF) -> None:
        self._cnf = cnf
        self.model: list[bool] = []

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Return True iff satisfiable; on success ``self.model`` is set."""
        clauses = [list(clause) for clause in self._cnf]
        for lit in assumptions:
            clauses.append([lit])
        assignment: dict[int, bool] = {}
        if self._search(clauses, assignment):
            self.model = [
                assignment.get(var, False)
                for var in range(1, self._cnf.num_vars + 1)
            ]
            return True
        self.model = []
        return False

    def _search(
        self, clauses: list[list[int]], assignment: dict[int, bool]
    ) -> bool:
        clauses = self._propagate(clauses, assignment)
        if clauses is None:
            return False
        if not clauses:
            return True
        var = abs(clauses[0][0])
        for value in (True, False):
            trial = dict(assignment)
            trial[var] = value
            branch = [list(c) for c in clauses]
            branch.append([var if value else -var])
            if self._search(branch, trial):
                assignment.clear()
                assignment.update(trial)
                return True
        return False

    @staticmethod
    def _propagate(
        clauses: list[list[int]], assignment: dict[int, bool]
    ) -> list[list[int]] | None:
        """Apply unit propagation; returns simplified clauses or None."""
        changed = True
        while changed:
            changed = False
            units = [c[0] for c in clauses if len(c) == 1]
            for unit in units:
                var, value = abs(unit), unit > 0
                if var in assignment and assignment[var] != value:
                    return None
                assignment[var] = value
            if units:
                simplified: list[list[int]] = []
                for clause in clauses:
                    reduced: list[int] = []
                    satisfied = False
                    for lit in clause:
                        var = abs(lit)
                        if var in assignment:
                            if assignment[var] == (lit > 0):
                                satisfied = True
                                break
                        else:
                            reduced.append(lit)
                    if satisfied:
                        continue
                    if not reduced:
                        return None
                    simplified.append(reduced)
                clauses = simplified
                changed = True
        return clauses


def brute_force_models(cnf: CNF) -> list[list[bool]]:
    """Enumerate all satisfying total assignments by exhaustion.

    Only usable for tiny formulas; the test oracle of last resort.
    """
    models = []
    n = cnf.num_vars
    for bits in range(1 << n):
        assignment = [(bits >> i) & 1 == 1 for i in range(n)]
        if cnf.evaluate(assignment):
            models.append(assignment)
    return models


def count_models(cnf: CNF) -> int:
    """Count satisfying assignments by exhaustion (tiny formulas only)."""
    return len(brute_force_models(cnf))
