"""Circuit-SAT: a justification-based solver operating directly on AIGs.

The paper's merge phase "presently rel[ies] on a general SAT solver, i.e.,
ZChaff, but we plan to experiment with circuit-SAT in the future".  This
module is that experiment: instead of Tseitin-encoding cones into CNF, the
solver branches and propagates on the AIG nodes themselves.

The algorithm is the classic justification-frontier search used by
circuit-based reasoning engines (Kuehlmann et al. [3]):

* every node carries a three-valued assignment (0 / 1 / unassigned);
* implication rules local to each AND node propagate values both forward
  (controlling fanin ``0`` forces the output to ``0``) and backward (an
  output at ``1`` forces both fanins to ``1``; an output at ``0`` with one
  satisfied fanin forces the other to ``0``);
* a node assigned ``0`` whose fanins are both unassigned is *unjustified*
  — the solver must decide which fanin explains the ``0``.  The set of
  such nodes is the justification frontier; the search is over (frontier
  node, branch) choices rather than over CNF variables.

Search is depth-first with chronological backtracking and an optional
conflict budget, mirroring the structure of circuit-SAT engines of the
paper's era (before CDCL-style learning migrated into circuit solvers).
For the factorized merge workflow the solver is persistent: the AIG may
grow between calls and each :meth:`CircuitSolver.solve` poses a fresh set
of objectives while reusing the fanout index built so far.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.aig.graph import Aig, edge_not
from repro.errors import SatError
from repro.sat.solver import SolveResult
from repro.util.stats import StatsBag


class CircuitSolver:
    """Justification-frontier SAT search over one AIG manager.

    >>> aig = Aig()
    >>> a, b = aig.add_input("a"), aig.add_input("b")
    >>> f = aig.and_(a, b)
    >>> solver = CircuitSolver(aig)
    >>> solver.solve([(f, True)])
    <SolveResult.SAT: 'sat'>
    >>> solver.model_inputs() == {a >> 1: True, b >> 1: True}
    True
    >>> solver.solve([(f, True), (a, False)])
    <SolveResult.UNSAT: 'unsat'>
    """

    def __init__(self, aig: Aig, conflict_budget: int | None = None) -> None:
        self.aig = aig
        self.conflict_budget = conflict_budget
        self.stats = StatsBag()
        # Fanout index: node -> AND nodes that reference it.  Built lazily
        # and extended on demand, so the AIG may grow between solve calls.
        self._fanouts: dict[int, list[int]] = {}
        self._fanouts_built_upto = 0
        # Per-call state.
        self._value: dict[int, bool] = {}
        self._trail: list[int] = []
        self._model: dict[int, bool] | None = None

    # ------------------------------------------------------------------ #
    # Fanout index
    # ------------------------------------------------------------------ #

    def _extend_fanouts(self) -> None:
        aig = self.aig
        for node in range(self._fanouts_built_upto, aig.num_nodes):
            if not aig.is_and(node):
                continue
            f0, f1 = aig.fanins(node)
            self._fanouts.setdefault(f0 >> 1, []).append(node)
            if (f1 >> 1) != (f0 >> 1):
                self._fanouts.setdefault(f1 >> 1, []).append(node)
        self._fanouts_built_upto = aig.num_nodes

    # ------------------------------------------------------------------ #
    # Three-valued helpers
    # ------------------------------------------------------------------ #

    def _edge_value(self, edge: int) -> bool | None:
        node = edge >> 1
        if node == 0:
            return bool(edge & 1)
        value = self._value.get(node)
        if value is None:
            return None
        return value ^ bool(edge & 1)

    def _assign_edge(self, edge: int, value: bool, queue: list[int]) -> bool:
        """Set ``edge`` to ``value``; False signals a conflict."""
        node = edge >> 1
        want = value ^ bool(edge & 1)
        if node == 0:
            return want is False  # constant node is FALSE
        current = self._value.get(node)
        if current is not None:
            return current == want
        self._value[node] = want
        self._trail.append(node)
        queue.append(node)
        return True

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #

    def _propagate(self, queue: list[int]) -> bool:
        """Run implication rules to fixpoint; False signals a conflict."""
        aig = self.aig
        while queue:
            node = queue.pop()
            touched = [node]
            touched.extend(self._fanouts.get(node, ()))
            for and_node in touched:
                if not aig.is_and(and_node):
                    continue
                if not self._imply_and(and_node, queue):
                    return False
        return True

    def _imply_and(self, node: int, queue: list[int]) -> bool:
        """Apply all local implication rules of one AND node."""
        f0, f1 = self.aig.fanins(node)
        out = self._value.get(node)
        v0 = self._edge_value(f0)
        v1 = self._edge_value(f1)
        # Forward rules.
        if v0 is False or v1 is False:
            if out is None:
                return self._assign_edge(2 * node, False, queue)
            return out is False
        if v0 is True and v1 is True:
            if out is None:
                return self._assign_edge(2 * node, True, queue)
            return out is True
        # Backward rules.
        if out is True:
            if v0 is None and not self._assign_edge(f0, True, queue):
                return False
            if v1 is None and not self._assign_edge(f1, True, queue):
                return False
            return True
        if out is False:
            # One satisfied fanin forces the other to 0.
            if v0 is True and v1 is None:
                return self._assign_edge(f1, False, queue)
            if v1 is True and v0 is None:
                return self._assign_edge(f0, False, queue)
        return True

    # ------------------------------------------------------------------ #
    # Justification frontier
    # ------------------------------------------------------------------ #

    def _find_unjustified(self, cone_order: Sequence[int]) -> int | None:
        """An assigned-0 AND node with both fanins still free, if any.

        ``cone_order`` is scanned from the outputs down (reverse topological
        order) so decisions stay close to the objectives — the circuit-SAT
        analogue of the paper's "few checks on the output region".
        """
        for node in cone_order:
            if self._value.get(node) is not False:
                continue
            if not self.aig.is_and(node):
                continue
            f0, f1 = self.aig.fanins(node)
            if self._edge_value(f0) is None and self._edge_value(f1) is None:
                return node
        return None

    # ------------------------------------------------------------------ #
    # Public interface
    # ------------------------------------------------------------------ #

    def solve(
        self,
        objectives: Iterable[tuple[int, bool]],
        conflict_budget: int | None = None,
    ) -> SolveResult:
        """Search for an input assignment meeting all ``(edge, value)`` goals.

        Returns :data:`SolveResult.SAT` (model available through
        :meth:`model_inputs`), :data:`SolveResult.UNSAT`, or
        :data:`SolveResult.UNKNOWN` when the conflict budget runs out.
        """
        objectives = list(objectives)
        budget = (
            conflict_budget if conflict_budget is not None
            else self.conflict_budget
        )
        self._extend_fanouts()
        self._value = {}
        self._trail = []
        self._model = None
        self.stats.incr("solve_calls")

        queue: list[int] = []
        for edge, value in objectives:
            if not self._assign_edge(edge, value, queue):
                return SolveResult.UNSAT
        if not self._propagate(queue):
            return SolveResult.UNSAT

        cone_order = list(
            reversed(self.aig.cone([edge for edge, _ in objectives]))
        )
        # Each frame: (trail length, frontier node, branches left to try).
        stack: list[tuple[int, int, list[int]]] = []
        conflicts = 0
        while True:
            node = self._find_unjustified(cone_order)
            if node is None:
                self._model = self._extract_model(objectives)
                return SolveResult.SAT
            f0, f1 = self.aig.fanins(node)
            stack.append((len(self._trail), node, [f1]))
            if not self._try_branch(f0):
                while True:
                    conflicts += 1
                    self.stats.incr("conflicts")
                    if budget is not None and conflicts >= budget:
                        return SolveResult.UNKNOWN
                    if not stack:
                        return SolveResult.UNSAT
                    mark, node, alternatives = stack[-1]
                    self._undo_to(mark)
                    if not alternatives:
                        stack.pop()
                        continue
                    branch = alternatives.pop()
                    if self._try_branch(branch):
                        break

    def _try_branch(self, edge_at_zero: int) -> bool:
        """Decide that ``edge_at_zero`` is 0, justifying an output-0 node."""
        self.stats.incr("decisions")
        queue: list[int] = []
        if not self._assign_edge(edge_at_zero, False, queue):
            return False
        return self._propagate(queue)

    def _undo_to(self, mark: int) -> None:
        while len(self._trail) > mark:
            self._value.pop(self._trail.pop(), None)

    def _extract_model(
        self, objectives: Sequence[tuple[int, bool]]
    ) -> dict[int, bool]:
        """Input assignment from the current (fully justified) state.

        Unassigned inputs are don't-cares; they default to False so the
        model is total over the objective cones.
        """
        model: dict[int, bool] = {}
        for node in self.aig.cone([edge for edge, _ in objectives]):
            if self.aig.is_input(node):
                model[node] = self._value.get(node, False)
        return model

    def model_inputs(self) -> dict[int, bool]:
        """The satisfying input assignment of the last SAT solve call."""
        if self._model is None:
            raise SatError("no model available (last solve was not SAT)")
        return dict(self._model)

    # ------------------------------------------------------------------ #
    # Equivalence checking on top of the raw search
    # ------------------------------------------------------------------ #

    def check_equal(
        self, a: int, b: int, conflict_budget: int | None = None
    ) -> bool | None:
        """Is ``a == b`` for all inputs?  True / False / None (budget out).

        Posed as two miter-free searches (``a=1,b=0`` and ``a=0,b=1``) so no
        XOR nodes are added to the managed AIG — the solver never grows the
        circuit it is reasoning about.
        """
        if a == b:
            return True
        if a == edge_not(b):
            return False
        self.stats.incr("equal_checks")
        first = self.solve([(a, True), (b, False)], conflict_budget)
        if first is SolveResult.SAT:
            return False
        second = self.solve([(a, False), (b, True)], conflict_budget)
        if second is SolveResult.SAT:
            return False
        if first is SolveResult.UNSAT and second is SolveResult.UNSAT:
            return True
        return None

    def check_constant(
        self, edge: int, value: bool, conflict_budget: int | None = None
    ) -> bool | None:
        """Is ``edge`` constantly ``value``?  True / False / None."""
        result = self.solve([(edge, not value)], conflict_budget)
        if result is SolveResult.UNSAT:
            return True
        if result is SolveResult.SAT:
            return False
        return None


def solve_edge(
    aig: Aig,
    edge: int,
    value: bool = True,
    conflict_budget: int | None = None,
) -> tuple[SolveResult, dict[int, bool] | None]:
    """One-shot satisfiability of ``edge == value`` with the circuit solver.

    Returns ``(result, model)`` where ``model`` maps input nodes to values
    on SAT and is ``None`` otherwise.
    """
    solver = CircuitSolver(aig)
    result = solver.solve([(edge, value)], conflict_budget)
    model = solver.model_inputs() if result is SolveResult.SAT else None
    return result, model


def prove_edges_equivalent_circuit(
    aig: Aig,
    a: int,
    b: int,
    conflict_budget: int | None = None,
) -> tuple[bool | None, dict[int, bool] | None]:
    """Circuit-SAT twin of :func:`repro.sweep.satsweep.prove_edges_equivalent`.

    Same contract: ``(verdict, counterexample)`` with verdict ``True``
    (equal), ``False`` (different, with a distinguishing assignment) or
    ``None`` (budget exhausted).
    """
    solver = CircuitSolver(aig)
    if a == b:
        return True, None
    if a == edge_not(b):
        result = solver.solve([(a, True)], conflict_budget)
        if result is SolveResult.SAT:
            return False, solver.model_inputs()
        result = solver.solve([(a, False)], conflict_budget)
        if result is SolveResult.SAT:
            return False, solver.model_inputs()
        return None, None  # pragma: no cover - complement pair always differs
    first = solver.solve([(a, True), (b, False)], conflict_budget)
    if first is SolveResult.SAT:
        return False, solver.model_inputs()
    second = solver.solve([(a, False), (b, True)], conflict_budget)
    if second is SolveResult.SAT:
        return False, solver.model_inputs()
    if first is SolveResult.UNSAT and second is SolveResult.UNSAT:
        return True, None
    return None, None


def enumerate_satisfying_assignments(
    aig: Aig,
    edge: int,
    input_nodes: Sequence[int],
    limit: int | None = None,
) -> list[dict[int, bool]]:
    """All total assignments of ``input_nodes`` satisfying ``edge``.

    A testing aid (exhaustive over the given inputs, so keep them few):
    each model from the circuit solver is expanded over its don't-care
    inputs and blocked via explicit enumeration.
    """
    if len(input_nodes) > 20:
        raise SatError(
            "enumerate_satisfying_assignments supports at most 20 inputs"
        )
    from repro.aig.simulate import eval_edge

    models: list[dict[int, bool]] = []
    for bits in range(1 << len(input_nodes)):
        assignment = {
            node: bool((bits >> k) & 1)
            for k, node in enumerate(input_nodes)
        }
        if eval_edge(aig, edge, assignment):
            models.append(assignment)
            if limit is not None and len(models) >= limit:
                break
    return models
