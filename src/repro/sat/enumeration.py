"""All-solutions SAT: model enumeration with blocking clauses.

This is the substrate for the SAT-based pre-image of Ganai et al. that
Section 4 of the paper combines with circuit quantification.  Models are
enumerated projected onto a chosen set of *important* variables; each model
is blocked by adding the negation of its projected cube.

Cube *generalization* at the CNF level is optional literal dropping: a
literal can be removed from the blocking cube when the remaining cube still
cannot be extended to a new solution class.  The stronger circuit-cofactoring
generalization lives at the AIG level in :mod:`repro.mc.preimage_sat`.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.errors import SatError
from repro.sat.cnf import CNF
from repro.sat.solver import Solver, SolveResult

Cube = tuple[int, ...]


def enumerate_models(
    cnf: CNF,
    max_models: int | None = None,
) -> Iterator[list[bool]]:
    """Yield every satisfying total assignment of ``cnf``.

    Each model is blocked in full, so the iteration terminates after at most
    2^n models.
    """
    solver = Solver(cnf)
    produced = 0
    while True:
        if max_models is not None and produced >= max_models:
            return
        if solver.solve() is not SolveResult.SAT:
            return
        model = solver.model
        yield model
        produced += 1
        blocking = [
            -(var + 1) if model[var] else (var + 1)
            for var in range(cnf.num_vars)
        ]
        if not solver.add_clause(blocking):
            return


def enumerate_projected_cubes(
    cnf: CNF,
    important_vars: Sequence[int],
    max_cubes: int | None = None,
    generalize: Callable[[Solver, Cube], Cube] | None = None,
) -> Iterator[Cube]:
    """Yield cubes over ``important_vars`` covering all solutions.

    Every satisfying assignment of ``cnf`` agrees with at least one yielded
    cube on the important variables.  Cubes are disjoint unless a
    ``generalize`` callback widens them (widened cubes may overlap earlier
    ones but never re-cover: each is blocked as yielded).

    ``generalize`` receives the solver (holding the full model) and the
    full projected cube, and must return a sub-cube that still implies the
    formula's satisfiability region it came from; the returned cube is what
    gets yielded and blocked.
    """
    for var in important_vars:
        if not 1 <= var <= cnf.num_vars:
            raise SatError(f"important variable {var} out of range")
    solver = Solver(cnf)
    produced = 0
    while True:
        if max_cubes is not None and produced >= max_cubes:
            return
        if solver.solve() is not SolveResult.SAT:
            return
        cube: Cube = tuple(
            var if solver.value(var) else -var for var in important_vars
        )
        if generalize is not None:
            cube = generalize(solver, cube)
            if not cube:
                raise SatError("generalization returned an empty cube")
        yield cube
        produced += 1
        if not solver.add_clause([-lit for lit in cube]):
            return


def drop_literals_generalizer(
    check: Callable[[Cube], bool],
) -> Callable[[Solver, Cube], Cube]:
    """Build a generalizer that greedily drops literals from a cube.

    ``check(cube)`` must return True when the (sub-)cube is still entirely
    contained in the solution region being enumerated.  The greedy loop
    keeps a literal only when dropping it breaks containment.
    """

    def generalize(solver: Solver, cube: Cube) -> Cube:
        current = list(cube)
        index = 0
        while index < len(current) and len(current) > 1:
            candidate = current[:index] + current[index + 1:]
            if check(tuple(candidate)):
                current = candidate
            else:
                index += 1
        return tuple(current)

    return generalize
