"""SAT substrate: CNF formulas and solvers.

The paper relies on ZChaff for the SAT-based merge checks of Section 2.1 and
for all fix-point / intersection tests of the traversal routine (Section 3).
This package provides the stand-in: a CDCL solver
(:class:`repro.sat.solver.Solver`) with an assumption-based incremental
interface so that "several checks [are factorized] together within a single
run" exactly as the paper describes, a slow reference DPLL solver used as a
test oracle, and an all-solutions enumerator used by the SAT-based pre-image
engine.
"""

from repro.sat.cnf import CNF, Clause, lit_to_dimacs, neg
from repro.sat.solver import ProofLog, Solver, SolveResult
from repro.sat.dpll import DpllSolver
from repro.sat.enumeration import enumerate_models, enumerate_projected_cubes
from repro.sat.circuit import CircuitSolver, prove_edges_equivalent_circuit

__all__ = [
    "CNF",
    "Clause",
    "ProofLog",
    "Solver",
    "SolveResult",
    "DpllSolver",
    "CircuitSolver",
    "prove_edges_equivalent_circuit",
    "enumerate_models",
    "enumerate_projected_cubes",
    "lit_to_dimacs",
    "neg",
]
