"""CDCL SAT solver with an incremental, assumption-based interface.

This is the ZChaff stand-in for the paper.  The features the paper's
SAT-merge routine depends on are all here:

* the clause database is loaded once and *persists across calls* —
  ``solve`` may be invoked any number of times, and new clauses may be
  added between calls ("we load the clause database once and for-all");
* each equivalence check is posed as a set of *assumption* literals, so
  several checks are factorized within a single solver instance without
  restarting ("we factorize several checks together within a single
  ZChaff run");
* on UNSAT under assumptions, the subset of assumptions actually used is
  reported (``failed_assumptions`` / ``core``), letting one UNSAT verdict
  cover many matching points.

Architecture is classic MiniSat-style CDCL: two-literal watches, VSIDS
decision heuristic with an indexed max-heap, phase saving, first-UIP conflict
analysis with clause minimization, Luby restarts and LBD-guided learned
clause database reduction.

Memory layout is flat-array, not object-per-clause: the whole clause
database lives in one integer *arena* (``_arena``) addressed by per-clause
``(_cbase, _csize)`` offset/length columns, watch lists are per-literal
integer vectors of clause indices compacted in place during propagation,
and the trail/reason/level/value columns are flat integer
buffers indexed by variable.  A deleted clause is ``_csize == 0``; its
arena slots are reclaimed wholesale when deletions pass a garbage
threshold (clause indices are stable — only base offsets move).  The
layout keeps the CPython hot loop free of per-visit allocations (no
rebuilt watch lists, no clause objects) and is the shape an optional
compiled backend can consume without any engine-visible change.

Phase saving is explicit and controllable: ``Solver(phase_saving=False)``
freezes branching polarities at their defaults (or whatever
:meth:`Solver.set_polarity` pinned), instead of re-using the polarity of
the last unwound assignment.  Incremental workloads that pose long runs
of near-identical queries — IC3/PDR frame queries, interpolation rounds —
keep it on so each solve resumes near the previous one's assignment.

Clauses can also be *removable*: :meth:`Solver.add_removable_clause`
attaches a fresh activation literal to the clause, the clause only
participates in a ``solve`` whose assumptions include that literal, and
:meth:`Solver.retire_clause` permanently disables it.  This is the
add/retire lifecycle PDR's per-frame lemma databases need without ever
rebuilding CNF.

With ``Solver(proof=True)`` every learned clause additionally records its
resolution chain (antecedent proof-node ids, in trail order), level-0
implied units record theirs, and an UNSAT verdict records the final
conflict resolution — the empty clause outright, or the clause over the
negated failing assumptions.  The resulting :class:`ProofLog` is the input
of the independent checker and the interpolant extractor in
:mod:`repro.itp`.  Proof recording never changes the search (decisions,
conflicts and restarts are identical with and without it) and costs one
predicted branch per implication when disabled.
"""

from __future__ import annotations

import enum
from time import perf_counter
from typing import Iterable, Sequence

from repro.errors import SatError
from repro.obs import metrics as _met
from repro.obs import probes as _obs
from repro.sat.cnf import CNF

# Internal literal encoding: variable v in [0, n) maps to literals 2*v
# (positive) and 2*v+1 (negative).  DIMACS literal d maps to
# 2*(|d|-1) + (d < 0).
_UNASSIGNED = 2


def _to_internal(dimacs_lit: int) -> int:
    if dimacs_lit == 0:
        raise SatError("literal 0 is not a valid DIMACS literal")
    var = abs(dimacs_lit) - 1
    return 2 * var + (1 if dimacs_lit < 0 else 0)


def _to_dimacs(internal_lit: int) -> int:
    var = (internal_lit >> 1) + 1
    return -var if internal_lit & 1 else var


class SolveResult(enum.Enum):
    """Outcome of a ``solve`` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        # Convenience: ``if solver.solve():`` means "is satisfiable".
        return self is SolveResult.SAT


class ProofLog:
    """A resolution-refutation record in DIMACS literals.

    Node ``i`` carries a clause ``literals[i]`` and an antecedent chain
    ``chains[i]``.  An empty chain marks an axiom (an original clause as
    given to ``add_clause``); a non-empty chain derives the clause by
    resolving ``chains[i][0]`` with each subsequent antecedent in order,
    on exactly one pivot per step.  All antecedent ids are smaller than
    ``i``, so the log is topologically sorted by construction.

    ``root`` is the id of the derived empty clause (set when the database
    is refuted outright); ``final`` is the clause concluding the most
    recent UNSAT verdict — the empty clause, or the negation of the
    failing assumption subset.  ``final`` is ``None`` for the one
    underivable case: two directly complementary assumptions, whose
    "core clause" would be a tautology.
    """

    __slots__ = ("literals", "chains", "root", "final")

    def __init__(self) -> None:
        self.literals: list[tuple[int, ...]] = []
        self.chains: list[tuple[int, ...]] = []
        self.root: int | None = None
        self.final: int | None = None

    def append(self, literals: tuple[int, ...], chain: tuple[int, ...]) -> int:
        self.literals.append(literals)
        self.chains.append(chain)
        return len(self.literals) - 1

    def __len__(self) -> int:
        return len(self.literals)


class _VarOrder:
    """Indexed binary max-heap over variable activities (MiniSat's order)."""

    __slots__ = ("activity", "heap", "pos")

    def __init__(self, activity: list[float]) -> None:
        self.activity = activity
        self.heap: list[int] = []
        self.pos: list[int] = []

    def grow(self, nvars: int) -> None:
        while len(self.pos) < nvars:
            self.pos.append(-1)
            self.insert(len(self.pos) - 1)

    def _swap(self, i: int, j: int) -> None:
        heap, pos = self.heap, self.pos
        heap[i], heap[j] = heap[j], heap[i]
        pos[heap[i]] = i
        pos[heap[j]] = j

    def _sift_up(self, i: int) -> None:
        heap, act = self.heap, self.activity
        while i > 0:
            parent = (i - 1) >> 1
            if act[heap[i]] > act[heap[parent]]:
                self._swap(i, parent)
                i = parent
            else:
                break

    def _sift_down(self, i: int) -> None:
        heap, act = self.heap, self.activity
        size = len(heap)
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            right = left + 1
            best = left
            if right < size and act[heap[right]] > act[heap[left]]:
                best = right
            if act[heap[best]] > act[heap[i]]:
                self._swap(i, best)
                i = best
            else:
                break

    def insert(self, var: int) -> None:
        if self.pos[var] != -1:
            return
        self.heap.append(var)
        self.pos[var] = len(self.heap) - 1
        self._sift_up(len(self.heap) - 1)

    def pop_max(self) -> int:
        heap, pos = self.heap, self.pos
        top = heap[0]
        last = heap.pop()
        pos[top] = -1
        if heap:
            heap[0] = last
            pos[last] = 0
            self._sift_down(0)
        return top

    def bumped(self, var: int) -> None:
        if self.pos[var] != -1:
            self._sift_up(self.pos[var])

    def __bool__(self) -> bool:
        return bool(self.heap)


def _luby(i: int) -> int:
    """The i-th element (0-based) of the Luby sequence 1,1,2,1,1,2,4,...

    Classic MiniSat formulation: find the smallest complete binary
    subsequence containing position ``i`` and recurse into it.
    """
    size, seq = 1, 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) >> 1
        seq -= 1
        i = i % size
    return 1 << seq


class Solver:
    """Incremental CDCL solver over DIMACS-style literals.

    >>> s = Solver()
    >>> a, b = s.new_var(), s.new_var()
    >>> s.add_clause([a, b])
    >>> s.add_clause([-a, b])
    >>> s.solve()
    <SolveResult.SAT: 'sat'>
    >>> s.value(b)
    True
    >>> s.solve(assumptions=[-b])
    <SolveResult.UNSAT: 'unsat'>
    >>> s.solve()          # the database is untouched by assumptions
    <SolveResult.SAT: 'sat'>
    """

    def __init__(
        self,
        cnf: CNF | None = None,
        proof: bool = False,
        phase_saving: bool = True,
    ) -> None:
        self._nvars = 0
        self._phase_saving = phase_saving
        # Per-variable state.
        self._values = bytearray()        # _UNASSIGNED / 1 (true) / 0 (false)
        self._levels: list[int] = []
        self._reasons: list[int] = []     # clause index or -1
        self._activity: list[float] = []
        self._polarity: list[int] = []    # saved phase, 1 = assign true
        self._order = _VarOrder(self._activity)
        # Clause arena: one flat literal buffer, offset/length per clause.
        # A deleted clause has _csize == 0 (its arena slots are garbage
        # until _compact_arena reclaims them).
        self._arena: list[int] = []
        self._cbase: list[int] = []
        self._csize: list[int] = []
        self._arena_garbage = 0
        self._learnt_flags: list[bool] = []
        self._lbd: list[int] = []
        self._learnt_ids: list[int] = []
        # Per-literal watch vectors: flat clause-index lists, compacted in
        # place during propagation.
        self._watches: list[list[int]] = []
        # Trail.
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        # Heuristic parameters.
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._restart_base = 100
        self._ok = True
        self._model: list[bool] = []
        self._failed_assumptions: list[int] = []
        self._core: tuple[int, ...] | None = None
        # Proof logging (all None/unused when disabled).
        self._proof = ProofLog() if proof else None
        self._proof_clause_ids: list[int] = []   # arena index -> proof id
        self._proof_units: dict[int, int] = {}   # level-0 internal lit -> id
        self._last_learnt_proof_id = -1
        # Statistics.
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.db_reductions = 0
        self.solve_calls = 0
        if cnf is not None:
            self.add_cnf(cnf)

    # ------------------------------------------------------------------ #
    # Problem construction
    # ------------------------------------------------------------------ #

    @property
    def num_vars(self) -> int:
        return self._nvars

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its positive DIMACS literal."""
        self._nvars += 1
        self._values.append(_UNASSIGNED)
        self._levels.append(0)
        self._reasons.append(-1)
        self._activity.append(0.0)
        self._polarity.append(0)
        self._watches.append([])
        self._watches.append([])
        self._order.grow(self._nvars)
        return self._nvars

    def _ensure_var(self, var: int) -> None:
        while self._nvars < var:
            self.new_var()

    def add_cnf(self, cnf: CNF) -> None:
        self._ensure_var(cnf.num_vars)
        for clause in cnf:
            self.add_clause(clause)

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause (DIMACS literals).

        Returns ``False`` if the database became trivially unsatisfiable.
        May only be called at decision level 0, which is where ``solve``
        always leaves the solver.
        """
        if self._trail_lim:
            raise SatError("clauses may only be added at decision level 0")
        if not self._ok:
            return False
        # Single pass: DIMACS -> internal encoding, dedup, max-var, all
        # inline (this is the clause-loading hot path of the unrollers).
        internal_set: set[int] = set()
        max_var = 0
        for lit in lits:
            if lit > 0:
                if lit > max_var:
                    max_var = lit
                internal_set.add(lit + lit - 2)
            elif lit < 0:
                if -lit > max_var:
                    max_var = -lit
                internal_set.add(-lit - lit - 1)
            else:
                raise SatError("literal 0 is not a valid DIMACS literal")
        if max_var > self._nvars:
            self._ensure_var(max_var)
        internal = sorted(internal_set)
        # Tautology and level-0 simplification.
        simplified: list[int] = []
        removed: list[int] = []   # literals false at level 0
        satisfied = False
        previous = -1
        values = self._values
        for lit in internal:
            if lit == previous ^ 1 and previous != -1:
                return True  # contains x and ~x: no proof obligation either
            value = values[lit >> 1]
            if value == 2:
                simplified.append(lit)
            elif value ^ (lit & 1) == 1:
                satisfied = True
            else:
                removed.append(lit)
            previous = lit
        proof_id = -1
        if self._proof is not None:
            # The clause as given is an axiom; if level-0 units deleted
            # literals, the attached clause is derived by resolving the
            # axiom with each deleted literal's unit.
            proof_id = self._proof.append(
                tuple(_to_dimacs(lit) for lit in internal), ()
            )
            if removed and not satisfied:
                chain = (proof_id,) + tuple(
                    self._proof_units[lit ^ 1] for lit in removed
                )
                proof_id = self._proof.append(
                    tuple(_to_dimacs(lit) for lit in simplified), chain
                )
        if satisfied:
            return True  # already satisfied at level 0
        if not simplified:
            self._ok = False
            if self._proof is not None:
                self._proof.root = proof_id
                self._proof.final = proof_id
            return False
        if len(simplified) == 1:
            if self._proof is not None:
                self._proof_units[simplified[0]] = proof_id
            self._enqueue(simplified[0], -1)
            conflict = self._propagate()
            if conflict != -1:
                self._ok = False
                if self._proof is not None:
                    self._log_level0_conflict(conflict)
                return False
            return True
        self._attach_clause(simplified, learnt=False, lbd=0,
                            proof_id=proof_id)
        return True

    def add_removable_clause(self, lits: Iterable[int]) -> int:
        """Add a clause guarded by a fresh activation literal.

        Returns the (positive DIMACS) activation literal: the clause only
        constrains a ``solve`` whose assumptions include it, and
        :meth:`retire_clause` disables it permanently.  If the clause is
        already falsified by level-0 facts, assuming the activation
        literal simply yields UNSAT with the literal in the core — the
        caller-visible behavior stays uniform.
        """
        activation = self.new_var()
        self.add_clause(list(lits) + [-activation])
        return activation

    def retire_clause(self, activation: int) -> None:
        """Permanently disable a clause added by ``add_removable_clause``.

        The activation variable is pinned false, which satisfies the
        guarded clause outright; the slot is reclaimed lazily by watch
        cleanup.  Never reuse a retired activation literal.
        """
        self.add_clause([-activation])

    def set_polarity(self, var: int, value: bool) -> None:
        """Pin the branching polarity of ``var`` (a positive variable).

        The next decision on ``var`` assigns ``value`` first.  With phase
        saving enabled the hint lasts until the search overwrites it;
        with ``phase_saving=False`` it is permanent.
        """
        if not 1 <= var <= self._nvars:
            raise SatError(f"variable {var} out of range")
        self._polarity[var - 1] = 1 if value else 0

    def _attach_clause(
        self, lits: list[int], learnt: bool, lbd: int, proof_id: int = -1
    ) -> int:
        index = len(self._cbase)
        arena = self._arena
        self._cbase.append(len(arena))
        self._csize.append(len(lits))
        arena.extend(lits)
        self._learnt_flags.append(learnt)
        self._lbd.append(lbd)
        self._watches[lits[0]].append(index)
        self._watches[lits[1]].append(index)
        if learnt:
            self._learnt_ids.append(index)
            self.learned_clauses += 1
        if self._proof is not None:
            self._proof_clause_ids.append(proof_id)
        return index

    def _clause_lits(self, ci: int) -> list[int]:
        """The live literals of clause ``ci`` (an arena slice)."""
        base = self._cbase[ci]
        return self._arena[base:base + self._csize[ci]]

    # ------------------------------------------------------------------ #
    # Assignment primitives
    # ------------------------------------------------------------------ #

    def _lit_value(self, lit: int) -> int:
        value = self._values[lit >> 1]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value ^ (lit & 1)

    def _enqueue(self, lit: int, reason: int) -> None:
        var = lit >> 1
        self._values[var] = 1 ^ (lit & 1)
        self._levels[var] = len(self._trail_lim)
        self._reasons[var] = reason
        self._trail.append(lit)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        values, polarity, order = self._values, self._polarity, self._order
        save_phases = self._phase_saving
        target = self._trail_lim[level]
        trail = self._trail
        for i in range(len(trail) - 1, target - 1, -1):
            lit = trail[i]
            var = lit >> 1
            if save_phases:
                polarity[var] = values[var]
            values[var] = _UNASSIGNED
            self._reasons[var] = -1
            order.insert(var)
        del trail[target:]
        del self._trail_lim[level:]
        self._qhead = len(trail)

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #

    def _propagate(self) -> int:
        """Unit propagation.  Returns a conflicting clause index or -1.

        The hot loop of the solver.  Everything it touches is a flat int
        buffer aliased to a local: the clause arena, the per-literal watch
        vectors (compacted in place with a write pointer — no list is ever
        rebuilt or reallocated), the value/level/reason columns and the
        trail.  Binary clauses resolve without a replacement scan, and the
        implied-literal enqueue is inlined.  Clause visit order, literal
        reordering inside the arena and watch-list movement are exactly
        the reference two-watched-literal scheme, so search trajectories
        are reproducible run to run.
        """
        arena = self._arena
        cbase = self._cbase
        csize = self._csize
        watches = self._watches
        values = self._values
        levels = self._levels
        reasons = self._reasons
        trail = self._trail
        level = len(self._trail_lim)
        qhead = self._qhead
        propagated = 0
        # Proof mode: implications at decision level 0 are permanent facts
        # whose derivations later chains resolve against, so each gets its
        # own proof node.  One dead branch per implication when disabled.
        log_units = self._proof is not None and level == 0
        while qhead < len(trail):
            p = trail[qhead]
            qhead += 1
            propagated += 1
            false_lit = p ^ 1
            watch_list = watches[false_lit]
            i = j = 0
            n = len(watch_list)
            while i < n:
                ci = watch_list[i]
                i += 1
                size = csize[ci]
                if size == 0:
                    continue  # lazily drop watches of deleted clauses
                base = cbase[ci]
                first = arena[base]
                if first == false_lit:
                    first = arena[base + 1]
                    arena[base] = first
                    arena[base + 1] = false_lit
                fv = values[first >> 1]
                if fv != 2 and fv ^ (first & 1) == 1:
                    watch_list[j] = ci
                    j += 1
                    continue
                if size > 2:
                    moved = False
                    for k in range(base + 2, base + size):
                        lit = arena[k]
                        lv = values[lit >> 1]
                        if lv == 2 or lv ^ (lit & 1) == 1:
                            arena[base + 1] = lit
                            arena[k] = false_lit
                            watches[lit].append(ci)
                            moved = True
                            break
                    if moved:
                        continue
                watch_list[j] = ci
                j += 1
                if fv != 2:  # first is false: conflict
                    while i < n:
                        watch_list[j] = watch_list[i]
                        i += 1
                        j += 1
                    del watch_list[j:]
                    self._qhead = qhead
                    self.propagations += propagated
                    return ci
                if log_units:
                    self._log_level0_unit(first, ci)
                var = first >> 1
                values[var] = 1 ^ (first & 1)
                levels[var] = level
                reasons[var] = ci
                trail.append(first)
            del watch_list[j:]
        self._qhead = qhead
        self.propagations += propagated
        return -1

    # ------------------------------------------------------------------ #
    # Proof logging (every method here is only reached with proof=True)
    # ------------------------------------------------------------------ #

    def _log_level0_unit(self, lit: int, ci: int) -> None:
        """Record the derivation of a literal implied at decision level 0.

        The implying clause is resolved with the unit of every other (all
        level-0-false) literal it contains, leaving the unit ``(lit)``.
        """
        chain = [self._proof_clause_ids[ci]]
        base = self._cbase[ci]
        for k in range(base, base + self._csize[ci]):
            other = self._arena[k]
            if other != lit:
                chain.append(self._proof_units[other ^ 1])
        self._proof_units[lit] = self._proof.append(
            (_to_dimacs(lit),), tuple(chain)
        )

    def _log_level0_conflict(self, ci: int) -> None:
        """Record the empty clause from a conflict at decision level 0."""
        chain = [self._proof_clause_ids[ci]]
        base = self._cbase[ci]
        for k in range(base, base + self._csize[ci]):
            chain.append(self._proof_units[self._arena[k] ^ 1])
        root = self._proof.append((), tuple(chain))
        self._proof.root = root
        self._proof.final = root

    def _log_learnt(
        self, chain_cis: list[int], removed: list[int], learnt: list[int]
    ) -> int:
        """Record a learned clause's resolution chain.

        ``chain_cis`` holds the conflict clause and the reason clauses in
        first-UIP merge order; ``removed`` the literals deleted by clause
        minimization.  Each removed literal resolves against its own
        reason (latest-assigned first, so a literal such a step
        re-introduces is still eliminated afterwards), and any level-0
        literal picked up along the way is finally resolved away with its
        unit — level-0 literals are all false, so they can never form a
        second complementary pair mid-chain, and one elimination at the
        end each is enough.
        """
        levels = self._levels
        arena = self._arena
        cbase = self._cbase
        csize = self._csize
        clause_ids = self._proof_clause_ids
        chain = [clause_ids[ci] for ci in chain_cis]
        zero: set[int] = set()
        for ci in chain_cis:
            base = cbase[ci]
            for k in range(base, base + csize[ci]):
                lit = arena[k]
                if levels[lit >> 1] == 0:
                    zero.add(lit)
        if removed:
            position = {lit: i for i, lit in enumerate(self._trail)}
            removed = sorted(
                removed, key=lambda lit: position[lit ^ 1], reverse=True
            )
            for lit in removed:
                ci = self._reasons[lit >> 1]
                chain.append(clause_ids[ci])
                base = cbase[ci]
                for k in range(base, base + csize[ci]):
                    other = arena[k]
                    if levels[other >> 1] == 0:
                        zero.add(other)
        for lit in sorted(zero):
            chain.append(self._proof_units[lit ^ 1])
        return self._proof.append(
            tuple(_to_dimacs(lit) for lit in learnt), tuple(chain)
        )

    @property
    def proof(self) -> ProofLog | None:
        """The resolution log (``None`` unless built with ``proof=True``).

        Live view: it keeps growing across ``solve`` calls.  Feed it to
        :class:`repro.itp.proof.ResolutionProof` for independent checking
        or interpolant extraction.
        """
        return self._proof

    # ------------------------------------------------------------------ #
    # Conflict analysis
    # ------------------------------------------------------------------ #

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            inv = 1e-100
            activity = self._activity
            for i in range(len(activity)):
                activity[i] *= inv
            self._var_inc *= inv
        self._order.bumped(var)

    def _analyze(self, conflict: int) -> tuple[list[int], int, int]:
        """First-UIP analysis.

        Returns ``(learnt_clause, backtrack_level, lbd)`` with the asserting
        literal in position 0.
        """
        levels = self._levels
        reasons = self._reasons
        arena = self._arena
        cbase = self._cbase
        csize = self._csize
        seen = bytearray(self._nvars)
        learnt: list[int] = [0]
        current_level = self._decision_level()
        counter = 0
        p = -1
        index = len(self._trail) - 1
        ci = conflict
        proof = self._proof
        chain_cis = [conflict] if proof is not None else None
        while True:
            base = cbase[ci]
            for k in range(base, base + csize[ci]):
                q = arena[k]
                if q == p:
                    continue
                var = q >> 1
                if not seen[var] and levels[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if levels[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            trail = self._trail
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            index -= 1
            pvar = p >> 1
            seen[pvar] = 0
            counter -= 1
            if counter == 0:
                break
            ci = reasons[pvar]
            if chain_cis is not None:
                chain_cis.append(ci)
        learnt[0] = p ^ 1
        # Cheap clause minimization: drop literals whose reason is subsumed
        # by the rest of the learnt clause.
        for q in learnt[1:]:
            seen[q >> 1] = 1
        minimized = [learnt[0]]
        removed: list[int] = []
        for q in learnt[1:]:
            reason = reasons[q >> 1]
            if reason == -1:
                minimized.append(q)
                continue
            not_q = q ^ 1
            base = cbase[reason]
            for k in range(base, base + csize[reason]):
                r = arena[k]
                if r != not_q and not seen[r >> 1] and levels[r >> 1] != 0:
                    minimized.append(q)
                    break
            else:
                removed.append(q)
        learnt = minimized
        if proof is not None:
            # Trail and reasons are still intact here (the caller only
            # backtracks after analysis), which the chain builder needs.
            self._last_learnt_proof_id = self._log_learnt(
                chain_cis, removed, learnt
            )
        if len(learnt) == 1:
            backtrack = 0
        else:
            # Move the literal with the highest level into position 1.
            best = 1
            for k in range(2, len(learnt)):
                if levels[learnt[k] >> 1] > levels[learnt[best] >> 1]:
                    best = k
            learnt[1], learnt[best] = learnt[best], learnt[1]
            backtrack = levels[learnt[1] >> 1]
        lbd = len({levels[q >> 1] for q in learnt})
        return learnt, backtrack, lbd

    def _analyze_final(self, failed_assumption: int) -> list[int]:
        """Compute the subset of assumptions responsible for a conflict.

        ``failed_assumption`` is the internal literal of the assumption whose
        negation is currently implied.  Because the conflict arises while the
        assumption prefix is being placed, every decision on the trail is an
        assumption, so reason-less seen literals are exactly the culprits.
        """
        proof = self._proof
        out = {failed_assumption}
        chain: list[int] = []
        zero: set[int] = set()
        if self._trail_lim:
            seen = bytearray(self._nvars)
            seen[failed_assumption >> 1] = 1
            for i in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
                lit = self._trail[i]
                var = lit >> 1
                if not seen[var]:
                    continue
                reason = self._reasons[var]
                if reason == -1:
                    out.add(lit)
                else:
                    if proof is not None:
                        chain.append(self._proof_clause_ids[reason])
                    base = self._cbase[reason]
                    for k in range(base, base + self._csize[reason]):
                        q = self._arena[k]
                        if self._levels[q >> 1] > 0:
                            seen[q >> 1] = 1
                        elif proof is not None:
                            zero.add(q)
                seen[var] = 0
        if proof is not None:
            # The final clause negates the core.  Three shapes: a normal
            # reason walk (resolve the chained reasons, then the level-0
            # units); an assumption whose negation is a level-0 fact (the
            # existing unit already is the final clause); two directly
            # complementary assumptions (a tautology — not derivable).
            if chain:
                for lit in sorted(zero):
                    chain.append(self._proof_units[lit ^ 1])
                proof.final = proof.append(
                    tuple(sorted(_to_dimacs(lit ^ 1) for lit in out)),
                    tuple(chain),
                )
            elif len(out) == 1:
                proof.final = self._proof_units.get(failed_assumption ^ 1)
            else:
                proof.final = None
        return [_to_dimacs(lit) for lit in out]

    # ------------------------------------------------------------------ #
    # Learned clause database reduction
    # ------------------------------------------------------------------ #

    def _locked(self, ci: int) -> bool:
        if self._csize[ci] == 0:
            return False
        first = self._arena[self._cbase[ci]]
        return (self._lit_value(first) == 1
                and self._reasons[first >> 1] == ci)

    def _reduce_db(self) -> None:
        """Remove roughly half of the learned clauses, worst LBD first."""
        self.db_reductions += 1
        csize = self._csize
        lbd = self._lbd
        live = [ci for ci in self._learnt_ids if csize[ci]]
        live.sort(key=lambda ci: (lbd[ci], csize[ci]))
        keep_count = len(live) // 2
        for ci in live[keep_count:]:
            if self._locked(ci) or lbd[ci] <= 2:
                continue
            self._arena_garbage += csize[ci]
            csize[ci] = 0
        self._learnt_ids = [ci for ci in live if csize[ci]]
        if self._arena_garbage * 2 > len(self._arena):
            self._compact_arena()

    def _compact_arena(self) -> None:
        """Reclaim the arena slots of deleted clauses.

        Clause indices are stable (watch lists keep referring to the same
        ``ci``); only base offsets move, so nothing outside the arena and
        the offset column is touched.  Stale watches of deleted clauses
        keep being dropped lazily by propagation (``_csize == 0``).
        """
        old = self._arena
        cbase = self._cbase
        csize = self._csize
        fresh: list[int] = []
        for ci in range(len(cbase)):
            size = csize[ci]
            if size:
                base = cbase[ci]
                cbase[ci] = len(fresh)
                fresh.extend(old[base:base + size])
        self._arena = fresh
        self._arena_garbage = 0

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #

    def _pick_branch_var(self) -> int:
        order = self._order
        values = self._values
        while order:
            var = order.pop_max()
            if values[var] == _UNASSIGNED:
                return var
        return -1

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: int | None = None,
    ) -> SolveResult:
        """Solve the current database under the given assumptions.

        The database (including everything learned) is left intact, so
        subsequent calls reuse all prior work — this is the paper's
        "factorize several checks together within a single ZChaff run".

        ``conflict_budget`` bounds the search; exceeding it yields
        ``SolveResult.UNKNOWN``.
        """
        self.solve_calls += 1
        self._model = []
        self._failed_assumptions = []
        self._core = None
        # Observability: like proof logging, the probe hooks never touch
        # the search (they only read counters), so trajectories stay
        # bit-identical; disabled cost is one branch per solve/restart.
        observed = _obs.ENABLED
        if observed:
            snapshot = _obs.begin_solve(self)
        metered = _met.ENABLED
        if metered:
            t0 = perf_counter()
        if not self._ok:
            self._core = ()
            if observed:
                _obs.end_solve(self, snapshot, SolveResult.UNSAT)
            if metered:
                _met.SAT_SOLVE_SECONDS.observe(perf_counter() - t0)
            return SolveResult.UNSAT
        for lit in assumptions:
            self._ensure_var(abs(lit))
        internal_assumptions = [_to_internal(lit) for lit in assumptions]
        conflicts_allowed = (float("inf") if conflict_budget is None
                             else conflict_budget)
        conflicts_at_start = self.conflicts
        restart_index = 0
        restart_limit = self._restart_base * _luby(restart_index)
        conflicts_since_restart = 0
        max_learnts = max(1000, len(self._csize) // 3)
        result = SolveResult.UNKNOWN
        while True:
            conflict = self._propagate()
            if conflict != -1:
                self.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self._ok = False
                    self._core = ()
                    if self._proof is not None:
                        self._log_level0_conflict(conflict)
                    result = SolveResult.UNSAT
                    break
                self._var_inc /= self._var_decay
                learnt, backtrack, lbd = self._analyze(conflict)
                self._cancel_until(backtrack)
                if len(learnt) == 1:
                    if self._proof is not None:
                        self._proof_units[learnt[0]] = \
                            self._last_learnt_proof_id
                    self._enqueue(learnt[0], -1)
                else:
                    ci = self._attach_clause(
                        learnt, learnt=True, lbd=lbd,
                        proof_id=self._last_learnt_proof_id,
                    )
                    self._enqueue(learnt[0], ci)
                if self.conflicts - conflicts_at_start >= conflicts_allowed:
                    result = SolveResult.UNKNOWN
                    break
                if conflicts_since_restart >= restart_limit:
                    self.restarts += 1
                    restart_index += 1
                    restart_limit = self._restart_base * _luby(restart_index)
                    conflicts_since_restart = 0
                    self._cancel_until(0)
                    if observed:
                        _obs.solver_tick(self)
                if self.learned_clauses and \
                        len(self._learnt_ids) > max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)
                continue
            # No conflict: place assumptions first, then decide.
            if self._decision_level() < len(internal_assumptions):
                lit = internal_assumptions[self._decision_level()]
                value = self._lit_value(lit)
                if value == 1:
                    # Already implied; open an empty decision level so the
                    # level-to-assumption correspondence is maintained.
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == 0:
                    self._failed_assumptions = self._analyze_final(lit)
                    self._core = tuple(self._failed_assumptions)
                    result = SolveResult.UNSAT
                    break
                self.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, -1)
                continue
            var = self._pick_branch_var()
            if var == -1:
                self._model = [
                    self._values[v] == 1 for v in range(self._nvars)
                ]
                result = SolveResult.SAT
                break
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(2 * var + (0 if self._polarity[var] else 1), -1)
        self._cancel_until(0)
        if observed:
            _obs.end_solve(self, snapshot, result)
        if metered:
            _met.SAT_SOLVE_SECONDS.observe(perf_counter() - t0)
        return result

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    @property
    def model(self) -> list[bool]:
        """The satisfying assignment of the last SAT call, indexed by var-1."""
        if not self._model:
            raise SatError("no model available (last call was not SAT)")
        return list(self._model)

    def value(self, var: int) -> bool:
        """Value of ``var`` (a positive DIMACS variable) in the last model."""
        if not self._model:
            raise SatError("no model available (last call was not SAT)")
        if not 1 <= var <= len(self._model):
            raise SatError(f"variable {var} out of range")
        return self._model[var - 1]

    def lit_true(self, lit: int) -> bool:
        """Whether the DIMACS literal holds in the last model."""
        value = self.value(abs(lit))
        return value if lit > 0 else not value

    @property
    def failed_assumptions(self) -> list[int]:
        """Assumption subset responsible for the last UNSAT-under-assumptions."""
        return list(self._failed_assumptions)

    @property
    def core(self) -> tuple[int, ...] | None:
        """The last UNSAT verdict's assumption core, as DIMACS literals.

        ``None`` when the last ``solve`` call was not UNSAT; an empty
        tuple when the database is unsatisfiable outright (no assumption
        needed); otherwise the subset of the passed assumptions that
        already forces the conflict — re-solving under just these
        literals is UNSAT again.
        """
        return self._core

    @property
    def ok(self) -> bool:
        """False once the database is known unsatisfiable outright."""
        return self._ok

    def stats(self) -> dict[str, int]:
        return {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "db_reductions": self.db_reductions,
            "solve_calls": self.solve_calls,
            "clauses": sum(1 for size in self._csize if size),
            "vars": self._nvars,
        }
