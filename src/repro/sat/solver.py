"""CDCL SAT solver with an incremental, assumption-based interface.

This is the ZChaff stand-in for the paper.  The features the paper's
SAT-merge routine depends on are all here:

* the clause database is loaded once and *persists across calls* —
  ``solve`` may be invoked any number of times, and new clauses may be
  added between calls ("we load the clause database once and for-all");
* each equivalence check is posed as a set of *assumption* literals, so
  several checks are factorized within a single solver instance without
  restarting ("we factorize several checks together within a single
  ZChaff run");
* on UNSAT under assumptions, the subset of assumptions actually used is
  reported (``failed_assumptions``), letting one UNSAT verdict cover many
  matching points.

Architecture is classic MiniSat-style CDCL: two-literal watches, VSIDS
decision heuristic with an indexed max-heap, phase saving, first-UIP conflict
analysis with clause minimization, Luby restarts and LBD-guided learned
clause database reduction.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

from repro.errors import SatError
from repro.sat.cnf import CNF

# Internal literal encoding: variable v in [0, n) maps to literals 2*v
# (positive) and 2*v+1 (negative).  DIMACS literal d maps to
# 2*(|d|-1) + (d < 0).
_UNASSIGNED = 2


def _to_internal(dimacs_lit: int) -> int:
    if dimacs_lit == 0:
        raise SatError("literal 0 is not a valid DIMACS literal")
    var = abs(dimacs_lit) - 1
    return 2 * var + (1 if dimacs_lit < 0 else 0)


def _to_dimacs(internal_lit: int) -> int:
    var = (internal_lit >> 1) + 1
    return -var if internal_lit & 1 else var


class SolveResult(enum.Enum):
    """Outcome of a ``solve`` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        # Convenience: ``if solver.solve():`` means "is satisfiable".
        return self is SolveResult.SAT


class _VarOrder:
    """Indexed binary max-heap over variable activities (MiniSat's order)."""

    __slots__ = ("activity", "heap", "pos")

    def __init__(self, activity: list[float]) -> None:
        self.activity = activity
        self.heap: list[int] = []
        self.pos: list[int] = []

    def grow(self, nvars: int) -> None:
        while len(self.pos) < nvars:
            self.pos.append(-1)
            self.insert(len(self.pos) - 1)

    def _swap(self, i: int, j: int) -> None:
        heap, pos = self.heap, self.pos
        heap[i], heap[j] = heap[j], heap[i]
        pos[heap[i]] = i
        pos[heap[j]] = j

    def _sift_up(self, i: int) -> None:
        heap, act = self.heap, self.activity
        while i > 0:
            parent = (i - 1) >> 1
            if act[heap[i]] > act[heap[parent]]:
                self._swap(i, parent)
                i = parent
            else:
                break

    def _sift_down(self, i: int) -> None:
        heap, act = self.heap, self.activity
        size = len(heap)
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            right = left + 1
            best = left
            if right < size and act[heap[right]] > act[heap[left]]:
                best = right
            if act[heap[best]] > act[heap[i]]:
                self._swap(i, best)
                i = best
            else:
                break

    def insert(self, var: int) -> None:
        if self.pos[var] != -1:
            return
        self.heap.append(var)
        self.pos[var] = len(self.heap) - 1
        self._sift_up(len(self.heap) - 1)

    def pop_max(self) -> int:
        heap, pos = self.heap, self.pos
        top = heap[0]
        last = heap.pop()
        pos[top] = -1
        if heap:
            heap[0] = last
            pos[last] = 0
            self._sift_down(0)
        return top

    def bumped(self, var: int) -> None:
        if self.pos[var] != -1:
            self._sift_up(self.pos[var])

    def __bool__(self) -> bool:
        return bool(self.heap)


def _luby(i: int) -> int:
    """The i-th element (0-based) of the Luby sequence 1,1,2,1,1,2,4,...

    Classic MiniSat formulation: find the smallest complete binary
    subsequence containing position ``i`` and recurse into it.
    """
    size, seq = 1, 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) >> 1
        seq -= 1
        i = i % size
    return 1 << seq


class Solver:
    """Incremental CDCL solver over DIMACS-style literals.

    >>> s = Solver()
    >>> a, b = s.new_var(), s.new_var()
    >>> s.add_clause([a, b])
    >>> s.add_clause([-a, b])
    >>> s.solve()
    <SolveResult.SAT: 'sat'>
    >>> s.value(b)
    True
    >>> s.solve(assumptions=[-b])
    <SolveResult.UNSAT: 'unsat'>
    >>> s.solve()          # the database is untouched by assumptions
    <SolveResult.SAT: 'sat'>
    """

    def __init__(self, cnf: CNF | None = None) -> None:
        self._nvars = 0
        # Per-variable state.
        self._values = bytearray()        # _UNASSIGNED / 1 (true) / 0 (false)
        self._levels: list[int] = []
        self._reasons: list[int] = []     # clause index or -1
        self._activity: list[float] = []
        self._polarity: list[int] = []    # saved phase, 1 = assign true
        self._order = _VarOrder(self._activity)
        # Clause arena.  A deleted clause slot holds None.
        self._clauses: list[list[int] | None] = []
        self._learnt_flags: list[bool] = []
        self._lbd: list[int] = []
        self._learnt_ids: list[int] = []
        self._watches: list[list[int]] = []
        # Trail.
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        # Heuristic parameters.
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._restart_base = 100
        self._ok = True
        self._model: list[bool] = []
        self._failed_assumptions: list[int] = []
        # Statistics.
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.db_reductions = 0
        self.solve_calls = 0
        if cnf is not None:
            self.add_cnf(cnf)

    # ------------------------------------------------------------------ #
    # Problem construction
    # ------------------------------------------------------------------ #

    @property
    def num_vars(self) -> int:
        return self._nvars

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its positive DIMACS literal."""
        self._nvars += 1
        self._values.append(_UNASSIGNED)
        self._levels.append(0)
        self._reasons.append(-1)
        self._activity.append(0.0)
        self._polarity.append(0)
        self._watches.append([])
        self._watches.append([])
        self._order.grow(self._nvars)
        return self._nvars

    def _ensure_var(self, var: int) -> None:
        while self._nvars < var:
            self.new_var()

    def add_cnf(self, cnf: CNF) -> None:
        self._ensure_var(cnf.num_vars)
        for clause in cnf:
            self.add_clause(clause)

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause (DIMACS literals).

        Returns ``False`` if the database became trivially unsatisfiable.
        May only be called at decision level 0, which is where ``solve``
        always leaves the solver.
        """
        if self._trail_lim:
            raise SatError("clauses may only be added at decision level 0")
        if not self._ok:
            return False
        for lit in lits:
            self._ensure_var(abs(lit))
        internal = sorted({_to_internal(lit) for lit in lits})
        # Tautology and level-0 simplification.
        simplified: list[int] = []
        previous = -1
        for lit in internal:
            if lit == previous ^ 1 and previous != -1:
                return True  # contains x and ~x
            value = self._lit_value(lit)
            if value == 1:
                return True  # already satisfied at level 0
            if value != 0:
                simplified.append(lit)
            previous = lit
        if not simplified:
            self._ok = False
            return False
        if len(simplified) == 1:
            self._enqueue(simplified[0], -1)
            if self._propagate() != -1:
                self._ok = False
                return False
            return True
        self._attach_clause(simplified, learnt=False, lbd=0)
        return True

    def _attach_clause(self, lits: list[int], learnt: bool, lbd: int) -> int:
        index = len(self._clauses)
        self._clauses.append(lits)
        self._learnt_flags.append(learnt)
        self._lbd.append(lbd)
        self._watches[lits[0]].append(index)
        self._watches[lits[1]].append(index)
        if learnt:
            self._learnt_ids.append(index)
            self.learned_clauses += 1
        return index

    # ------------------------------------------------------------------ #
    # Assignment primitives
    # ------------------------------------------------------------------ #

    def _lit_value(self, lit: int) -> int:
        value = self._values[lit >> 1]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value ^ (lit & 1)

    def _enqueue(self, lit: int, reason: int) -> None:
        var = lit >> 1
        self._values[var] = 1 ^ (lit & 1)
        self._levels[var] = len(self._trail_lim)
        self._reasons[var] = reason
        self._trail.append(lit)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        values, polarity, order = self._values, self._polarity, self._order
        target = self._trail_lim[level]
        trail = self._trail
        for i in range(len(trail) - 1, target - 1, -1):
            lit = trail[i]
            var = lit >> 1
            polarity[var] = values[var]
            values[var] = _UNASSIGNED
            self._reasons[var] = -1
            order.insert(var)
        del trail[target:]
        del self._trail_lim[level:]
        self._qhead = len(trail)

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #

    def _propagate(self) -> int:
        """Unit propagation.  Returns a conflicting clause index or -1."""
        # Hot loop: local aliases avoid repeated attribute lookups.
        clauses = self._clauses
        watches = self._watches
        values = self._values
        trail = self._trail
        while self._qhead < len(trail):
            p = trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            false_lit = p ^ 1
            watch_list = watches[false_lit]
            kept: list[int] = []
            i = 0
            n = len(watch_list)
            while i < n:
                ci = watch_list[i]
                i += 1
                clause = clauses[ci]
                if clause is None:
                    continue  # lazily drop watches of deleted clauses
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                fv = values[first >> 1]
                if fv != _UNASSIGNED and fv ^ (first & 1) == 1:
                    kept.append(ci)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    lit = clause[k]
                    lv = values[lit >> 1]
                    if lv == _UNASSIGNED or lv ^ (lit & 1) == 1:
                        clause[1], clause[k] = clause[k], clause[1]
                        watches[lit].append(ci)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(ci)
                if fv != _UNASSIGNED:  # first is false: conflict
                    kept.extend(watch_list[i:])
                    watches[false_lit] = kept
                    return ci
                self._enqueue(first, ci)
            watches[false_lit] = kept
        return -1

    # ------------------------------------------------------------------ #
    # Conflict analysis
    # ------------------------------------------------------------------ #

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            inv = 1e-100
            activity = self._activity
            for i in range(len(activity)):
                activity[i] *= inv
            self._var_inc *= inv
        self._order.bumped(var)

    def _analyze(self, conflict: int) -> tuple[list[int], int, int]:
        """First-UIP analysis.

        Returns ``(learnt_clause, backtrack_level, lbd)`` with the asserting
        literal in position 0.
        """
        levels = self._levels
        reasons = self._reasons
        seen = bytearray(self._nvars)
        learnt: list[int] = [0]
        current_level = self._decision_level()
        counter = 0
        p = -1
        index = len(self._trail) - 1
        clause = self._clauses[conflict]
        assert clause is not None
        while True:
            for q in clause:
                if q == p:
                    continue
                var = q >> 1
                if not seen[var] and levels[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if levels[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            trail = self._trail
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            index -= 1
            pvar = p >> 1
            seen[pvar] = 0
            counter -= 1
            if counter == 0:
                break
            reason = reasons[pvar]
            clause = self._clauses[reason]
            assert clause is not None
        learnt[0] = p ^ 1
        # Cheap clause minimization: drop literals whose reason is subsumed
        # by the rest of the learnt clause.
        for q in learnt[1:]:
            seen[q >> 1] = 1
        minimized = [learnt[0]]
        for q in learnt[1:]:
            reason = reasons[q >> 1]
            if reason == -1:
                minimized.append(q)
                continue
            reason_clause = self._clauses[reason]
            assert reason_clause is not None
            if all(seen[r >> 1] or levels[r >> 1] == 0
                   for r in reason_clause if r != q ^ 1):
                continue
            minimized.append(q)
        learnt = minimized
        if len(learnt) == 1:
            backtrack = 0
        else:
            # Move the literal with the highest level into position 1.
            best = 1
            for k in range(2, len(learnt)):
                if levels[learnt[k] >> 1] > levels[learnt[best] >> 1]:
                    best = k
            learnt[1], learnt[best] = learnt[best], learnt[1]
            backtrack = levels[learnt[1] >> 1]
        lbd = len({levels[q >> 1] for q in learnt})
        return learnt, backtrack, lbd

    def _analyze_final(self, failed_assumption: int) -> list[int]:
        """Compute the subset of assumptions responsible for a conflict.

        ``failed_assumption`` is the internal literal of the assumption whose
        negation is currently implied.  Because the conflict arises while the
        assumption prefix is being placed, every decision on the trail is an
        assumption, so reason-less seen literals are exactly the culprits.
        """
        out = {failed_assumption}
        if not self._trail_lim:
            return [_to_dimacs(lit) for lit in out]
        seen = bytearray(self._nvars)
        seen[failed_assumption >> 1] = 1
        for i in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            lit = self._trail[i]
            var = lit >> 1
            if not seen[var]:
                continue
            reason = self._reasons[var]
            if reason == -1:
                out.add(lit)
            else:
                clause = self._clauses[reason]
                assert clause is not None
                for q in clause:
                    if self._levels[q >> 1] > 0:
                        seen[q >> 1] = 1
            seen[var] = 0
        return [_to_dimacs(lit) for lit in out]

    # ------------------------------------------------------------------ #
    # Learned clause database reduction
    # ------------------------------------------------------------------ #

    def _locked(self, ci: int) -> bool:
        clause = self._clauses[ci]
        if clause is None:
            return False
        first = clause[0]
        return (self._lit_value(first) == 1
                and self._reasons[first >> 1] == ci)

    def _reduce_db(self) -> None:
        """Remove roughly half of the learned clauses, worst LBD first."""
        self.db_reductions += 1
        live = [ci for ci in self._learnt_ids if self._clauses[ci] is not None]
        clause_len = self._clauses
        live.sort(key=lambda ci: (self._lbd[ci], len(clause_len[ci] or ())))
        keep_count = len(live) // 2
        for ci in live[keep_count:]:
            if self._locked(ci) or self._lbd[ci] <= 2:
                continue
            self._clauses[ci] = None
        self._learnt_ids = [ci for ci in live
                            if self._clauses[ci] is not None]

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #

    def _pick_branch_var(self) -> int:
        order = self._order
        values = self._values
        while order:
            var = order.pop_max()
            if values[var] == _UNASSIGNED:
                return var
        return -1

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: int | None = None,
    ) -> SolveResult:
        """Solve the current database under the given assumptions.

        The database (including everything learned) is left intact, so
        subsequent calls reuse all prior work — this is the paper's
        "factorize several checks together within a single ZChaff run".

        ``conflict_budget`` bounds the search; exceeding it yields
        ``SolveResult.UNKNOWN``.
        """
        self.solve_calls += 1
        self._model = []
        self._failed_assumptions = []
        if not self._ok:
            return SolveResult.UNSAT
        for lit in assumptions:
            self._ensure_var(abs(lit))
        internal_assumptions = [_to_internal(lit) for lit in assumptions]
        conflicts_allowed = (float("inf") if conflict_budget is None
                             else conflict_budget)
        conflicts_at_start = self.conflicts
        restart_index = 0
        restart_limit = self._restart_base * _luby(restart_index)
        conflicts_since_restart = 0
        max_learnts = max(1000, len(self._clauses) // 3)
        result = SolveResult.UNKNOWN
        while True:
            conflict = self._propagate()
            if conflict != -1:
                self.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self._ok = False
                    result = SolveResult.UNSAT
                    break
                self._var_inc /= self._var_decay
                learnt, backtrack, lbd = self._analyze(conflict)
                self._cancel_until(backtrack)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], -1)
                else:
                    ci = self._attach_clause(learnt, learnt=True, lbd=lbd)
                    self._enqueue(learnt[0], ci)
                if self.conflicts - conflicts_at_start >= conflicts_allowed:
                    result = SolveResult.UNKNOWN
                    break
                if conflicts_since_restart >= restart_limit:
                    self.restarts += 1
                    restart_index += 1
                    restart_limit = self._restart_base * _luby(restart_index)
                    conflicts_since_restart = 0
                    self._cancel_until(0)
                if self.learned_clauses and \
                        len(self._learnt_ids) > max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)
                continue
            # No conflict: place assumptions first, then decide.
            if self._decision_level() < len(internal_assumptions):
                lit = internal_assumptions[self._decision_level()]
                value = self._lit_value(lit)
                if value == 1:
                    # Already implied; open an empty decision level so the
                    # level-to-assumption correspondence is maintained.
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == 0:
                    self._failed_assumptions = self._analyze_final(lit)
                    result = SolveResult.UNSAT
                    break
                self.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, -1)
                continue
            var = self._pick_branch_var()
            if var == -1:
                self._model = [
                    self._values[v] == 1 for v in range(self._nvars)
                ]
                result = SolveResult.SAT
                break
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(2 * var + (0 if self._polarity[var] else 1), -1)
        self._cancel_until(0)
        return result

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    @property
    def model(self) -> list[bool]:
        """The satisfying assignment of the last SAT call, indexed by var-1."""
        if not self._model:
            raise SatError("no model available (last call was not SAT)")
        return list(self._model)

    def value(self, var: int) -> bool:
        """Value of ``var`` (a positive DIMACS variable) in the last model."""
        if not self._model:
            raise SatError("no model available (last call was not SAT)")
        if not 1 <= var <= len(self._model):
            raise SatError(f"variable {var} out of range")
        return self._model[var - 1]

    def lit_true(self, lit: int) -> bool:
        """Whether the DIMACS literal holds in the last model."""
        value = self.value(abs(lit))
        return value if lit > 0 else not value

    @property
    def failed_assumptions(self) -> list[int]:
        """Assumption subset responsible for the last UNSAT-under-assumptions."""
        return list(self._failed_assumptions)

    @property
    def ok(self) -> bool:
        """False once the database is known unsatisfiable outright."""
        return self._ok

    def stats(self) -> dict[str, int]:
        return {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "db_reductions": self.db_reductions,
            "solve_calls": self.solve_calls,
            "clauses": sum(1 for c in self._clauses if c is not None),
            "vars": self._nvars,
        }
