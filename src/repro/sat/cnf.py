"""CNF formula container and DIMACS I/O.

Literals use the DIMACS convention throughout the public API: variables are
positive integers ``1..num_vars`` and a negative integer denotes negation.
The CDCL solver converts to a dense internal encoding on entry.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, TextIO

from repro.errors import SatError

Clause = tuple[int, ...]


def neg(lit: int) -> int:
    """Return the negation of a DIMACS literal."""
    return -lit


def lit_to_dimacs(lit: int) -> str:
    """Render a literal the way a DIMACS file would."""
    return str(lit)


def _validate_clause(lits: Iterable[int]) -> Clause:
    clause = tuple(int(lit) for lit in lits)
    for lit in clause:
        if lit == 0:
            raise SatError("literal 0 is not allowed inside a clause")
    return clause


class CNF:
    """A CNF formula: a bag of clauses over variables ``1..num_vars``.

    The container is deliberately dumb — it never simplifies.  Solvers and
    encoders own any normalization they need.

    >>> f = CNF()
    >>> a, b = f.new_var(), f.new_var()
    >>> f.add_clause([a, b])
    >>> f.add_clause([-a])
    >>> f.num_vars, f.num_clauses
    (2, 2)
    """

    def __init__(self, num_vars: int = 0) -> None:
        if num_vars < 0:
            raise SatError("num_vars must be non-negative")
        self.num_vars = num_vars
        self.clauses: list[Clause] = []

    def new_var(self) -> int:
        """Allocate a fresh variable and return it as a positive literal."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables."""
        if count < 0:
            raise SatError("count must be non-negative")
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits: Iterable[int]) -> None:
        """Append a clause, growing ``num_vars`` to cover its literals."""
        clause = _validate_clause(lits)
        for lit in clause:
            var = abs(lit)
            if var > self.num_vars:
                self.num_vars = var
        self.clauses.append(clause)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate under a total assignment (``assignment[var-1]``).

        Raises :class:`SatError` if the assignment is too short.
        """
        if len(assignment) < self.num_vars:
            raise SatError(
                f"assignment covers {len(assignment)} of {self.num_vars} variables"
            )
        for clause in self.clauses:
            satisfied = False
            for lit in clause:
                value = assignment[abs(lit) - 1]
                if (lit > 0) == value:
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def copy(self) -> "CNF":
        dup = CNF(self.num_vars)
        dup.clauses = list(self.clauses)
        return dup

    # ------------------------------------------------------------------ #
    # DIMACS
    # ------------------------------------------------------------------ #

    def to_dimacs(self, out: TextIO) -> None:
        """Write the formula in DIMACS ``cnf`` format."""
        out.write(f"p cnf {self.num_vars} {self.num_clauses}\n")
        for clause in self.clauses:
            out.write(" ".join(str(lit) for lit in clause))
            out.write(" 0\n")

    def to_dimacs_string(self) -> str:
        import io

        buf = io.StringIO()
        self.to_dimacs(buf)
        return buf.getvalue()

    @classmethod
    def from_dimacs(cls, text: str | TextIO) -> "CNF":
        """Parse DIMACS ``cnf`` text. Tolerates comments and blank lines."""
        if not isinstance(text, str):
            text = text.read()
        formula = cls()
        declared_vars: int | None = None
        pending: list[int] = []
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith(("c", "%")):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise SatError(f"malformed problem line: {line!r}")
                declared_vars = int(parts[2])
                continue
            for token in line.split():
                lit = int(token)
                if lit == 0:
                    formula.add_clause(pending)
                    pending = []
                else:
                    pending.append(lit)
        if pending:
            raise SatError("DIMACS input ends inside a clause (missing 0)")
        if declared_vars is not None and declared_vars > formula.num_vars:
            formula.num_vars = declared_vars
        return formula

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CNF(vars={self.num_vars}, clauses={self.num_clauses})"
