"""Batched portfolio verification with a shared cache and worker budget.

``check_many`` is the service loop: it takes a heterogeneous batch of
netlists, consults one shared :class:`ResultCache` keyed by structural
hash, optionally FRAIG-preprocesses the cones before dispatch, and races
(or sequences) the engines per the selected policy.  Every per-engine
outcome — wins, losses, budget-stamped timeouts — is written back to the
cache, so a batch warms the cache for the next batch.

Per-engine results are cached under the *engine's* method name, not under
an opaque "portfolio" key: a verdict that ``reach_aig`` produced for a
circuit answers any later request whose engine list includes
``reach_aig``, whatever the surrounding portfolio looked like.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Mapping, Sequence

from repro.circuits.netlist import Netlist
from repro.mc.result import Status, Trace, VerificationResult
from repro.portfolio.cache import ResultCache
from repro.portfolio.hashing import structural_hash
from repro.portfolio.policy import select_plan
from repro.portfolio.runner import run_portfolio
from repro.sweep.fraig import fraig_netlist
from repro.util.stats import StatsBag


def _remap_assignment(
    assignment: Mapping[int, bool] | None,
    source: Sequence[int],
    target: Sequence[int],
) -> dict[int, bool] | None:
    if assignment is None:
        return None
    by_index = dict(zip(source, target))
    return {
        by_index[node]: value
        for node, value in assignment.items()
        if node in by_index
    }


def remap_trace(trace: Trace, source: Netlist, target: Netlist) -> Trace:
    """Re-key a trace positionally from one netlist onto another."""
    return Trace(
        states=[
            _remap_assignment(state, source.latch_nodes, target.latch_nodes)
            for state in trace.states
        ],
        inputs=[
            _remap_assignment(step, source.input_nodes, target.input_nodes)
            for step in trace.inputs
        ],
        violation_inputs=_remap_assignment(
            trace.violation_inputs, source.input_nodes, target.input_nodes
        ),
    )


def _decisive(result: VerificationResult, netlist: Netlist) -> bool:
    if result.proved:
        return True
    return (
        result.failed
        and result.trace is not None
        and result.trace.validate(netlist)
    )


def check_many(
    netlists: Iterable[Netlist],
    *,
    engines: Sequence[str] | None = None,
    policy: str = "race_all",
    budget: float = 5.0,
    jobs: int | None = None,
    max_depth: int = 100,
    cache: ResultCache | str | pathlib.Path | None = None,
    fraig_preprocess: bool = False,
    stats: StatsBag | None = None,
    engine_options: dict | None = None,
    on_event=None,
) -> list[VerificationResult]:
    """Verify a batch of netlists through the shared portfolio machinery.

    Returns one :class:`VerificationResult` per netlist, in order.  Each
    result's ``stats`` carries the portfolio bookkeeping (winner, wall
    time, per-engine labels, ``cache_hit`` when served from cache); pass
    ``stats`` to also aggregate those across the batch, and ``on_event``
    to receive engine lifecycle dicts from the runner
    (:data:`repro.portfolio.runner.EventCallback`).
    """
    if cache is None:
        store = ResultCache()
    elif isinstance(cache, ResultCache):
        store = cache
    else:
        store = ResultCache(cache)
    bag = stats if stats is not None else StatsBag()
    hits_before, misses_before = store.hits, store.misses
    results: list[VerificationResult] = []
    for netlist in netlists:
        bag.incr("problems")
        plan = select_plan(netlist, policy=policy, engines=engines)
        result = _check_one(
            netlist,
            plan.methods,
            parallel=plan.parallel,
            budget=budget,
            jobs=jobs,
            max_depth=max_depth,
            store=store,
            fraig_preprocess=fraig_preprocess,
            bag=bag,
            engine_options=engine_options,
            on_event=on_event,
        )
        results.append(result)
    # Only this call's share of a (possibly long-lived, shared) cache.
    bag.incr("cache_hits", store.hits - hits_before)
    bag.incr("cache_misses", store.misses - misses_before)
    bag.set("cache_entries", len(store))
    return results


def _check_one(
    netlist: Netlist,
    methods: list[str],
    *,
    parallel: bool,
    budget: float,
    jobs: int | None,
    max_depth: int,
    store: ResultCache,
    fraig_preprocess: bool,
    bag: StatsBag,
    engine_options: dict | None,
    on_event=None,
) -> VerificationResult:
    # Cache pass: a decisive hit answers immediately; an UNKNOWN hit
    # (stamped with >= this budget) disqualifies that engine from the
    # race — it would only lose the same way again.  A cached FAILED
    # whose trace no longer replays is distrusted: re-run the engine.
    digest = structural_hash(netlist)
    to_run: list[str] = []
    fallback: VerificationResult | None = None
    for method in methods:
        cached = store.lookup(
            netlist, method, max_depth, budget=budget, digest=digest
        )
        if cached is None:
            to_run.append(method)
        elif _decisive(cached, netlist):
            bag.incr("served_from_cache")
            bag.incr(f"winner_{cached.engine}")
            return cached
        elif cached.status is Status.UNKNOWN:
            fallback = fallback or cached
        else:
            to_run.append(method)
    if not to_run:
        bag.incr("served_from_cache")
        return fallback  # every engine already failed with this budget
    target = fraig_netlist(netlist) if fraig_preprocess else netlist
    outcome = run_portfolio(
        target,
        to_run,
        max_depth=max_depth,
        budget=budget,
        jobs=jobs if parallel else 1,
        engine_options=engine_options,
        on_event=on_event,
    )
    for engine_outcome in outcome.outcomes:
        if engine_outcome.cancelled or engine_outcome.crashed:
            continue  # crashes may be environmental; don't memoize them
        stored = engine_outcome.result
        if (
            fraig_preprocess
            and stored.trace is not None
            and target is not netlist
        ):
            stored.trace = remap_trace(stored.trace, target, netlist)
            if stored.failed and not stored.trace.validate(
                netlist
            ):
                # Preprocessing must be verdict-preserving; if the remapped
                # trace does not replay, distrust the whole outcome.
                stored = VerificationResult(
                    status=Status.UNKNOWN, engine=stored.engine
                )
                stored.stats.incr("preprocess_trace_mismatch")
                if outcome.winner == engine_outcome.method:
                    outcome.winner = None
                    outcome.result = stored
                    # Take back the win the runner already recorded.
                    outcome.stats.incr(f"winner_{engine_outcome.method}", -1)
                    outcome.stats.incr("no_winner")
                engine_outcome.result = stored
        store.store(
            netlist,
            engine_outcome.method,
            max_depth,
            stored,
            budget=budget,
            digest=digest,
        )
    if outcome.winner is not None:
        result = next(
            o.result for o in outcome.outcomes if o.method == outcome.winner
        )
    else:
        # A fresh UNKNOWN at the current budget is the most we know.
        result = outcome.result
    result.stats.merge(outcome.stats)
    bag.merge(outcome.stats)
    return result
