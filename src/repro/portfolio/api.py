"""The portfolio front door: :func:`portfolio_verify`.

One call signature for one netlist or a whole batch; everything else —
engine choice, scheduling policy, budgets, caching, preprocessing — is a
keyword.  ``repro.mc.verify(netlist, method="portfolio")`` and the
``repro portfolio`` CLI subcommand both land here.
"""

from __future__ import annotations

import pathlib
from typing import Sequence

from repro.circuits.netlist import Netlist
from repro.mc.result import VerificationResult
from repro.portfolio.batch import check_many
from repro.portfolio.cache import ResultCache
from repro.util.stats import StatsBag


def portfolio_verify(
    netlists: Netlist | Sequence[Netlist],
    *,
    engines: Sequence[str] | None = None,
    policy: str = "race_all",
    budget: float = 5.0,
    jobs: int | None = None,
    max_depth: int = 100,
    cache: ResultCache | str | pathlib.Path | None = None,
    fraig_preprocess: bool = False,
    stats: StatsBag | None = None,
    engine_options: dict | None = None,
    on_event=None,
) -> VerificationResult | list[VerificationResult]:
    """Verify one netlist (or a batch) with a portfolio of engines.

    * ``engines`` — engine names from the registry
      (:func:`repro.api.engine_names`); default is
      :func:`repro.portfolio.policy.default_engines` — every
      non-composite, non-variant engine.
    * ``policy`` — ``race_all`` (concurrent, first decisive verdict
      cancels the rest), ``sequential_fallback`` (cheapest first), or
      ``predict`` (feature-ranked sequential).
    * ``budget`` — per-engine wall-clock seconds; engines over budget are
      terminated and report UNKNOWN.
    * ``cache`` — a :class:`ResultCache`, or a path to a JSON-lines cache
      file shared across calls and processes.
    * ``fraig_preprocess`` — functionally reduce the cones before
      dispatch; counterexamples are remapped and replay-validated on the
      original netlist.
    * ``on_event`` — callback receiving engine lifecycle dicts
      (``engine_started`` / ``engine_finished`` / ``engine_cancelled``)
      from the worker runner.

    A single netlist returns a single :class:`VerificationResult`; a
    sequence returns a list in order.
    """
    single = isinstance(netlists, Netlist)
    batch = [netlists] if single else list(netlists)
    results = check_many(
        batch,
        engines=engines,
        policy=policy,
        budget=budget,
        jobs=jobs,
        max_depth=max_depth,
        cache=cache,
        fraig_preprocess=fraig_preprocess,
        stats=stats,
        engine_options=engine_options,
        on_event=on_event,
    )
    return results[0] if single else results
