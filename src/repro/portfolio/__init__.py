"""Portfolio verification: race engines, cache results, serve batches.

The paper's evaluation shows no single engine dominating across circuits —
the traversal wins where BDDs blow up, BMC finds shallow bugs fastest,
induction proves inductive invariants in two SAT calls.  This package turns
that observation into a subsystem:

* :mod:`repro.portfolio.hashing` — canonical structural hashes of netlists,
  stable across AIG node renumbering, used as cache keys;
* :mod:`repro.portfolio.cache` — a persistent (JSON-lines) result cache
  with an in-memory LRU front, memoizing verdicts *and* budget-stamped
  UNKNOWNs;
* :mod:`repro.portfolio.runner` — per-engine worker processes with
  wall-clock budgets, loser cancellation, and crash/timeout containment;
* :mod:`repro.portfolio.policy` — engine selection/scheduling policies
  (``race_all``, ``sequential_fallback``, feature-based ``predict``);
* :mod:`repro.portfolio.batch` — ``check_many`` sharing cache and budget
  across a batch, with optional FRAIG preprocessing of the cones;
* :mod:`repro.portfolio.api` — the single :func:`portfolio_verify` entry
  point, also reachable as ``repro.mc.verify(method="portfolio")`` and the
  ``repro portfolio`` CLI subcommand.
"""

from repro.portfolio.api import portfolio_verify
from repro.portfolio.batch import check_many
from repro.portfolio.cache import ResultCache
from repro.portfolio.hashing import structural_hash
from repro.portfolio.options import PortfolioOptions
from repro.portfolio.policy import (
    Plan,
    circuit_features,
    default_engines,
    select_plan,
)
from repro.portfolio.runner import EngineOutcome, PortfolioOutcome, run_portfolio

__all__ = [
    "portfolio_verify",
    "check_many",
    "ResultCache",
    "structural_hash",
    "PortfolioOptions",
    "Plan",
    "circuit_features",
    "default_engines",
    "select_plan",
    "EngineOutcome",
    "PortfolioOutcome",
    "run_portfolio",
]
