"""Canonical structural hashing of netlists for result caching.

Two netlists that encode the same verification problem must map to the
same key even when their AIG managers number nodes differently (different
gate construction order, dead logic left behind by rewriting, a
``clone()``/``extract()`` round-trip).  Plain node ids are therefore
useless as keys.  Instead every leaf is identified by its *role* —
"latch k with initial value v" or "primary input j" — and every AND node
by an order-insensitive digest of its fanin digests, so the hash only
sees the circuit's structure, never the manager's numbering.

The hash covers exactly what a verification verdict depends on: the
latches (order, initial values, next-state functions), the property, and
the environment constraints.  Output cones are excluded — two netlists
differing only in named outputs verify identically.
"""

from __future__ import annotations

import hashlib
from typing import Mapping

from repro.aig.graph import Aig
from repro.circuits.netlist import Netlist
from repro.errors import ReproError

_CONST_DIGEST = hashlib.sha256(b"CONST").digest()


def _leaf_tokens(netlist: Netlist) -> dict[int, bytes]:
    """Map every registered leaf node to its role token."""
    tokens: dict[int, bytes] = {}
    for index, latch in enumerate(netlist.latches):
        tokens[latch.node] = f"L{index}:{int(latch.init)}".encode()
    for index, node in enumerate(netlist.input_nodes):
        tokens[node] = f"I{index}".encode()
    return tokens


def _edge_digests(
    aig: Aig, edges: list[int], leaf_tokens: Mapping[int, bytes]
) -> list[bytes]:
    """Canonical digest of each edge, computed bottom-up over the cones."""
    node_digest: dict[int, bytes] = {0: _CONST_DIGEST}
    for node in aig.cone(edges):
        if aig.is_and(node):
            f0, f1 = aig.fanins(node)
            d0 = node_digest[f0 >> 1] + (b"-" if f0 & 1 else b"+")
            d1 = node_digest[f1 >> 1] + (b"-" if f1 & 1 else b"+")
            # Sorting by digest (not by node id) removes the manager's
            # fanin ordering, which depends on creation order.
            lo, hi = sorted((d0, d1))
            node_digest[node] = hashlib.sha256(b"AND|" + lo + b"|" + hi).digest()
        else:
            token = leaf_tokens.get(node)
            if token is None:
                raise ReproError(
                    f"node {node} ({aig.input_name(node)!r}) is neither a "
                    "registered input nor a latch; hash only validated "
                    "netlists"
                )
            node_digest[node] = hashlib.sha256(b"LEAF|" + token).digest()
    return [
        node_digest[edge >> 1] + (b"-" if edge & 1 else b"+")
        for edge in edges
    ]


def structural_hash(netlist: Netlist) -> str:
    """Hex digest keying the verification problem a netlist poses.

    Stable across AIG node renumbering and dead logic; sensitive to latch
    order, initial values, next-state functions, the property, and the
    constraints.
    """
    leaves = _leaf_tokens(netlist)
    edges: list[int] = []
    sections: list[bytes] = []
    for latch in netlist.latches:
        if latch.next_edge is not None:
            edges.append(latch.next_edge)
    if netlist.has_property:
        edges.append(netlist.property_edge)
    constraint_edges = netlist.constraints
    edges.extend(constraint_edges)
    digests = _edge_digests(netlist.aig, edges, leaves)
    cursor = 0
    for latch in netlist.latches:
        sections.append(b"latch|" + leaves[latch.node])
        if latch.next_edge is not None:
            sections.append(b"next|" + digests[cursor])
            cursor += 1
        else:
            sections.append(b"next|none")
    if netlist.has_property:
        sections.append(b"property|" + digests[cursor])
        cursor += 1
    else:
        sections.append(b"property|none")
    # Constraint order is irrelevant to the conjunction they form.
    sections.extend(
        sorted(b"constraint|" + d for d in digests[cursor:])
    )
    overall = hashlib.sha256()
    for section in sections:
        overall.update(section)
        overall.update(b"\n")
    return overall.hexdigest()
