"""Per-engine worker processes with budgets, cancellation, containment.

Each engine runs :func:`repro.mc.engine.verify` in its own process, so a
diverging traversal or a crashing solver cannot take the service down
with it.  The parent polls the workers; the first *decisive* verdict —
PROVED, or FAILED with a counterexample that replays on the parent's own
copy of the netlist — wins the race and the losers are terminated.
Timeouts and crashes are mapped to :data:`Status.UNKNOWN` results (with
the failure mode recorded in the stats), never to exceptions: a portfolio
is exactly the place where individual engines are allowed to lose.

The worker pipe carries more than the final verdict.  A worker announces
itself with an ``("event", {...})`` message (kind ``engine_started``),
and — when the parent had :mod:`repro.obs` tracing enabled at launch —
streams its spans and counter samples back as ``("obs", records)``
before the closing ``("ok", result)`` / ``("error", message)``.  The
parent merges those records into its own tracer (workers build theirs on
the parent's epoch, so the timelines line up) and surfaces lifecycle
events through the ``on_event`` callback, which
:class:`repro.api.Session` re-emits as progress events.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.circuits.netlist import Netlist
from repro.mc.result import Status, VerificationResult
from repro.util.stats import StatsBag

_POLL_INTERVAL = 0.01

# Signature of the lifecycle callback: one dict per event, with at least
# ``kind`` ("engine_started" / "engine_finished" / "engine_cancelled"),
# ``engine`` and ``elapsed`` keys.
EventCallback = Callable[[dict], None]


def _context() -> multiprocessing.context.BaseContext:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


def spawn_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context every worker pool here uses."""
    return _context()


def parent_obs_config() -> dict | None:
    """The obs hand-off a parent passes to its workers (None = untraced)."""
    tracer = obs.current_tracer() if obs.is_enabled() else None
    if tracer is None:
        return None
    return {"epoch": tracer.epoch, "tick": tracer.tick}


def child_obs_tracer(obs_cfg: dict | None):
    """Set up tracing inside a forked worker.

    A forked worker inherits the parent's enabled flag AND its tracer
    (with everything the parent already recorded); drop that and collect
    into a fresh tracer on the parent's epoch so exported records merge
    into one timeline without duplicating the parent's spans.  Returns
    the fresh tracer, or None when the parent ran untraced.
    """
    if obs_cfg is not None:
        obs.disable()
        return obs.enable(
            obs.Tracer(
                tick=obs_cfg.get("tick", 0.01),
                epoch=obs_cfg.get("epoch"),
            )
        )
    if obs.is_enabled():  # pragma: no cover - fork inherited state
        obs.disable()
    return None


def _worker(
    conn,
    netlist: Netlist,
    method: str,
    max_depth: int,
    options: dict,
    obs_cfg: dict | None = None,
):
    """Engine subprocess body: announce, verify, stream obs, report back."""
    tracer = None
    try:
        from repro.mc.engine import verify

        conn.send(
            (
                "event",
                {
                    "kind": "engine_started",
                    "engine": method,
                    "pid": os.getpid(),
                },
            )
        )
        tracer = child_obs_tracer(obs_cfg)
        result = verify(netlist, method=method, max_depth=max_depth, **options)
        if tracer is not None:
            conn.send(("obs", tracer.export_records()))
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - contained, reported as UNKNOWN
        try:
            if tracer is not None:
                conn.send(("obs", tracer.export_records()))
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


@dataclass
class EngineOutcome:
    """How one engine's run ended, decisive or not."""

    method: str
    result: VerificationResult
    elapsed: float
    timed_out: bool = False
    crashed: bool = False
    cancelled: bool = False

    @property
    def label(self) -> str:
        if self.timed_out:
            return "timeout"
        if self.crashed:
            return "crash"
        if self.cancelled:
            return "cancelled"
        return self.result.status.value


@dataclass
class PortfolioOutcome:
    """The race's verdict plus the full per-engine record."""

    result: VerificationResult
    winner: str | None
    outcomes: list[EngineOutcome] = field(default_factory=list)
    stats: StatsBag = field(default_factory=StatsBag)


class WorkerHandle:
    """One spawned worker process plus its result pipe.

    Shared bookkeeping between the portfolio race and the cube-and-
    conquer pool (:mod:`repro.cnc.conquer`): the worker target receives
    the child end of a one-way pipe as its first argument, followed by
    ``args``, and reports with ``(kind, payload)`` messages.
    """

    __slots__ = ("label", "payload", "process", "conn", "started")

    def __init__(self, ctx, target, args, label, payload=None):
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        self.label = label
        self.payload = payload
        self.conn = parent_conn
        self.process = ctx.Process(
            target=target, args=(child_conn, *args), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.started = time.monotonic()

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=1.0)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=1.0)
        self.conn.close()


def _unknown(method: str, note: str, budget: float | None) -> VerificationResult:
    result = VerificationResult(status=Status.UNKNOWN, engine=method)
    result.stats.incr(note)
    if budget is not None:
        result.stats.set("budget_seconds", budget)
    return result


def run_portfolio(
    netlist: Netlist,
    methods: list[str],
    max_depth: int = 100,
    budget: float = 5.0,
    jobs: int | None = None,
    stop_on_decisive: bool = True,
    engine_options: dict | None = None,
    on_event: EventCallback | None = None,
) -> PortfolioOutcome:
    """Race ``methods`` on one netlist under a per-engine budget.

    ``jobs`` caps concurrent workers (default: one per engine, capped by
    CPU count but at least 2 so racing still happens on small machines);
    ``jobs=1`` with an ordered method list is sequential fallback.  The
    first decisive verdict cancels the remaining workers unless
    ``stop_on_decisive`` is false (useful for agreement checking).

    ``on_event`` receives engine lifecycle dicts (``engine_started``
    forwarded from the worker pipe, ``engine_finished`` /
    ``engine_cancelled`` emitted parent-side).  When :mod:`repro.obs`
    tracing is enabled in the calling process, every worker traces on the
    parent's epoch and its spans/samples are merged into the active
    tracer as they stream back.
    """
    if not methods:
        raise ValueError("portfolio needs at least one engine")
    ctx = _context()
    if jobs is None:
        jobs = min(len(methods), max(2, os.cpu_count() or 1))
    jobs = max(1, jobs)
    options = dict(engine_options or {})
    tracer = obs.current_tracer() if obs.is_enabled() else None
    obs_cfg = (
        {"epoch": tracer.epoch, "tick": tracer.tick}
        if tracer is not None
        else None
    )
    pending = list(methods)
    running: list[WorkerHandle] = []
    outcomes: list[EngineOutcome] = []
    winner: str | None = None
    winning: VerificationResult | None = None
    start = time.monotonic()

    def notify(kind: str, method: str, elapsed: float, **extra) -> None:
        if on_event is not None:
            on_event(
                {"kind": kind, "engine": method, "elapsed": elapsed, **extra}
            )

    def finish(run: WorkerHandle, outcome: EngineOutcome) -> None:
        running.remove(run)
        outcomes.append(outcome)
        if outcome.cancelled:
            notify("engine_cancelled", outcome.method, outcome.elapsed)
        else:
            notify(
                "engine_finished",
                outcome.method,
                outcome.elapsed,
                label=outcome.label,
            )

    # With stop_on_decisive=False every engine must run to completion
    # even after a winner lands (agreement checking).
    def launching() -> bool:
        return bool(pending) and (winner is None or not stop_on_decisive)

    while running or launching():
        while launching() and len(running) < jobs:
            method = pending.pop(0)
            running.append(
                WorkerHandle(
                    ctx,
                    _worker,
                    (netlist, method, max_depth, options, obs_cfg),
                    label=method,
                )
            )
        progressed = False
        for run in list(running):
            if run not in running:
                continue  # cancelled earlier in this same sweep
            if run.conn.poll():
                progressed = True
                try:
                    kind, payload = run.conn.recv()
                except (EOFError, OSError):
                    kind, payload = "error", "worker died mid-message"
                if kind == "event":
                    # Lifecycle announcement; the final verdict is still
                    # to come, so the run stays in flight.
                    if on_event is not None:
                        on_event({"elapsed": run.elapsed, **payload})
                    continue
                if kind == "obs":
                    # Worker trace records, stitched into the parent's
                    # timeline (the worker traced on our epoch).
                    if tracer is not None:
                        tracer.merge_records(payload)
                    continue
                elapsed = run.elapsed
                run.kill()
                if kind != "ok":
                    result = _unknown(run.label, "engine_crashed", budget)
                    result.stats.set("crash_note", 1)
                    finish(
                        run,
                        EngineOutcome(
                            run.label, result, elapsed, crashed=True
                        ),
                    )
                    continue
                result: VerificationResult = payload
                decisive = result.proved
                if result.failed:
                    # Replay on the parent's own netlist before declaring a
                    # winner: a bogus trace from a broken engine must lose.
                    if result.trace is not None and result.trace.validate(
                        netlist
                    ):
                        decisive = True
                    else:
                        result = _unknown(
                            run.label, "invalid_counterexample", budget
                        )
                finish(run, EngineOutcome(run.label, result, elapsed))
                if decisive and winner is None:
                    winner, winning = run.label, result
                    if stop_on_decisive:
                        for method in pending:
                            outcomes.append(
                                EngineOutcome(
                                    method,
                                    _unknown(method, "cancelled", budget),
                                    0.0,
                                    cancelled=True,
                                )
                            )
                            notify("engine_cancelled", method, 0.0)
                        pending.clear()
                        for loser in list(running):
                            loser.kill()
                            finish(
                                loser,
                                EngineOutcome(
                                    loser.label,
                                    _unknown(
                                        loser.label, "cancelled", budget
                                    ),
                                    loser.elapsed,
                                    cancelled=True,
                                ),
                            )
            elif run.elapsed > budget:
                progressed = True
                run.kill()
                finish(
                    run,
                    EngineOutcome(
                        run.label,
                        _unknown(run.label, "timed_out", budget),
                        run.elapsed,
                        timed_out=True,
                    ),
                )
            elif not run.process.is_alive():
                progressed = True
                run.kill()
                finish(
                    run,
                    EngineOutcome(
                        run.label,
                        _unknown(run.label, "engine_crashed", budget),
                        run.elapsed,
                        crashed=True,
                    ),
                )
        if not progressed:
            time.sleep(_POLL_INTERVAL)

    stats = StatsBag()
    stats.set("portfolio_wall_seconds", time.monotonic() - start)
    stats.set("portfolio_engines", len(methods))
    for outcome in outcomes:
        stats.incr(f"engine_{outcome.method}_{outcome.label}")
        stats.max("max_engine_seconds", outcome.elapsed)
    if winner is not None:
        stats.incr(f"winner_{winner}")
        result = winning
    else:
        # Nobody decided: surface the most informative UNKNOWN (a real
        # engine UNKNOWN beats a timeout beats a crash).
        result = _unknown("portfolio", "no_decisive_engine", budget)
        for outcome in outcomes:
            if not (outcome.timed_out or outcome.crashed or outcome.cancelled):
                result = outcome.result
                break
        stats.incr("no_winner")
    return PortfolioOutcome(
        result=result, winner=winner, outcomes=outcomes, stats=stats
    )
