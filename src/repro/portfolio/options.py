"""Typed configuration of the portfolio engine.

Kept in a leaf module (no imports from :mod:`repro.mc` or the rest of
the portfolio package) so the engine registry can name it as the
``portfolio`` engine's option dataclass without creating an import cycle
with :mod:`repro.mc.engine`.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.portfolio.cache import ResultCache
    from repro.util.stats import StatsBag


@dataclass
class PortfolioOptions:
    """Everything :func:`repro.portfolio.portfolio_verify` accepts.

    ``engines=None`` means the registry-derived default portfolio (every
    non-composite, non-variant engine); ``budget`` is the per-engine
    wall-clock limit in seconds.
    """

    max_depth: int = 100
    engines: Sequence[str] | None = None
    policy: str = "race_all"
    budget: float = 5.0
    jobs: int | None = None
    cache: "ResultCache | str | pathlib.Path | None" = None
    fraig_preprocess: bool = False
    stats: "StatsBag | None" = None
    engine_options: dict | None = None
    # Engine lifecycle callback (engine_started / engine_finished /
    # engine_cancelled dicts from the worker runner); Session wires its
    # progress stream through this.
    on_event: "object | None" = None
