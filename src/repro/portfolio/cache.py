"""Persistent verification-result cache keyed by structural hash.

The store is a JSON-lines file (append-only, last entry wins on reload)
fronted by an in-memory LRU map, so a long-running service pays one file
read at start-up and O(1) per lookup afterwards.  Keys are
``(structural_hash, method, max_depth)`` — the three things a verdict
depends on besides the engine's resource budget.

Records are the :meth:`VerificationResult.to_dict` payload with the
cache key fields added.  Traces are serialized *positionally*
(bit-strings over the latch and input registration order, the
``netlist=`` encoding of :mod:`repro.mc.result`) rather than by AIG node
id, because node ids are exactly what the structural hash abstracts
away: a hit produced by one manager must decode into a valid trace for a
differently-numbered manager of the same circuit.

UNKNOWN entries are stored too, stamped with the wall-clock budget that
failed to crack them.  They only count as hits for requests with the same
or a smaller budget — a caller offering more time deserves a fresh run.
An entry stamped ``None`` came from an *unbudgeted* run (the engine hit
its depth limit with unlimited time) and answers any budget at that
depth.
"""

from __future__ import annotations

import json
import pathlib
from collections import OrderedDict

from repro.circuits.netlist import Netlist
from repro.mc.result import Status, VerificationResult
from repro.portfolio.hashing import structural_hash
from repro.util.stats import StatsBag


class ResultCache:
    """LRU-fronted persistent memo of verification results.

    ``path=None`` gives a purely in-memory cache; with a path every store
    is appended to the JSON-lines file and the whole file is replayed on
    construction (so concurrent *writers* are append-safe, and the newest
    entry for a key wins).
    """

    def __init__(
        self,
        path: str | pathlib.Path | None = None,
        max_memory_entries: int = 4096,
    ) -> None:
        self.path = pathlib.Path(path) if path is not None else None
        self.max_memory_entries = max_memory_entries
        self._entries: OrderedDict[tuple[str, str, int], dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                key = (
                    record["hash"],
                    record["method"],
                    int(record["max_depth"]),
                )
            except (ValueError, KeyError):
                continue  # a torn/corrupt line loses one entry, not the file
            self._remember(key, record)

    def _remember(self, key: tuple[str, str, int], record: dict) -> None:
        self._entries[key] = record
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_memory_entries:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #

    def key_for(
        self,
        netlist: Netlist,
        method: str,
        max_depth: int,
        digest: str | None = None,
    ) -> tuple[str, str, int]:
        """Cache key; pass a precomputed ``digest`` to skip rehashing."""
        if digest is None:
            digest = structural_hash(netlist)
        return (digest, method, int(max_depth))

    def lookup(
        self,
        netlist: Netlist,
        method: str,
        max_depth: int,
        budget: float | None = None,
        digest: str | None = None,
    ) -> VerificationResult | None:
        """A cached result for this problem, or None.

        ``budget`` is the wall-clock the caller is prepared to spend
        (None = unlimited): a stored UNKNOWN stamped with a smaller
        budget does not satisfy it.  A ``None`` stamp means the stored
        run was itself unbudgeted — depth-limited, not time-limited — so
        it answers any budget at the same depth.
        """
        key = self.key_for(netlist, method, max_depth, digest)
        record = self._entries.get(key)
        if record is None:
            self.misses += 1
            return None
        if record["status"] == Status.UNKNOWN.value:
            stamped = record.get("budget")
            if stamped is not None and (budget is None or stamped < budget):
                self.misses += 1
                return None
        try:
            result = VerificationResult.from_dict(record, netlist)
        except (KeyError, ValueError, TypeError, AttributeError):
            # A record that does not decode for this netlist (corruption,
            # a legacy layout, or a key collision between structurally-
            # equal-modulo-dead-inputs designs) is a miss, not a crash.
            del self._entries[key]
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        result.stats.incr("cache_hit")
        return result

    def store(
        self,
        netlist: Netlist,
        method: str,
        max_depth: int,
        result: VerificationResult,
        budget: float | None = None,
        digest: str | None = None,
    ) -> None:
        key = self.key_for(netlist, method, max_depth, digest)
        record = result.to_dict(netlist)
        record.update(
            {
                "hash": key[0],
                "method": key[1],
                "max_depth": key[2],
                "budget": budget,
            }
        )
        self._remember(key, record)
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as handle:
                handle.write(json.dumps(record) + "\n")

    def stats(self) -> StatsBag:
        bag = StatsBag()
        bag.incr("cache_hits", self.hits)
        bag.incr("cache_misses", self.misses)
        bag.set("cache_entries", len(self._entries))
        return bag
