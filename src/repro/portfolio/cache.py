"""Persistent verification-result cache keyed by structural hash.

An in-memory LRU map fronts one of two persistence backends, chosen by
the path's suffix:

* ``.jsonl`` (or anything else) — the legacy JSON-lines file:
  append-only, last entry wins on reload.  Appends are crash- and
  concurrency-safe: each record is written with a *single*
  ``os.write`` to an ``O_APPEND`` descriptor under an advisory file
  lock, so parallel writer processes can never interleave mid-line
  (they used to, through buffered ``file.write`` calls).
* ``.sqlite`` / ``.sqlite3`` / ``.db`` — the service store
  (:mod:`repro.svc.store`): WAL-mode SQLite with schema migration, a
  ``namespace`` column for tenant isolation, and certificate blobs
  stored content-addressed alongside the verdicts.  Lookups that miss
  the memory front fall through to an indexed point query, so a
  long-running service is not bounded by its LRU size.

Keys are ``(structural_hash, method, max_depth)`` — the three things a
verdict depends on besides the engine's resource budget.  Records are
the :meth:`VerificationResult.to_dict` payload with the cache key
fields added.  Traces are serialized *positionally* (bit-strings over
the latch and input registration order, the ``netlist=`` encoding of
:mod:`repro.mc.result`) rather than by AIG node id, because node ids
are exactly what the structural hash abstracts away: a hit produced by
one manager must decode into a valid trace for a differently-numbered
manager of the same circuit.

UNKNOWN entries are stored too, stamped with the wall-clock budget that
failed to crack them.  They only count as hits for requests with the same
or a smaller budget — a caller offering more time deserves a fresh run.
An entry stamped ``None`` came from an *unbudgeted* run (the engine hit
its depth limit with unlimited time) and answers any budget at that
depth.
"""

from __future__ import annotations

import json
import os
import pathlib
from collections import OrderedDict
from typing import Iterable

try:  # advisory locking is POSIX-only; appends stay atomic without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

from repro.circuits.netlist import Netlist
from repro.mc.result import Status, VerificationResult
from repro.portfolio.hashing import structural_hash
from repro.util.stats import StatsBag

CacheKey = tuple[str, str, int]


class _MemoryBackend:
    """No persistence: the LRU front is the whole cache."""

    def load(self, limit: int) -> Iterable[dict]:
        return ()

    def fetch(self, key: CacheKey) -> dict | None:
        return None

    def append(self, key: CacheKey, record: dict) -> None:
        pass


class _JsonlBackend:
    """Append-only JSON-lines file, torn-write-safe.

    Every record is serialized first and written with one ``os.write``
    call on an ``O_APPEND`` descriptor — POSIX guarantees the kernel
    performs the append atomically, so two processes storing at once
    produce two whole lines in *some* order, never a spliced one.  An
    advisory ``flock`` guards the (theoretical) partial-write retry
    path for oversized records.
    """

    def __init__(self, path: pathlib.Path) -> None:
        self.path = path

    def load(self, limit: int) -> Iterable[dict]:
        if not self.path.exists():
            return
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError:
                continue  # a torn/corrupt line loses one entry, not the file

    def fetch(self, key: CacheKey) -> dict | None:
        # Everything was replayed into memory at construction; an entry
        # evicted from the LRU since is gone for this process.
        return None

    def append(self, key: CacheKey, record: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = (json.dumps(record) + "\n").encode()
        fd = os.open(
            str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            view = memoryview(data)
            while view:
                written = os.write(fd, view)
                view = view[written:]
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)


class _StoreBackend:
    """The SQLite service store (:mod:`repro.svc.store`)."""

    def __init__(self, store, namespace: str) -> None:
        self.store = store
        self.namespace = namespace

    def load(self, limit: int) -> Iterable[dict]:
        return self.store.iter_results(self.namespace, limit=limit)

    def fetch(self, key: CacheKey) -> dict | None:
        digest, method, max_depth = key
        return self.store.get_result(
            self.namespace, digest, method, max_depth
        )

    def append(self, key: CacheKey, record: dict) -> None:
        digest, method, max_depth = key
        self.store.put_result(
            self.namespace, digest, method, max_depth, record
        )


def _is_store_path(path: pathlib.Path) -> bool:
    from repro.svc.store import STORE_SUFFIXES

    return path.suffix.lower() in STORE_SUFFIXES


class ResultCache:
    """LRU-fronted persistent memo of verification results.

    ``path=None`` gives a purely in-memory cache; a ``.jsonl`` path
    appends to a JSON-lines file replayed on construction; a
    ``.sqlite``/``.sqlite3``/``.db`` path opens (or creates) a service
    store, with ``namespace`` selecting the tenant partition.  An
    already-open :class:`repro.svc.store.Store` may be passed directly.
    """

    def __init__(
        self,
        path: "str | pathlib.Path | object | None" = None,
        max_memory_entries: int = 4096,
        namespace: str = "",
    ) -> None:
        self.max_memory_entries = max_memory_entries
        self.namespace = namespace
        self._entries: OrderedDict[CacheKey, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.path: pathlib.Path | None = None
        if path is None:
            self._backend: object = _MemoryBackend()
        elif isinstance(path, (str, pathlib.Path)):
            self.path = pathlib.Path(path)
            if _is_store_path(self.path):
                from repro.svc.store import Store

                self._backend = _StoreBackend(Store(self.path), namespace)
            else:
                if namespace:
                    raise ValueError(
                        "namespace isolation needs the SQLite store "
                        "backend; JSON-lines caches are single-tenant"
                    )
                self._backend = _JsonlBackend(self.path)
        else:  # an open Store
            self.path = getattr(path, "path", None)
            self._backend = _StoreBackend(path, namespace)
        self._load()

    def _load(self) -> None:
        for record in self._backend.load(self.max_memory_entries):
            try:
                key = (
                    record["hash"],
                    record["method"],
                    int(record["max_depth"]),
                )
            except (ValueError, KeyError, TypeError):
                continue
            self._remember(key, record)

    def _remember(self, key: CacheKey, record: dict) -> None:
        self._entries[key] = record
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_memory_entries:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #

    def key_for(
        self,
        netlist: Netlist,
        method: str,
        max_depth: int,
        digest: str | None = None,
    ) -> CacheKey:
        """Cache key; pass a precomputed ``digest`` to skip rehashing."""
        if digest is None:
            digest = structural_hash(netlist)
        return (digest, method, int(max_depth))

    def lookup(
        self,
        netlist: Netlist,
        method: str,
        max_depth: int,
        budget: float | None = None,
        digest: str | None = None,
    ) -> VerificationResult | None:
        """A cached result for this problem, or None.

        ``budget`` is the wall-clock the caller is prepared to spend
        (None = unlimited): a stored UNKNOWN stamped with a smaller
        budget does not satisfy it.  A ``None`` stamp means the stored
        run was itself unbudgeted — depth-limited, not time-limited — so
        it answers any budget at the same depth.
        """
        key = self.key_for(netlist, method, max_depth, digest)
        record = self._entries.get(key)
        if record is None:
            # Fall through to the backend: the store answers point
            # queries for entries the LRU never saw (or evicted).
            record = self._backend.fetch(key)
            if record is not None:
                self._remember(key, record)
        if record is None:
            self.misses += 1
            return None
        if record["status"] == Status.UNKNOWN.value:
            stamped = record.get("budget")
            if stamped is not None and (budget is None or stamped < budget):
                self.misses += 1
                return None
        try:
            result = VerificationResult.from_dict(record, netlist)
        except (KeyError, ValueError, TypeError, AttributeError):
            # A record that does not decode for this netlist (corruption,
            # a legacy layout, or a key collision between structurally-
            # equal-modulo-dead-inputs designs) is a miss, not a crash.
            del self._entries[key]
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        result.stats.incr("cache_hit")
        return result

    def store(
        self,
        netlist: Netlist,
        method: str,
        max_depth: int,
        result: VerificationResult,
        budget: float | None = None,
        digest: str | None = None,
    ) -> None:
        key = self.key_for(netlist, method, max_depth, digest)
        record = result.to_dict(netlist)
        record.update(
            {
                "hash": key[0],
                "method": key[1],
                "max_depth": key[2],
                "budget": budget,
            }
        )
        self._remember(key, record)
        self._backend.append(key, record)

    def stats(self) -> StatsBag:
        bag = StatsBag()
        bag.incr("cache_hits", self.hits)
        bag.incr("cache_misses", self.misses)
        bag.set("cache_entries", len(self._entries))
        return bag
