"""Engine selection and scheduling policies.

A policy turns (netlist, engine list) into a :class:`Plan`: which engines
to run, in what order, raced or one-after-another.  Three policies cover
the useful design points:

* ``race_all`` — run every engine concurrently, first decisive verdict
  wins.  Lowest latency, highest cost; the default.
* ``sequential_fallback`` — cheapest-first, stop at the first decisive
  verdict.  Lowest cost, for throughput-bound batch work.
* ``predict`` — order the engines by a cheap structural prediction of the
  likely winner (latch/input/gate counts from :mod:`repro.aig.analysis`),
  then run sequentially.  The features deliberately cost one cone walk —
  a policy that needs a SAT call to choose a SAT engine has already lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aig.analysis import cone_size_many, level_of
from repro.api.registry import engines_with, get_engine
from repro.circuits.netlist import Netlist
from repro.errors import ReproError

POLICIES = ("race_all", "sequential_fallback", "predict")


def default_engines() -> tuple[str, ...]:
    """Engines a portfolio runs when the caller does not choose.

    Derived from the registry by capability: every non-composite engine
    that is not a forced-option variant of another candidate (the
    allsat/hybrid modes ride along with ``reach_aig`` only when asked
    for).  Registration order puts the quick early-exit engines first.
    """
    return tuple(
        spec.name
        for spec in engines_with(composite=False)
        if spec.variant_of is None
    )


@dataclass
class Plan:
    """An ordered engine schedule."""

    methods: list[str]
    parallel: bool
    policy: str
    features: dict[str, float] = field(default_factory=dict)


def circuit_features(netlist: Netlist) -> dict[str, float]:
    """Cheap structural features steering the ``predict`` policy."""
    roots = [
        latch.next_edge
        for latch in netlist.latches
        if latch.next_edge is not None
    ]
    if netlist.has_property:
        roots.append(netlist.property_edge)
    ands = cone_size_many(netlist.aig, roots) if roots else 0
    depth = (
        max(level_of(netlist.aig, edge) for edge in roots) if roots else 0
    )
    return {
        "latches": float(netlist.num_latches),
        "inputs": float(netlist.num_inputs),
        "ands": float(ands),
        "depth": float(depth),
        "constraints": float(len(netlist.constraints)),
    }


def _predict_order(features: dict[str, float], engines: list[str]) -> list[str]:
    """Rank engines for one circuit; lower score runs earlier."""
    latches = features["latches"]
    inputs = features["inputs"]
    ands = features["ands"]
    depth = features["depth"]
    scores = {
        # BDDs shine while the state space is small and die by width.
        "reach_bdd": latches + 0.25 * ands,
        "reach_bdd_fwd": 1.0 + latches + 0.25 * ands,
        # The circuit traversal scales with gate count, not latch count.
        "reach_aig": 2.0 + 0.1 * ands + 0.5 * inputs,
        "reach_aig_fwd": 4.0 + 0.1 * ands + 0.5 * inputs + 0.5 * latches,
        "reach_aig_allsat": 3.0 + 0.1 * ands + 1.5 * inputs,
        "reach_aig_hybrid": 2.5 + 0.1 * ands + 1.0 * inputs,
        # BMC is unbeatable on shallow bugs but proves nothing; induction
        # is two SAT calls when the property is inductive.  Both get a
        # small constant so complete engines win ties on tiny circuits.
        # The latch term prices BMC's gamble: the wider the state space,
        # the less likely the bug is shallow enough for a depth sweep.
        "bmc": 1.5 + 0.05 * ands + 0.04 * latches,
        "k_induction": 1.0 + 0.05 * ands,
        # Interpolation is the deep-PROVED specialist: insensitive to
        # latch count (no canonical state sets), pays per gate in the
        # unrolled CNF, and proof logging taxes wide input cones.
        "itp": 2.5 + 0.05 * ands + 0.3 * inputs,
        # PDR never unrolls, so latch count is free; its single-step
        # queries pay per gate *level* (deep combinational cones make
        # generalization queries slow), which makes it the first pick on
        # wide-but-shallow state machines where itp's unrollings and
        # BMC's depth sweeps both blow up.
        "pdr": 2.0 + 0.25 * depth + 0.02 * ands,
        # Cube-and-conquer earns its fork overhead on wide-input,
        # deep-logic cones (equivalence miters, arithmetic): splitting
        # needs internal gates with large fanout cones to bite on.
        # Latches price the unrolling blowup; many inputs are the
        # signal that cubing will actually shrink the leaves.
        "cnc": 3.0 + 0.02 * ands + 0.15 * depth + 0.3 * latches
        - 0.08 * inputs,
    }
    return sorted(engines, key=lambda m: (scores.get(m, 1e9), m))


def select_plan(
    netlist: Netlist,
    policy: str = "race_all",
    engines: list[str] | tuple[str, ...] | None = None,
) -> Plan:
    """Build the engine schedule one circuit will run under."""
    if policy not in POLICIES:
        raise ReproError(
            f"unknown portfolio policy {policy!r}; choose from {POLICIES}"
        )
    chosen = list(engines) if engines else list(default_engines())
    if not chosen:
        raise ReproError("portfolio needs at least one engine")
    for name in chosen:
        get_engine(name)  # unknown engines fail here, not in a worker
    if policy == "race_all":
        return Plan(methods=chosen, parallel=True, policy=policy)
    if policy == "sequential_fallback":
        # Quick early-exit engines first (capability metadata), then the
        # complete engines in the caller's order.
        front = [m for m in chosen if get_engine(m).quick]
        rest = [m for m in chosen if m not in front]
        return Plan(methods=front + rest, parallel=False, policy=policy)
    features = circuit_features(netlist)
    return Plan(
        methods=_predict_order(features, chosen),
        parallel=False,
        policy=policy,
        features=features,
    )
