"""Command-line interface to the library's engines.

Installed as the ``repro`` console script::

    repro info design.bench
    repro convert design.bench design.blif
    repro engines
    repro mc design.blif --method reach_aig --property "!bad"
    repro mc counter.bench --method itp --max-depth 32
    repro mc counter.bench --method pdr --max-depth 32
    repro portfolio a.bench b.blif --engines bmc,reach_aig --timeout 5 \
        --jobs 4 --cache results.jsonl
    repro quantify design.bench --output G22 --vars G1,G3 --preset full
    repro fraig design.bench
    repro atpg design.bench --rounds 4

File formats are chosen by extension: ``.bench`` (ISCAS-89), ``.blif``
(Berkeley), anything else is the native line-oriented netlist format of
:mod:`repro.circuits.parse`.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Sequence

from repro.aig.graph import edge_not
from repro.circuits.bench_format import parse_bench, serialize_bench
from repro.circuits.blif import parse_blif, serialize_blif
from repro.circuits.netlist import Netlist
from repro.circuits.parse import parse_netlist, serialize_netlist
from repro.errors import ReproError


def _load(path: str) -> Netlist:
    text = pathlib.Path(path).read_text()
    suffix = pathlib.Path(path).suffix.lower()
    if suffix == ".bench":
        return parse_bench(text, name=pathlib.Path(path).stem)
    if suffix == ".blif":
        return parse_blif(text)
    return parse_netlist(text)


def _save(netlist: Netlist, path: str) -> None:
    suffix = pathlib.Path(path).suffix.lower()
    if suffix == ".bench":
        text = serialize_bench(netlist)
    elif suffix == ".blif":
        text = serialize_blif(netlist)
    else:
        text = serialize_netlist(netlist)
    pathlib.Path(path).write_text(text)


def _resolve_signal(netlist: Netlist, token: str) -> int:
    """An output name or input/latch name, with optional ``!`` prefix."""
    invert = token.startswith("!")
    name = token[1:] if invert else token
    edge = None
    if name in netlist.outputs:
        edge = netlist.outputs[name]
    else:
        for latch in netlist.latches:
            if latch.name == name:
                edge = 2 * latch.node
                break
        else:
            for node in netlist.aig.inputs:
                if netlist.aig.input_name(node) == name:
                    edge = 2 * node
                    break
    if edge is None:
        raise ReproError(
            f"unknown signal {name!r}; outputs are "
            f"{sorted(netlist.outputs)}"
        )
    return edge_not(edge) if invert else edge


# ---------------------------------------------------------------------- #
# Subcommands
# ---------------------------------------------------------------------- #


def _cmd_info(args: argparse.Namespace) -> int:
    netlist = _load(args.file)
    aig = netlist.aig
    print(f"name:      {netlist.name}")
    print(f"inputs:    {netlist.num_inputs}")
    print(f"latches:   {netlist.num_latches}")
    print(f"and gates: {aig.num_ands}")
    print(f"outputs:   {', '.join(sorted(netlist.outputs)) or '(none)'}")
    print(f"property:  {'yes' if netlist.has_property else 'no'}")
    if netlist.num_latches:
        inits = "".join(
            str(int(latch.init)) for latch in netlist.latches
        )
        print(f"init:      {inits} ({[l.name for l in netlist.latches]})")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    netlist = _load(args.input)
    _save(netlist, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    from repro.api.registry import iter_engines

    if getattr(args, "json", False):
        import json

        from repro.api.registry import engine_catalog

        print(json.dumps({"engines": engine_catalog()}, indent=2))
        return 0

    def capability_flags(spec) -> str:
        flags = []
        if spec.complete:
            flags.append("complete")
        if spec.produces_trace:
            flags.append("trace")
        if spec.supports_constraints:
            flags.append("constraints")
        if spec.quick:
            flags.append("quick")
        if spec.composite:
            flags.append("composite")
        if spec.variant_of:
            flags.append(f"variant:{spec.variant_of}")
        return ",".join(flags)

    specs = list(iter_engines())
    name_width = max(len(spec.name) for spec in specs) + 2
    flag_width = max(
        len("capabilities"),
        max(len(capability_flags(spec)) for spec in specs),
    ) + 2
    print(f"{'engine':<{name_width}}{'direction':<11}"
          f"{'capabilities':<{flag_width}}summary")
    for spec in specs:
        print(f"{spec.name:<{name_width}}{spec.direction:<11}"
              f"{capability_flags(spec):<{flag_width}}{spec.summary}")
    return 0


def _cmd_mc(args: argparse.Namespace) -> int:
    from repro.mc import verify

    netlist = _load(args.file)
    if args.property is not None:
        netlist.set_property(_resolve_signal(netlist, args.property))
    if not netlist.has_property:
        print(
            "error: the file carries no property; pass --property SIGNAL",
            file=sys.stderr,
        )
        return 2
    extra: dict[str, object] = {}
    if args.method.startswith("reach_bdd"):
        extra["image"] = args.image
        if args.schedule is not None:
            extra["schedule"] = args.schedule
    elif args.method == "cnc" and args.workers is not None:
        extra["workers"] = args.workers
    elif args.method.startswith("reach_aig") and args.schedule is not None:
        from repro.core.quantify import QuantifyOptions

        quantify = QuantifyOptions.preset("full")
        quantify.schedule = args.schedule
        extra["quantify"] = quantify
    # Bare --trace keeps its original meaning (print the counterexample
    # states); --trace PATH and --report additionally turn on the
    # repro.obs instrumentation for the run.
    trace_path = args.trace if isinstance(args.trace, str) else None
    if trace_path is not None:
        extra["trace"] = trace_path
    elif args.report is not None:
        extra["trace"] = True
    result = verify(
        netlist, method=args.method, max_depth=args.max_depth, **extra
    )
    print(f"engine:  {result.engine}")
    print(f"verdict: {result.status.value}")
    print(f"iterations: {result.iterations}")
    if result.trace is not None:
        print(f"counterexample depth: {result.trace.depth}")
        if args.minimize:
            from repro.mc.minimize import minimize_trace

            minimized = minimize_trace(netlist, result.trace)
            print(
                f"minimized: {minimized.care_count} of "
                f"{minimized.total_inputs} trace inputs matter "
                f"({minimized.care_ratio:.0%})"
            )
            result.trace = minimized.trace
        if args.trace:
            latch_order = netlist.latch_nodes
            names = [latch.name for latch in netlist.latches]
            print("trace (" + " ".join(names) + "):")
            for step, state in enumerate(result.trace.states):
                bits = "".join(
                    str(int(state[node])) for node in latch_order
                )
                print(f"  step {step}: {bits}")
    if trace_path is not None:
        print(f"trace: wrote {trace_path}")
    if args.report is not None:
        from repro.obs import build_report

        report = build_report(result, getattr(result, "tracer", None))
        if isinstance(args.report, str):
            report.write_json(args.report)
            print(f"report: wrote {args.report}")
        else:
            print(report.render())
    if args.stats:
        print(result.stats.report(), file=sys.stderr)
    if result.failed:
        return 1
    if not result.status.is_conclusive:
        return 3
    return 0


def _cmd_portfolio(args: argparse.Namespace) -> int:
    from repro.mc.result import Status
    from repro.portfolio import portfolio_verify
    from repro.util.stats import StatsBag

    netlists = []
    for path in args.files:
        netlist = _load(path)
        if args.property is not None:
            netlist.set_property(_resolve_signal(netlist, args.property))
        if not netlist.has_property:
            print(
                f"error: {path} carries no property; pass --property SIGNAL",
                file=sys.stderr,
            )
            return 2
        netlists.append(netlist)
    engines = (
        [name.strip() for name in args.engines.split(",") if name.strip()]
        if args.engines
        else None
    )
    stats = StatsBag()
    results = portfolio_verify(
        netlists,
        engines=engines,
        policy=args.policy,
        budget=args.timeout,
        jobs=args.jobs,
        max_depth=args.max_depth,
        cache=args.cache,
        fraig_preprocess=args.fraig,
        stats=stats,
    )
    width = max(len(pathlib.Path(p).name) for p in args.files)
    print(f"{'design':<{width + 2}}{'verdict':<10}{'engine':<18}"
          f"{'time':>8}  cached")
    for path, result in zip(args.files, results):
        wall = result.stats.get("portfolio_wall_seconds", 0.0)
        cached = "yes" if result.stats.get("cache_hit") else "no"
        print(
            f"{pathlib.Path(path).name:<{width + 2}}"
            f"{result.status.value:<10}{result.engine:<18}"
            f"{wall * 1000:>6.0f}ms  {cached}"
        )
    hits = stats.get("cache_hits")
    winners = {
        key[len("winner_"):]: int(value)
        for key, value in stats
        if key.startswith("winner_") and value > 0
    }
    print(f"cache: {hits:.0f} hits, {stats.get('cache_misses'):.0f} misses")
    if winners:
        print("winners: " + ", ".join(
            f"{name} x{count}" for name, count in sorted(winners.items())
        ))
    if args.stats:
        print(stats.report(), file=sys.stderr)
    statuses = {result.status for result in results}
    if Status.FAILED in statuses:
        return 1
    if Status.UNKNOWN in statuses:
        return 3
    return 0


def _cmd_quantify(args: argparse.Namespace) -> int:
    from repro.core.quantify import QuantifyOptions, quantify_exists

    netlist = _load(args.file)
    root = _resolve_signal(netlist, args.output)
    by_name = {
        netlist.aig.input_name(node): node for node in netlist.aig.inputs
    }
    variables = []
    for token in args.vars.split(","):
        token = token.strip()
        if token not in by_name:
            raise ReproError(f"unknown input variable {token!r}")
        variables.append(by_name[token])
    options = QuantifyOptions.preset(args.preset)
    options.schedule = args.schedule
    outcome = quantify_exists(netlist.aig, root, variables, options)
    print(f"quantified: {len(outcome.quantified)} of "
          f"{len(variables)} variables")
    print(f"size: {outcome.stats.get('initial_size'):.0f} -> "
          f"{outcome.size} AND nodes "
          f"(peak {outcome.stats.get('peak_size', 0):.0f})")
    for key in ("sat_checks", "proved_equal", "dc_constants", "dc_merges"):
        if key in outcome.stats:
            print(f"{key}: {outcome.stats.get(key):.0f}")
    return 0


def _cmd_fraig(args: argparse.Namespace) -> int:
    from repro.sweep.fraig import fraig

    netlist = _load(args.file)
    roots = list(netlist.outputs.values())
    if netlist.has_property:
        roots.append(netlist.property_edge)
    if not roots:
        print("error: no outputs to reduce", file=sys.stderr)
        return 2
    result = fraig(netlist.aig, roots, engine=args.engine)
    print(f"size: {result.stats.get('size_before'):.0f} -> "
          f"{result.size} AND nodes "
          f"({result.stats.get('rounds'):.0f} rounds, "
          f"{result.stats.get('sat_checks', 0):.0f} SAT checks)")
    return 0


def _cmd_atpg(args: argparse.Namespace) -> int:
    from repro.atpg import FaultSimulator, SatTestGenerator

    netlist = _load(args.file)
    roots = list(netlist.outputs.values())
    if not roots:
        print("error: no outputs to test", file=sys.stderr)
        return 2
    simulator = FaultSimulator(netlist.aig, roots)
    total = len(simulator.remaining)
    coverage = simulator.run_random(words=args.words, rounds=args.rounds)
    print(f"fault list: {total} collapsed faults")
    print(f"random-pattern coverage: {coverage:.1%} "
          f"({len(simulator.remaining)} survivors)")
    generator = SatTestGenerator(netlist.aig, roots)
    redundant = aborted = detected = 0
    for fault in list(simulator.remaining):
        testable, _ = generator.generate(fault)
        if testable is True:
            detected += 1
        elif testable is False:
            redundant += 1
            if args.verbose:
                print(f"  redundant: {fault.describe(netlist.aig)}")
        else:
            aborted += 1
    print(f"deterministic pass: {detected} detected, "
          f"{redundant} redundant, {aborted} aborted")
    return 0


# ---------------------------------------------------------------------- #
# Service subcommands
# ---------------------------------------------------------------------- #


def _http_json(url: str, payload: dict | None = None) -> dict:
    """One JSON request against the service API (POST iff a payload)."""
    import json
    import urllib.error
    import urllib.request

    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        body = exc.read().decode()
        try:
            error = json.loads(body).get("error", body)
        except ValueError:
            error = body or str(exc)
        raise ReproError(f"service returned {exc.code}: {error}") from None
    except urllib.error.URLError as exc:
        raise ReproError(f"cannot reach service at {url}: {exc.reason}") from None


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.svc.server import VerificationServer

    server = VerificationServer(
        args.store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        lease_seconds=args.lease,
        max_pending=args.max_pending,
        trace_jobs=args.trace_jobs,
    )
    import signal
    import threading

    host, port = server.start()
    print(f"serving on http://{host}:{port} "
          f"(store {args.store}, {args.workers} workers)")
    stopped = threading.Event()
    # SIGTERM (docker stop, CI cleanup) must tear the worker fleet down
    # as cleanly as ^C, or their engine subprocesses outlive the server.
    signal.signal(signal.SIGTERM, lambda *_: stopped.set())
    try:
        stopped.wait()
    except KeyboardInterrupt:
        pass
    print("shutting down")
    server.stop()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json
    import time

    netlist = _load(args.file)
    if args.property is not None:
        netlist.set_property(_resolve_signal(netlist, args.property))
    if not netlist.has_property:
        print(
            "error: the file carries no property; pass --property SIGNAL",
            file=sys.stderr,
        )
        return 2
    text = serialize_netlist(netlist)
    name = args.name or pathlib.Path(args.file).stem
    fields = dict(
        method=args.method,
        max_depth=args.max_depth,
        timeout=args.timeout,
        priority=args.priority,
        namespace=args.namespace,
        name=name,
    )
    if args.url is not None:
        job_id = _http_json(
            f"{args.url.rstrip('/')}/submit",
            {"netlist": text, "format": "net", **fields},
        )["job_id"]
    else:
        from repro.svc.queue import TaskQueue
        from repro.svc.store import Store

        queue = TaskQueue(Store(args.store))
        job_id = queue.submit(text, fmt="net", **fields)
    print(f"job {job_id} submitted ({name}, method {args.method})")
    if not args.wait:
        return 0
    if args.url is None:
        # Offline mode has no server fleet; lend a hand draining the
        # store so --wait terminates (a no-op if another worker got
        # there first).
        from repro.svc.worker import Worker

        Worker(queue.store).run(drain=True)
    while True:
        if args.url is not None:
            status = _http_json(f"{args.url.rstrip('/')}/jobs/{job_id}")
        else:
            status = queue.job(job_id).to_dict()
        if status["state"] in ("done", "failed", "cancelled"):
            break
        time.sleep(args.poll)
    print(json.dumps(status, indent=2))
    if status["state"] == "failed":
        print(f"error: {status.get('reason')}", file=sys.stderr)
        return 2
    if status["state"] == "cancelled":
        return 3
    verdict = status.get("verdict")
    return {"proved": 0, "failed": 1}.get(verdict, 3)


def _follow_job(base_url: str, job_id: int, on_event) -> dict:
    """Consume a job's SSE stream until its terminal ``end`` event.

    Calls ``on_event(kind, event_dict)`` per persisted event; returns
    the ``end`` event's data.  A dropped connection (worker churn,
    proxy timeout) reconnects with ``Last-Event-ID``, so no events are
    missed and none repeat.
    """
    import json
    import time
    import urllib.error
    import urllib.request

    last_seq = 0
    while True:
        request = urllib.request.Request(
            f"{base_url}/jobs/{job_id}/events",
            headers={"Accept": "text/event-stream",
                     "Last-Event-ID": str(last_seq)},
        )
        try:
            response = urllib.request.urlopen(request, timeout=60)
        except urllib.error.HTTPError as exc:
            raise ReproError(
                f"service returned {exc.code} for job {job_id}"
            ) from None
        except urllib.error.URLError as exc:
            raise ReproError(
                f"cannot reach service at {base_url}: {exc.reason}"
            ) from None
        try:
            event_name: str | None = None
            event_id: str | None = None
            data_lines: list[str] = []
            for raw in response:
                line = raw.decode().rstrip("\r\n")
                if line == "":
                    if data_lines:
                        data = json.loads("\n".join(data_lines))
                        if event_id is not None:
                            last_seq = int(event_id)
                        if event_name == "end":
                            return data
                        on_event(event_name or "message", data)
                    event_name, event_id, data_lines = None, None, []
                    continue
                if line.startswith(":"):
                    continue  # keepalive comment
                field, _, value = line.partition(":")
                if value.startswith(" "):
                    value = value[1:]
                if field == "event":
                    event_name = value
                elif field == "id":
                    event_id = value
                elif field == "data":
                    data_lines.append(value)
        except (ConnectionError, TimeoutError, OSError):
            pass  # stream died mid-read; resume from last_seq
        finally:
            response.close()
        time.sleep(0.5)


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json

    if getattr(args, "follow", None) is not None:
        if args.url is None:
            print("error: --follow needs --url (SSE is served over HTTP)",
                  file=sys.stderr)
            return 2

        def on_event(kind: str, event: dict) -> None:
            payload = event.get("payload")
            detail = json.dumps(payload) if payload else ""
            print(f"[{event.get('seq', '?'):>4}] {kind:<18}{detail}")

        end = _follow_job(args.url.rstrip("/"), args.follow, on_event)
        print(f"job {args.follow} {end.get('state')}"
              + (f" ({end.get('verdict')})" if end.get("verdict") else ""))
        if end.get("state") == "failed":
            if end.get("reason"):
                print(f"error: {end['reason']}", file=sys.stderr)
            return 2
        if end.get("state") == "cancelled":
            return 3
        return {"proved": 0, "failed": 1}.get(end.get("verdict"), 3)

    if args.url is not None:
        query = f"?state={args.state}" if args.state else ""
        records = _http_json(f"{args.url.rstrip('/')}/jobs{query}")["jobs"]
    else:
        from repro.svc.queue import TaskQueue
        from repro.svc.store import Store

        queue = TaskQueue(Store(args.store))
        records = [
            job.to_dict() for job in queue.jobs(state=args.state or None)
        ]
    if args.json:
        print(json.dumps({"jobs": records}, indent=2))
        return 0
    if not records:
        print("no jobs")
        return 0
    print(f"{'id':>5}  {'state':<10}{'verdict':<9}{'method':<12}"
          f"{'att':>3}  name")
    for record in records:
        print(
            f"{record['job_id']:>5}  {record['state']:<10}"
            f"{(record.get('verdict') or '-'):<9}{record['method']:<12}"
            f"{record['attempts']:>3}  {record.get('name') or ''}"
        )
    return 0


def _render_top(doc: dict) -> str:
    """One ``repro top`` frame out of the ``/metrics`` JSON document."""
    from repro.obs.metrics import histogram_quantile

    families = doc.get("metrics", {})
    jobs = doc.get("jobs", {})
    lines = [
        f"queue depth {doc.get('queue_depth', 0)}    "
        f"active leases {doc.get('active_leases', 0)}    "
        f"sse streams {doc.get('sse_streams', 0)}",
        "jobs  " + "  ".join(
            f"{state}={jobs.get(state, 0)}"
            for state in ("queued", "running", "done", "failed", "cancelled")
        ),
        f"store  results {doc.get('results', 0)}  "
        f"certificates {doc.get('certificates', 0)}  "
        f"traces {doc.get('traces', 0)}",
    ]
    wins = families.get("repro_jobs_won_total", {}).get("samples", [])
    if wins:
        lines.append("")
        lines.append(f"{'method':<14}{'verdict':<12}{'jobs':>6}")
        for sample in wins:
            labels = sample.get("labels", {})
            lines.append(
                f"{labels.get('method', '?'):<14}"
                f"{labels.get('verdict', '?'):<12}"
                f"{int(sample.get('value', 0)):>6}"
            )
    latency = families.get("repro_job_latency_seconds", {}).get("samples", [])
    if latency:
        lines.append("")
        lines.append(
            f"{'method':<14}{'runs':>6}{'mean':>10}{'p50':>10}{'p95':>10}"
        )
        for sample in latency:
            labels = sample.get("labels", {})
            buckets = sample.get("buckets", [])
            count = sample.get("count", 0)
            mean = sample.get("sum", 0.0) / count if count else 0.0
            lines.append(
                f"{labels.get('method', '?'):<14}{count:>6}"
                f"{mean * 1000:>8.1f}ms"
                f"{histogram_quantile(0.5, buckets) * 1000:>8.1f}ms"
                f"{histogram_quantile(0.95, buckets) * 1000:>8.1f}ms"
            )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    base = args.url.rstrip("/")
    frames = 0
    while True:
        doc = _http_json(f"{base}/metrics")
        if args.iterations != 1:
            # Clear and home between frames; a single frame prints plain
            # (scripts and CI grep it).
            print("\x1b[2J\x1b[H", end="")
        print(_render_top(doc))
        frames += 1
        if args.iterations and frames >= args.iterations:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


# ---------------------------------------------------------------------- #
# Parser
# ---------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    # Engine and schedule choices come from the registries, so a newly
    # registered engine appears in the CLI without edits here.
    from repro.api.registry import engine_names
    from repro.core.schedule import scheduler_names
    from repro.portfolio.options import PortfolioOptions
    from repro.portfolio.policy import POLICIES, default_engines

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Circuit-based quantification for unbounded model checking "
            "(Cabodi et al., DATE 2005)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="structural summary of a netlist")
    p_info.add_argument("file")
    p_info.set_defaults(func=_cmd_info)

    p_convert = sub.add_parser(
        "convert", help="convert between .bench/.blif/native formats"
    )
    p_convert.add_argument("input")
    p_convert.add_argument("output")
    p_convert.set_defaults(func=_cmd_convert)

    p_engines = sub.add_parser(
        "engines",
        help="list the registered verification engines and their "
        "capability flags",
    )
    p_engines.add_argument(
        "--json",
        action="store_true",
        help="machine-readable registry (the /engines payload of the "
        "verification service)",
    )
    p_engines.set_defaults(func=_cmd_engines)

    p_mc = sub.add_parser("mc", help="model check an invariant")
    p_mc.add_argument("file")
    p_mc.add_argument(
        "--method",
        default="reach_aig",
        choices=list(engine_names()),
    )
    p_mc.add_argument(
        "--property",
        help="output/input name to assert invariantly true ('!name' negates)",
    )
    p_mc.add_argument("--max-depth", type=int, default=100)
    p_mc.add_argument(
        "--schedule",
        choices=scheduler_names(),
        help="quantification-scheduling heuristic for the reach engines "
        "(shared by the AIG and BDD image pipelines)",
    )
    p_mc.add_argument(
        "--image",
        default="scheduled",
        choices=["scheduled", "monolithic"],
        help="BDD post-image pipeline: clustered partitioned relation with "
        "early quantification, or conjoin-then-quantify",
    )
    p_mc.add_argument(
        "--trace",
        nargs="?",
        const=True,
        default=False,
        metavar="PATH",
        help="print the counterexample states; with a PATH, also record "
        "the run into a Chrome trace_event JSON file there "
        "(chrome://tracing / Perfetto); pass after the input file",
    )
    p_mc.add_argument(
        "--report",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="print a post-run report (timeline, per-phase breakdown, "
        "peak gauges); with a PATH, write the machine-readable JSON "
        "document there instead",
    )
    p_mc.add_argument(
        "--workers",
        type=int,
        help="conquer-pool size for --method cnc (0 solves in-process)",
    )
    p_mc.add_argument(
        "--stats",
        action="store_true",
        help="print the engine's stats bag to stderr",
    )
    p_mc.add_argument(
        "--minimize",
        action="store_true",
        help="don't-care-minimize the counterexample inputs",
    )
    p_mc.set_defaults(func=_cmd_mc)

    p_port = sub.add_parser(
        "portfolio",
        help="race several engines over one or more designs, with caching",
    )
    p_port.add_argument("files", nargs="+", metavar="FILE")
    p_port.add_argument(
        "--engines",
        help="comma-separated engine list "
        f"(default: {','.join(default_engines())})",
    )
    p_port.add_argument(
        "--policy",
        default="race_all",
        choices=list(POLICIES),
    )
    p_port.add_argument(
        "--timeout",
        type=float,
        default=PortfolioOptions.budget,
        help="per-engine wall-clock budget in seconds",
    )
    p_port.add_argument(
        "--jobs", type=int, help="max concurrent engine workers"
    )
    p_port.add_argument(
        "--cache", metavar="PATH", help="persistent JSON-lines result cache"
    )
    p_port.add_argument("--max-depth", type=int, default=100)
    p_port.add_argument(
        "--property",
        help="output/input/latch name asserted invariantly true "
        "('!name' negates); applied to every file",
    )
    p_port.add_argument(
        "--fraig",
        action="store_true",
        help="FRAIG-preprocess the cones before dispatch",
    )
    p_port.add_argument(
        "--stats",
        action="store_true",
        help="print the aggregated portfolio stats bag to stderr",
    )
    p_port.set_defaults(func=_cmd_portfolio)

    p_quant = sub.add_parser(
        "quantify", help="existentially quantify inputs out of an output cone"
    )
    p_quant.add_argument("file")
    p_quant.add_argument("--output", required=True, help="root signal")
    p_quant.add_argument(
        "--vars", required=True, help="comma-separated input names"
    )
    p_quant.add_argument(
        "--preset",
        default="full",
        choices=["shannon", "hash", "bdd", "sat", "full"],
    )
    p_quant.add_argument(
        "--schedule",
        default="min_dependence",
        choices=scheduler_names(),
    )
    p_quant.set_defaults(func=_cmd_quantify)

    p_fraig = sub.add_parser(
        "fraig", help="functionally reduce the output cones"
    )
    p_fraig.add_argument("file")
    p_fraig.add_argument(
        "--engine", default="cnf", choices=["cnf", "circuit"]
    )
    p_fraig.set_defaults(func=_cmd_fraig)

    p_serve = sub.add_parser(
        "serve",
        help="run the verification service: durable store, job queue, "
        "HTTP JSON API, worker fleet",
    )
    p_serve.add_argument("store", help="path of the SQLite service store")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8349)
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="worker processes draining the queue (0 = front only)",
    )
    p_serve.add_argument(
        "--lease", type=float, default=30.0,
        help="worker lease seconds (crash-recovery latency bound)",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=1024,
        help="queued-job bound; past it, submits are rejected with "
        "retry-after (backpressure)",
    )
    p_serve.add_argument(
        "--trace-jobs", action="store_true",
        help="workers record an obs trace per job, stored "
        "content-addressed and served at GET /jobs/<id>/trace",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a circuit to a verification service"
    )
    p_submit.add_argument("file")
    target = p_submit.add_mutually_exclusive_group(required=True)
    target.add_argument("--url", help="service base URL (http://host:port)")
    target.add_argument(
        "--store", help="enqueue directly into a store file (no server)"
    )
    p_submit.add_argument(
        "--method", default="portfolio", choices=list(engine_names())
    )
    p_submit.add_argument("--max-depth", type=int, default=100)
    p_submit.add_argument("--timeout", type=float)
    p_submit.add_argument("--priority", type=int, default=0)
    p_submit.add_argument(
        "--namespace", default="", help="tenant namespace for cache isolation"
    )
    p_submit.add_argument("--name", help="display name (default: file stem)")
    p_submit.add_argument(
        "--property",
        help="output/input/latch name asserted invariantly true "
        "('!name' negates)",
    )
    p_submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job is terminal; exit like 'repro mc' "
        "(0 proved / 1 failed / 3 unknown or cancelled)",
    )
    p_submit.add_argument("--poll", type=float, default=0.2)
    p_submit.set_defaults(func=_cmd_submit)

    p_jobs = sub.add_parser(
        "jobs", help="list a verification service's job table"
    )
    jobs_target = p_jobs.add_mutually_exclusive_group(required=True)
    jobs_target.add_argument("--url", help="service base URL")
    jobs_target.add_argument("--store", help="store file (no server needed)")
    p_jobs.add_argument(
        "--state", choices=["queued", "running", "done", "failed",
                            "cancelled"],
    )
    p_jobs.add_argument("--json", action="store_true")
    p_jobs.add_argument(
        "--follow", type=int, metavar="JOB_ID",
        help="stream one job's events live over SSE (needs --url); "
        "exits on the terminal event like 'repro submit --wait'",
    )
    p_jobs.set_defaults(func=_cmd_jobs)

    p_top = sub.add_parser(
        "top",
        help="live fleet telemetry: queue depth, leases, per-engine "
        "wins and latency quantiles from a service's /metrics",
    )
    p_top.add_argument("--url", required=True, help="service base URL")
    p_top.add_argument("--interval", type=float, default=2.0)
    p_top.add_argument(
        "--iterations", type=int, default=0,
        help="frames to render (0 = until interrupted; 1 prints a "
        "single plain frame without clearing the screen)",
    )
    p_top.set_defaults(func=_cmd_top)

    p_atpg = sub.add_parser(
        "atpg", help="stuck-at fault campaign on the output cones"
    )
    p_atpg.add_argument("file")
    p_atpg.add_argument("--words", type=int, default=4)
    p_atpg.add_argument("--rounds", type=int, default=4)
    p_atpg.add_argument("--verbose", action="store_true")
    p_atpg.set_defaults(func=_cmd_atpg)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
