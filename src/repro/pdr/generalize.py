"""Cube generalization: ternary expansion and unsat-core dropping.

Two independent widenings keep PDR's reasoning per-query cheap:

* **Ternary-simulation expansion** (SAT side).  A model gives one
  concrete predecessor (or bad) state; most of its latches are
  irrelevant to where it steps under the model's inputs.  Each latch is
  tentatively set to X and the targets re-evaluated in three-valued
  logic; latches whose X never reaches a target output are dropped, so
  one SAT model covers a whole cube of states.  A bit-parallel binary
  pre-filter (one :func:`repro.aig.simulate.simulate` call evaluating
  every single-latch flip at once) rules out the latches that provably
  matter before the exact ternary walk runs.  The expansion guarantee —
  *every* completion of the cube reaches the targets under the fixed
  inputs — is exactly what makes obligation chains replayable as
  concrete counterexample traces.

* **Unsat-core dropping** (UNSAT side).  When a consecution query
  refutes a cube, :attr:`repro.sat.solver.Solver.core` names the primed
  assumption literals the refutation actually used; the rest of the
  cube is dropped outright, and the survivors are attacked one by one
  with further queries.  Every candidate must keep excluding the
  initial state — a clause the initial state violates would break the
  certificate's initiation check.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.aig.graph import Aig
from repro.aig.simulate import _eval_plan, cone_plan
from repro.circuits.netlist import Netlist
from repro.pdr.frames import cube_excludes_init, state_to_cube
from repro.util.stats import StatsBag

Targets = Sequence[tuple[int, bool]]

# Flat three-valued encoding used by the ternary walk below.
_F, _T, _X = 0, 1, 2


def _ternary_eval(
    aig: Aig,
    assignment: Mapping[int, bool | None],
    targets: Targets,
) -> bool:
    """True iff every target edge evaluates to its required value in
    three-valued logic (``None`` = X) under the assignment.

    Runs on the cached levelized cone plan: one pass over flat int
    arrays (0/1/2 = False/True/X), no cone recomputation and no dict
    lookups per node.  This is PDR's per-candidate inner loop.
    """
    plan = cone_plan(aig, [edge for edge, _ in targets])
    values = [_F] * plan.size
    for index, node in plan.inputs:
        value = assignment.get(node, False)
        if value is None:
            values[index] = _X
        elif value:
            values[index] = _T
    for dst, src0, neg0, src1, neg1 in plan.ops:
        a = values[src0]
        if neg0 and a != _X:
            a ^= 1
        b = values[src1]
        if neg1 and b != _X:
            b ^= 1
        if a == _F or b == _F:
            values[dst] = _F
        elif a == _X or b == _X:
            values[dst] = _X
        else:
            values[dst] = _T
    pos = plan.pos
    for edge, required in targets:
        value = values[pos.get(edge >> 1, 0)]
        if value != _X and edge & 1:
            value ^= 1
        if value == _X or (value == _T) is not required:
            return False
    return True


def _flip_candidates(
    netlist: Netlist,
    state: Mapping[int, bool],
    inputs: Mapping[int, bool],
    targets: Targets,
) -> list[int]:
    """Latches whose single flip leaves every target at its required
    value — the only possible ternary drops, found with one bit-parallel
    simulation (pattern 0 is the base assignment, pattern k flips the
    k-th latch).  Lanes are packed integers straight into the plan
    evaluator — no numpy round-trip."""
    latch_nodes = netlist.latch_nodes
    patterns = len(latch_nodes) + 1
    mask = (1 << patterns) - 1
    plan = cone_plan(netlist.aig, [edge for edge, _ in targets])
    input_ints: dict[int, int] = {}
    for node, value in inputs.items():
        input_ints[node] = mask if value else 0
    for k, node in enumerate(latch_nodes):
        base = mask if state[node] else 0
        input_ints[node] = base ^ (1 << (k + 1))
    values = _eval_plan(plan, input_ints, mask)
    pos = plan.pos
    ok = mask
    for edge, required in targets:
        vector = values[pos.get(edge >> 1, 0)]
        if edge & 1:
            vector ^= mask
        ok &= vector if required else vector ^ mask
    return [
        node
        for k, node in enumerate(latch_nodes)
        if (ok >> (k + 1)) & 1
    ]


def expand_cube(
    netlist: Netlist,
    state: Mapping[int, bool],
    inputs: Mapping[int, bool],
    targets: Targets,
    stats: StatsBag,
) -> frozenset[int]:
    """Widen a concrete state to a cube whose every completion satisfies
    the targets under the fixed inputs.

    Greedy: latches surviving the flip pre-filter are X-ed one at a
    time; a drop is kept only if the exact ternary evaluation still
    forces every target.  The returned cube contains the surviving
    literals of ``state``.
    """
    if not targets:
        # Nothing to preserve: any single literal suffices to name the
        # cube, but an empty target list only arises for latch-free or
        # degenerate calls — keep the full state and let the caller cope.
        return state_to_cube(state)
    candidates = _flip_candidates(netlist, state, inputs, targets)
    assignment: dict[int, bool | None] = dict(inputs)
    assignment.update(state)
    dropped = 0
    for node in candidates:
        saved = assignment[node]
        assignment[node] = None
        if _ternary_eval(netlist.aig, assignment, targets):
            dropped += 1
        else:
            assignment[node] = saved
    stats.incr("pdr_ternary_dropped", dropped)
    return frozenset(
        node if assignment[node] else -node
        for node in netlist.latch_nodes
        if assignment[node] is not None
    )


# ---------------------------------------------------------------------- #
# UNSAT-side generalization
# ---------------------------------------------------------------------- #


def shrink_with_core(
    cube: frozenset[int],
    core: frozenset[int],
    init: Mapping[int, bool],
) -> frozenset[int]:
    """Keep the cube literals the refutation used, preserving initiation.

    If the core alone no longer excludes the initial state (or is
    empty), one deterministic literal of the original cube that
    disagrees with the initial state is restored — such a literal always
    exists because obligation cubes never contain the initial state.
    """
    shrunk = cube & core
    if shrunk and cube_excludes_init(shrunk, init):
        return shrunk
    rescue = min(
        (
            lit for lit in cube
            if (lit > 0) != init[abs(lit)]
        ),
        key=abs,
    )
    return shrunk | {rescue}


def generalize_cube(
    pool,
    level: int,
    cube: frozenset[int],
    init: Mapping[int, bool],
    stats: StatsBag,
) -> frozenset[int]:
    """Drop further literals from an already-blocked cube.

    Each surviving literal is attacked with its own consecution query;
    a successful drop immediately re-shrinks with the new core.  The
    cube stays init-excluding throughout, so its negation is always a
    sound lemma.
    """
    for lit in sorted(cube, key=abs):
        if lit not in cube or len(cube) == 1:
            continue
        candidate = cube - {lit}
        if not cube_excludes_init(candidate, init):
            continue
        verdict, payload, _ = pool.relative_query(level, candidate)
        if verdict == "unsat":
            cube = shrink_with_core(candidate, payload, init)
            stats.incr("pdr_core_dropped")
    return cube
