"""Cube generalization: ternary expansion and unsat-core dropping.

Two independent widenings keep PDR's reasoning per-query cheap:

* **Ternary-simulation expansion** (SAT side).  A model gives one
  concrete predecessor (or bad) state; most of its latches are
  irrelevant to where it steps under the model's inputs.  Each latch is
  tentatively set to X and the targets re-evaluated in three-valued
  logic; latches whose X never reaches a target output are dropped, so
  one SAT model covers a whole cube of states.  A bit-parallel binary
  pre-filter (one :func:`repro.aig.simulate.simulate` call evaluating
  every single-latch flip at once) rules out the latches that provably
  matter before the exact ternary walk runs.  The expansion guarantee —
  *every* completion of the cube reaches the targets under the fixed
  inputs — is exactly what makes obligation chains replayable as
  concrete counterexample traces.

* **Unsat-core dropping** (UNSAT side).  When a consecution query
  refutes a cube, :attr:`repro.sat.solver.Solver.core` names the primed
  assumption literals the refutation actually used; the rest of the
  cube is dropped outright, and the survivors are attacked one by one
  with further queries.  Every candidate must keep excluding the
  initial state — a clause the initial state violates would break the
  certificate's initiation check.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.aig.graph import Aig
from repro.aig.simulate import simulate
from repro.circuits.netlist import Netlist
from repro.pdr.frames import cube_excludes_init, state_to_cube
from repro.util.stats import StatsBag

Targets = Sequence[tuple[int, bool]]


def _ternary_eval(
    aig: Aig,
    assignment: Mapping[int, bool | None],
    targets: Targets,
) -> bool:
    """True iff every target edge evaluates to its required value in
    three-valued logic (``None`` = X) under the assignment."""
    edges = [edge for edge, _ in targets]
    values: dict[int, bool | None] = {0: False}
    for node in aig.cone(edges):
        if aig.is_input(node):
            values[node] = assignment.get(node, False)
            continue
        f0, f1 = aig.fanins(node)
        a = values[f0 >> 1]
        if a is not None and f0 & 1:
            a = not a
        b = values[f1 >> 1]
        if b is not None and f1 & 1:
            b = not b
        if a is False or b is False:
            values[node] = False
        elif a is None or b is None:
            values[node] = None
        else:
            values[node] = True
    for edge, required in targets:
        value = values.get(edge >> 1, False)
        if value is not None and edge & 1:
            value = not value
        if value is not required:
            return False
    return True


def _flip_candidates(
    netlist: Netlist,
    state: Mapping[int, bool],
    inputs: Mapping[int, bool],
    targets: Targets,
) -> list[int]:
    """Latches whose single flip leaves every target at its required
    value — the only possible ternary drops, found with one bit-parallel
    simulation (pattern 0 is the base assignment, pattern k flips the
    k-th latch)."""
    latch_nodes = netlist.latch_nodes
    patterns = len(latch_nodes) + 1
    words = (patterns + 63) // 64
    vectors: dict[int, np.ndarray] = {}
    for node, value in inputs.items():
        vectors[node] = np.full(
            words, 0xFFFFFFFFFFFFFFFF if value else 0, dtype=np.uint64
        )
    for k, node in enumerate(latch_nodes):
        base = np.full(
            words, 0xFFFFFFFFFFFFFFFF if state[node] else 0,
            dtype=np.uint64,
        )
        flip_at = k + 1
        base[flip_at // 64] ^= np.uint64(1) << np.uint64(flip_at % 64)
        vectors[node] = base
    outputs = simulate(netlist.aig, vectors, [edge for edge, _ in targets])
    ok = ~np.zeros(words, dtype=np.uint64)
    for edge, required in targets:
        vector = outputs[edge]
        ok &= vector if required else ~vector
    candidates = []
    for k, node in enumerate(latch_nodes):
        flip_at = k + 1
        if int(ok[flip_at // 64]) >> (flip_at % 64) & 1:
            candidates.append(node)
    return candidates


def expand_cube(
    netlist: Netlist,
    state: Mapping[int, bool],
    inputs: Mapping[int, bool],
    targets: Targets,
    stats: StatsBag,
) -> frozenset[int]:
    """Widen a concrete state to a cube whose every completion satisfies
    the targets under the fixed inputs.

    Greedy: latches surviving the flip pre-filter are X-ed one at a
    time; a drop is kept only if the exact ternary evaluation still
    forces every target.  The returned cube contains the surviving
    literals of ``state``.
    """
    if not targets:
        # Nothing to preserve: any single literal suffices to name the
        # cube, but an empty target list only arises for latch-free or
        # degenerate calls — keep the full state and let the caller cope.
        return state_to_cube(state)
    candidates = _flip_candidates(netlist, state, inputs, targets)
    assignment: dict[int, bool | None] = dict(inputs)
    assignment.update(state)
    dropped = 0
    for node in candidates:
        saved = assignment[node]
        assignment[node] = None
        if _ternary_eval(netlist.aig, assignment, targets):
            dropped += 1
        else:
            assignment[node] = saved
    stats.incr("pdr_ternary_dropped", dropped)
    return frozenset(
        node if assignment[node] else -node
        for node in netlist.latch_nodes
        if assignment[node] is not None
    )


# ---------------------------------------------------------------------- #
# UNSAT-side generalization
# ---------------------------------------------------------------------- #


def shrink_with_core(
    cube: frozenset[int],
    core: frozenset[int],
    init: Mapping[int, bool],
) -> frozenset[int]:
    """Keep the cube literals the refutation used, preserving initiation.

    If the core alone no longer excludes the initial state (or is
    empty), one deterministic literal of the original cube that
    disagrees with the initial state is restored — such a literal always
    exists because obligation cubes never contain the initial state.
    """
    shrunk = cube & core
    if shrunk and cube_excludes_init(shrunk, init):
        return shrunk
    rescue = min(
        (
            lit for lit in cube
            if (lit > 0) != init[abs(lit)]
        ),
        key=abs,
    )
    return shrunk | {rescue}


def generalize_cube(
    pool,
    level: int,
    cube: frozenset[int],
    init: Mapping[int, bool],
    stats: StatsBag,
) -> frozenset[int]:
    """Drop further literals from an already-blocked cube.

    Each surviving literal is attacked with its own consecution query;
    a successful drop immediately re-shrinks with the new core.  The
    cube stays init-excluding throughout, so its negation is always a
    sound lemma.
    """
    for lit in sorted(cube, key=abs):
        if lit not in cube or len(cube) == 1:
            continue
        candidate = cube - {lit}
        if not cube_excludes_init(candidate, init):
            continue
        verdict, payload, _ = pool.relative_query(level, candidate)
        if verdict == "unsat":
            cube = shrink_with_core(candidate, payload, init)
            stats.incr("pdr_core_dropped")
    return cube
