"""IC3 / property-directed reachability (Bradley, VMCAI 2011).

Where interpolation (:mod:`repro.itp`) refutes one monolithic unrolling
per iteration, PDR never unrolls: it maintains a trace of frames
``F_0 = I ⊆ F_1 ⊆ … ⊆ F_N`` over-approximating bounded reachability and
works exclusively with single-step queries against per-frame incremental
solvers.  One major iteration:

* **strengthen** — while ``F_N ∧ C ∧ ¬P`` is satisfiable, the bad state
  read off the model is ternary-expanded into a cube and handed to the
  proof-obligation queue.  An obligation ``(s, k)`` asks whether some
  ``F_{k-1}`` state steps into ``s``: if yes, the predecessor becomes an
  obligation at ``k-1`` (reaching ``k-1 = 0`` means the chain starts at
  the initial state — a concrete, replay-valid counterexample); if no,
  the unsat core generalizes ``s`` to a short clause pushed as far
  forward as it stays inductive;
* **propagate** — every clause at level ``k`` that also holds one step
  after ``F_k`` moves to ``k+1``; if some delta set empties,
  ``F_k = F_{k+1}`` is an inductive invariant and the property is
  PROVED.

Every PROVED verdict ships an explicit
:class:`repro.mc.result.InvariantCertificate` and (by default) has it
re-checked by :func:`repro.pdr.certify.check_certificate` on a fresh,
independent solver before the result is returned.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.aig.cnf import CnfMapper
from repro.aig.graph import FALSE, edge_not
from repro.circuits.netlist import Netlist
from repro.errors import ResourceLimit
from repro.mc.result import (
    InvariantCertificate,
    Status,
    Trace,
    VerificationResult,
)
from repro.mc.trace import find_violation_inputs
from repro.obs import probes as _obs
from repro.pdr.certify import check_certificate
from repro.pdr.frames import FrameTrace, cube_excludes_init, state_to_cube
from repro.pdr.generalize import (
    expand_cube,
    generalize_cube,
    shrink_with_core,
)
from repro.pdr.options import PdrOptions
from repro.pdr.solver_pool import SolverPool
from repro.sat.solver import SolveResult, Solver
from repro.util.stats import StatsBag


@dataclass
class _Obligation:
    """A cube that must be shown unreachable within ``level`` steps.

    ``inputs`` are the concrete input values driving this cube into its
    ``successor`` (for the final, bad-cube obligation they are the
    violating inputs themselves); the chain of successors reconstructs
    the counterexample when an obligation's cube captures the initial
    state.
    """

    cube: frozenset[int]
    level: int
    inputs: dict[int, bool] = field(default_factory=dict)
    successor: "_Obligation | None" = None


class _Pdr:
    """One PDR run over one netlist."""

    def __init__(self, netlist: Netlist, options: PdrOptions) -> None:
        self.netlist = netlist
        self.options = options
        self.stats = StatsBag()
        self.init = netlist.init_assignment()
        self.next_functions = netlist.next_functions()
        self.frames = FrameTrace()
        self.pool = SolverPool(netlist, self.frames, self.stats)
        self._tick = 0          # heap tie-breaker (insertion order)
        self._obligations = 0   # processed, against max_obligations

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #

    def run(self) -> VerificationResult:
        failed0 = self._check_initial_states()
        if failed0 is not None:
            return failed0
        if self.pool.bad_edge == FALSE or not self.netlist.num_latches:
            # No latch state to traverse, or no reachable bad valuation
            # at all: the empty (TRUE) invariant certifies the property,
            # via the same safety query as any other certificate.
            return self._proved(level=0)
        try:
            return self._major_loop()
        except ResourceLimit:
            self.stats.set("pdr_obligation_limit", 1.0)
            return self._result(Status.UNKNOWN)

    def _major_loop(self) -> VerificationResult:
        options = self.options
        while True:
            level = self.frames.num_frames
            while (hit := self.pool.intersects_bad(level)) is not None:
                state, inputs = hit
                cube = self._expand(
                    state,
                    inputs,
                    [(self.netlist.property_edge, False)],
                )
                with _obs.span("pdr.block_cube", "frames", frame=level):
                    trace = self._block(
                        _Obligation(cube, level, inputs=inputs)
                    )
                if trace is not None:
                    return self._result(Status.FAILED, trace=trace)
            if level >= options.max_frames:
                return self._result(Status.UNKNOWN)
            self.frames.extend()
            with _obs.span("pdr.propagate", "frames",
                           frame=self.frames.num_frames):
                fixpoint = self._propagate()
            if fixpoint is not None:
                return self._proved(level=fixpoint)

    # ------------------------------------------------------------------ #
    # Depth 0
    # ------------------------------------------------------------------ #

    def _check_initial_states(self) -> VerificationResult | None:
        """Does the initial state already violate the property?"""
        netlist = self.netlist
        aig = netlist.aig
        bad0 = aig.and_(
            netlist.init_state_edge(),
            aig.and_(netlist.constraint_edge(),
                     edge_not(netlist.property_edge)),
        )
        if bad0 == FALSE:
            return None
        mapper = CnfMapper(aig, Solver())
        self.stats.incr("sat_calls")
        if mapper.solver.solve([mapper.lit_for(bad0)]) is not SolveResult.SAT:
            return None
        state = netlist.init_assignment()
        trace = Trace(
            states=[state], inputs=[],
            violation_inputs=find_violation_inputs(netlist, state),
        )
        return self._result(Status.FAILED, trace=trace)

    # ------------------------------------------------------------------ #
    # Blocking (the proof-obligation queue)
    # ------------------------------------------------------------------ #

    def _block(self, bad: _Obligation) -> Trace | None:
        """Discharge one bad cube; a trace means a real counterexample."""
        queue: list[tuple[int, int, _Obligation]] = []
        self._push_obligation(queue, bad)
        while queue:
            _, _, obligation = heapq.heappop(queue)
            self._obligations += 1
            if _obs.ENABLED:
                _obs.pdr_tick(len(queue), self.frames, self.stats)
            if self._obligations > self.options.max_obligations:
                raise ResourceLimit(
                    f"PDR exceeded {self.options.max_obligations} "
                    f"proof obligations"
                )
            covered = self.frames.blocking_level(
                obligation.cube, obligation.level
            )
            if covered is not None:
                # Already excluded up to `covered`; keep the frontier
                # clean above it if there is an above.
                self._reschedule(queue, obligation, covered + 1)
                continue
            verdict, payload, inputs = self.pool.relative_query(
                obligation.level, obligation.cube
            )
            if verdict == "sat":
                predecessor = self._predecessor(
                    payload, inputs, obligation
                )
                if not cube_excludes_init(predecessor.cube, self.init):
                    return self._trace_from_chain(predecessor)
                self._push_obligation(queue, predecessor)
                self._push_obligation(queue, obligation)
                continue
            cube = shrink_with_core(obligation.cube, payload, self.init)
            if self.options.generalize:
                cube = generalize_cube(
                    self.pool, obligation.level, cube, self.init,
                    self.stats,
                )
            level = self._push_forward(cube, obligation.level)
            self._add_lemma(cube, level)
            self._reschedule(queue, obligation, level + 1)
        return None

    def _push_obligation(
        self, queue: list, obligation: _Obligation
    ) -> None:
        self._tick += 1
        heapq.heappush(queue, (obligation.level, self._tick, obligation))

    def _reschedule(
        self, queue: list, obligation: _Obligation, level: int
    ) -> None:
        """Chase a blocked obligation at the next frame (if one exists)."""
        if level <= self.frames.num_frames:
            obligation.level = level
            self._push_obligation(queue, obligation)

    def _predecessor(
        self,
        state: dict[int, bool],
        inputs: dict[int, bool],
        obligation: _Obligation,
    ) -> _Obligation:
        """Turn a consecution model into the next (expanded) obligation."""
        targets = [
            (self.next_functions[abs(lit)], lit > 0)
            for lit in sorted(obligation.cube, key=abs)
        ]
        cube = self._expand(state, inputs, targets)
        self.stats.incr("pdr_ctis")
        return _Obligation(
            cube, obligation.level - 1, inputs=inputs,
            successor=obligation,
        )

    def _expand(
        self,
        state: dict[int, bool],
        inputs: dict[int, bool],
        targets: list[tuple[int, bool]],
    ) -> frozenset[int]:
        """Ternary-expand a model state, always preserving constraints.

        Constraints join the targets so that *every* completion of the
        cube admits the fixed inputs — the property that keeps obligation
        chains replayable and lemmas sound over constrained transitions.
        """
        if not self.options.ternary:
            return state_to_cube(state)
        targets = list(targets) + [
            (edge, True) for edge in self.netlist.constraints
        ]
        return expand_cube(
            self.netlist, state, inputs, targets, self.stats
        )

    def _push_forward(self, cube: frozenset[int], level: int) -> int:
        """Advance a freshly blocked cube while it stays inductive."""
        while level < self.frames.num_frames and \
                self.pool.push_query(level, cube):
            level += 1
        return level

    def _add_lemma(self, cube: frozenset[int], level: int) -> None:
        lemma, retired = self.frames.add(cube, level)
        for old in retired:
            self.pool.detach(old)
        if lemma is not None:
            self.pool.attach(lemma)
        self.stats.max("pdr_lemmas", float(self.frames.added))

    # ------------------------------------------------------------------ #
    # Propagation and fix-point
    # ------------------------------------------------------------------ #

    def _propagate(self) -> int | None:
        """Push clauses forward; the first empty delta set is a fix-point."""
        for level in range(1, self.frames.num_frames):
            for lemma in self.frames.at_level(level):
                if lemma.retired:
                    continue
                if self.pool.push_query(level, lemma.cube):
                    for old in self.frames.promote(lemma):
                        self.pool.detach(old)
                    self.pool.attach_promoted(lemma)
                    self.stats.incr("pdr_pushed")
            if not self.frames.at_level(level):
                return level
        return None

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def _proved(self, level: int) -> VerificationResult:
        certificate = InvariantCertificate(
            clauses=self.frames.invariant_clauses(level), level=level
        )
        if self.options.certify:
            check_certificate(self.netlist, certificate)
            self.stats.incr("certificates_checked")
        self.stats.set(
            "invariant_clauses", float(certificate.num_clauses)
        )
        return self._result(Status.PROVED, certificate=certificate)

    def _trace_from_chain(self, obligation: _Obligation) -> Trace:
        """Replay an obligation chain that reached the initial state.

        Every cube on the chain was ternary-expanded with its step's
        inputs fixed, so simulating those inputs from the concrete
        initial state walks exactly through the cubes down to the
        violation.
        """
        state = dict(self.init)
        states = [dict(state)]
        inputs: list[dict[int, bool]] = []
        current = obligation
        while current.successor is not None:
            inputs.append(dict(current.inputs))
            state = self.netlist.simulate_step(state, current.inputs)
            states.append(dict(state))
            current = current.successor
        self.stats.set("cex_depth", float(len(inputs)))
        return Trace(
            states=states,
            inputs=inputs,
            violation_inputs=dict(current.inputs),
        )

    def _result(
        self,
        status: Status,
        trace: Trace | None = None,
        certificate: InvariantCertificate | None = None,
    ) -> VerificationResult:
        self.stats.set("pdr_frames", float(self.frames.num_frames))
        self.stats.set("pdr_obligations", float(self._obligations))
        self.stats.set(
            "pdr_lemmas_active", float(self.frames.lemma_count())
        )
        self.stats.set(
            "pdr_lemmas_subsumed", float(self.frames.subsumed)
        )
        return VerificationResult(
            status=status,
            engine="pdr",
            trace=trace,
            iterations=self.frames.num_frames,
            stats=self.stats,
            certificate=certificate,
        )


def pdr_reachability(
    netlist: Netlist, options: PdrOptions | None = None
) -> VerificationResult:
    """Prove or refute an invariant with IC3/PDR."""
    if options is None:
        options = PdrOptions()
    netlist.validate()
    return _Pdr(netlist, options).run()
