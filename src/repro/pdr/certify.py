"""Independent checking of inductive-invariant certificates.

The PDR engine's PROVED verdict rests on its frame bookkeeping; this
module re-derives the claim from scratch so a bookkeeping bug surfaces
as a loud :class:`repro.errors.CertificateError` instead of a wrong
answer.  Nothing here shares state with the engine: the invariant is
rebuilt as AIG logic from the certificate's clause list alone, and each
of the three conditions is one SAT query on a fresh solver —

* initiation:   ``I ∧ ¬Inv``          is UNSAT;
* consecution:  ``Inv ∧ C ∧ T ∧ ¬Inv'`` is UNSAT (fresh two-frame
  unrolling, constraints at the source frame only — the same transition
  semantics every engine and ``Trace.validate`` use);
* safety:       ``Inv ∧ C ∧ ¬P``      is UNSAT.

``check_certificate`` is called by the engine itself before any PROVED
result escapes (``PdrOptions.certify``, on by default) and by the test
suite against results that crossed process or serialization boundaries.
"""

from __future__ import annotations

from repro.aig.cnf import CnfMapper
from repro.aig.graph import FALSE, edge_not
from repro.aig.ops import and_all, or_all
from repro.circuits.netlist import Netlist
from repro.errors import CertificateError
from repro.mc.result import InvariantCertificate
from repro.mc.unroll import Unroller
from repro.sat.solver import SolveResult, Solver


def invariant_edge(
    netlist: Netlist, certificate: InvariantCertificate
) -> int:
    """The certificate's CNF as a single AIG edge over the latches."""
    aig = netlist.aig
    latch_nodes = set(netlist.latch_nodes)
    clause_edges = []
    for clause in certificate.clauses:
        literal_edges = []
        for lit in clause:
            node = abs(lit)
            if node not in latch_nodes:
                raise CertificateError(
                    f"certificate literal {lit} is not a latch of "
                    f"{netlist.name!r}"
                )
            literal_edges.append(2 * node if lit > 0 else 2 * node + 1)
        clause_edges.append(or_all(aig, literal_edges))
    return and_all(aig, clause_edges)


def _edge_unsatisfiable(netlist: Netlist, edge: int) -> bool:
    if edge == FALSE:
        return True
    mapper = CnfMapper(netlist.aig, Solver())
    return mapper.solver.solve([mapper.lit_for(edge)]) is not SolveResult.SAT


def _check_certificate_split(
    netlist: Netlist, certificate: InvariantCertificate, workers: int
) -> None:
    """The three certificate conditions as one cube-and-conquer batch.

    Initiation and safety are one obligation each; consecution is posed
    per clause — ``Inv ∧ C ∧ ¬clause'`` with the primed clause built by
    substituting every latch with its next-state function (the same
    single-step transition semantics as the Unroller path).  The batch
    goes through :func:`repro.cnc.engine.split_solve_many`, so the bursty
    obligations share one conquer pool instead of serializing on fresh
    solvers.
    """
    from repro.cnc.engine import split_solve_many

    aig = netlist.aig
    inv = invariant_edge(netlist, certificate)
    constraint = netlist.constraint_edge()
    source = aig.and_(inv, constraint)
    substitution = {
        latch.node: latch.next_edge
        for latch in netlist.latches
        if latch.next_edge is not None
    }
    cache: dict[int, int] = {}
    targets = [
        aig.and_(netlist.init_state_edge(), edge_not(inv)),
        aig.and_(source, edge_not(netlist.property_edge)),
    ]
    labels = ["initiation", "safety"]
    latch_nodes = set(netlist.latch_nodes)
    for clause in certificate.clauses:
        literal_edges = []
        for lit in clause:
            node = abs(lit)
            if node not in latch_nodes:
                raise CertificateError(
                    f"certificate literal {lit} is not a latch of "
                    f"{netlist.name!r}"
                )
            literal_edges.append(2 * node if lit > 0 else 2 * node + 1)
        primed = aig.rebuild(
            or_all(aig, literal_edges), substitution, cache
        )
        targets.append(aig.and_(source, edge_not(primed)))
        labels.append(f"consecution of clause {clause}")
    outcomes = split_solve_many(aig, targets, workers=workers)
    failures = [
        label
        for label, outcome in zip(labels, outcomes)
        if outcome.verdict is not SolveResult.UNSAT
    ]
    if failures:
        raise CertificateError(
            "certificate fails " + "; ".join(failures)
        )


def check_certificate(
    netlist: Netlist,
    certificate: InvariantCertificate,
    split_workers: int | None = None,
) -> None:
    """Raise :class:`CertificateError` unless the certificate holds.

    ``split_workers`` (``None`` = off) discharges the obligations as a
    cube-and-conquer batch — initiation, safety and one consecution
    obligation per certificate clause over a shared conquer pool.
    """
    if split_workers is not None:
        _check_certificate_split(netlist, certificate, split_workers)
        return
    aig = netlist.aig
    inv = invariant_edge(netlist, certificate)
    if not _edge_unsatisfiable(
        netlist, aig.and_(netlist.init_state_edge(), edge_not(inv))
    ):
        raise CertificateError(
            "certificate fails initiation: the initial state violates "
            "the invariant"
        )
    if not _edge_unsatisfiable(
        netlist,
        aig.and_(
            inv,
            aig.and_(netlist.constraint_edge(),
                     edge_not(netlist.property_edge)),
        ),
    ):
        raise CertificateError(
            "certificate fails safety: the invariant admits a bad state"
        )
    solver = Solver()
    unroller = Unroller(netlist, solver, assert_constraints=False)
    unroller.ensure_frames(2)
    unroller.constrain_frame(0)
    solver.add_clause([unroller.edge_lit_in(unroller.frame(0), inv)])
    solver.add_clause(
        [unroller.edge_lit_in(unroller.frame(1), edge_not(inv))]
    )
    if solver.solve() is SolveResult.SAT:
        raise CertificateError(
            "certificate fails consecution: a constrained step escapes "
            "the invariant"
        )
