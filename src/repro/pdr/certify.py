"""Independent checking of inductive-invariant certificates.

The PDR engine's PROVED verdict rests on its frame bookkeeping; this
module re-derives the claim from scratch so a bookkeeping bug surfaces
as a loud :class:`repro.errors.CertificateError` instead of a wrong
answer.  Nothing here shares state with the engine: the invariant is
rebuilt as AIG logic from the certificate's clause list alone, and each
of the three conditions is one SAT query on a fresh solver —

* initiation:   ``I ∧ ¬Inv``          is UNSAT;
* consecution:  ``Inv ∧ C ∧ T ∧ ¬Inv'`` is UNSAT (fresh two-frame
  unrolling, constraints at the source frame only — the same transition
  semantics every engine and ``Trace.validate`` use);
* safety:       ``Inv ∧ C ∧ ¬P``      is UNSAT.

``check_certificate`` is called by the engine itself before any PROVED
result escapes (``PdrOptions.certify``, on by default) and by the test
suite against results that crossed process or serialization boundaries.
"""

from __future__ import annotations

from repro.aig.cnf import CnfMapper
from repro.aig.graph import FALSE, edge_not
from repro.aig.ops import and_all, or_all
from repro.circuits.netlist import Netlist
from repro.errors import CertificateError
from repro.mc.result import InvariantCertificate
from repro.mc.unroll import Unroller
from repro.sat.solver import SolveResult, Solver


def invariant_edge(
    netlist: Netlist, certificate: InvariantCertificate
) -> int:
    """The certificate's CNF as a single AIG edge over the latches."""
    aig = netlist.aig
    latch_nodes = set(netlist.latch_nodes)
    clause_edges = []
    for clause in certificate.clauses:
        literal_edges = []
        for lit in clause:
            node = abs(lit)
            if node not in latch_nodes:
                raise CertificateError(
                    f"certificate literal {lit} is not a latch of "
                    f"{netlist.name!r}"
                )
            literal_edges.append(2 * node if lit > 0 else 2 * node + 1)
        clause_edges.append(or_all(aig, literal_edges))
    return and_all(aig, clause_edges)


def _edge_unsatisfiable(netlist: Netlist, edge: int) -> bool:
    if edge == FALSE:
        return True
    mapper = CnfMapper(netlist.aig, Solver())
    return mapper.solver.solve([mapper.lit_for(edge)]) is not SolveResult.SAT


def check_certificate(
    netlist: Netlist, certificate: InvariantCertificate
) -> None:
    """Raise :class:`CertificateError` unless the certificate holds."""
    aig = netlist.aig
    inv = invariant_edge(netlist, certificate)
    if not _edge_unsatisfiable(
        netlist, aig.and_(netlist.init_state_edge(), edge_not(inv))
    ):
        raise CertificateError(
            "certificate fails initiation: the initial state violates "
            "the invariant"
        )
    if not _edge_unsatisfiable(
        netlist,
        aig.and_(
            inv,
            aig.and_(netlist.constraint_edge(),
                     edge_not(netlist.property_edge)),
        ),
    ):
        raise CertificateError(
            "certificate fails safety: the invariant admits a bad state"
        )
    solver = Solver()
    unroller = Unroller(netlist, solver, assert_constraints=False)
    unroller.ensure_frames(2)
    unroller.constrain_frame(0)
    solver.add_clause([unroller.edge_lit_in(unroller.frame(0), inv)])
    solver.add_clause(
        [unroller.edge_lit_in(unroller.frame(1), edge_not(inv))]
    )
    if solver.solve() is SolveResult.SAT:
        raise CertificateError(
            "certificate fails consecution: a constrained step escapes "
            "the invariant"
        )
