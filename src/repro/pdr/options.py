"""Typed options of the ``pdr`` engine.

Kept dependency-free (like :mod:`repro.itp.options`) so the engine
registry can import it without pulling the PDR machinery — the
registration in :mod:`repro.mc.engine` needs the dataclass at import
time, the engine itself only on first use.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PdrOptions:
    """Configuration of the IC3/PDR engine.

    ``max_frames`` bounds the length of the frame trace (the engine
    answers UNKNOWN once it would have to open a deeper frame);
    ``max_obligations`` caps the total number of proof obligations
    processed before giving up — a safety valve against pathological
    instances, not a tuning knob.

    ``generalize`` enables unsat-core literal dropping on blocked cubes
    (lemmas shrink from full state assignments to a few literals);
    ``ternary`` enables ternary-simulation expansion of the cubes read
    off SAT models (predecessors and bad states cover many concrete
    states per query).  Both default on; turning them off yields the
    textbook unoptimized algorithm, useful for differential testing.

    ``certify`` re-checks the inductive-invariant certificate of every
    PROVED result with three SAT queries on a fresh, independent solver
    before the result is returned (on by default — a bad certificate is
    an engine bug, not a verdict).
    """

    max_frames: int = 100
    max_obligations: int = 50_000
    generalize: bool = True
    ternary: bool = True
    certify: bool = True
