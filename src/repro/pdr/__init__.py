"""IC3 / property-directed reachability.

The incremental counterpart to :mod:`repro.itp`: instead of refuting one
monolithic unrolling per iteration, PDR strengthens a trace of stepwise
over-approximations ``F_0 ⊆ F_1 ⊆ … ⊆ F_N`` with single-step SAT
queries, so deep, control-heavy state spaces never force a deep CNF.
Four layers:

* :mod:`repro.pdr.frames` — the delta-encoded lemma trace with
  subsumption and clause pushing;
* :mod:`repro.pdr.solver_pool` — one incremental solver per frame,
  lemmas added/retired through activation literals
  (:meth:`repro.sat.solver.Solver.add_removable_clause`);
* :mod:`repro.pdr.generalize` — unsat-core literal dropping and
  ternary-simulation cube expansion;
* :mod:`repro.pdr.engine` — the proof-obligation loop, registered as
  the ``pdr`` engine (``mc.verify(method="pdr")``), whose every PROVED
  result carries an :class:`repro.mc.result.InvariantCertificate`
  re-checked by :mod:`repro.pdr.certify` on an independent solver.
"""

from repro.pdr.certify import check_certificate, invariant_edge
from repro.pdr.engine import pdr_reachability
from repro.pdr.options import PdrOptions

__all__ = [
    "PdrOptions",
    "check_certificate",
    "invariant_edge",
    "pdr_reachability",
]
