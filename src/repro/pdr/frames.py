"""The PDR frame trace: a monotone sequence of clause sets.

Frames ``F_0 ⊆ F_1 ⊆ … ⊆ F_N`` (as state sets) over-approximate the
states reachable in at most ``k`` constrained steps.  As clause sets the
inclusion flips — ``clauses(F_k) ⊇ clauses(F_{k+1})`` — which the trace
exploits with the standard *delta encoding*: each lemma is stored once,
at the highest frame whose set it belongs to, and ``F_k`` is the union
of all lemmas at levels ``≥ k``.

A lemma blocks a cube of states.  Cubes (and clause literals) are signed
latch node ids: ``+node`` means the latch is 1 in the cube, ``-node``
means 0; the lemma's clause is the negation of its cube.  Subsumption is
syntactic — cube ``g`` subsumes cube ``h`` iff ``g ⊆ h`` — and retired
lemmas stay in the list (their solver clauses are deactivated by the
pool) but drop out of every query and of the final invariant.
"""

from __future__ import annotations

from typing import Iterator, Mapping


class Lemma:
    """One blocked cube: ``¬cube`` holds in every frame up to ``level``.

    The per-frame activation literals backing the lemma's solver clauses
    live solver-side (:class:`repro.pdr.solver_pool.FrameSolver`); the
    lemma itself is purely combinatorial.
    """

    __slots__ = ("cube", "level", "retired")

    def __init__(self, cube: frozenset[int], level: int) -> None:
        self.cube = cube
        self.level = level
        self.retired = False

    def clause(self) -> tuple[int, ...]:
        """The lemma as a clause (negated cube), deterministically ordered."""
        return tuple(sorted((-lit for lit in self.cube), key=abs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mark = "retired " if self.retired else ""
        return f"Lemma({mark}level={self.level}, cube={sorted(self.cube)})"


class FrameTrace:
    """Delta-encoded lemma store with subsumption and pushing."""

    def __init__(self) -> None:
        self._lemmas: list[Lemma] = []
        self._num_frames = 1   # F_0 always exists; F_1 opens with it
        self.subsumed = 0      # lemmas retired by a stronger one
        self.added = 0

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #

    @property
    def num_frames(self) -> int:
        """The highest open frame index N."""
        return self._num_frames

    def extend(self) -> int:
        """Open frame ``N+1``; returns the new N."""
        self._num_frames += 1
        return self._num_frames

    def __iter__(self) -> Iterator[Lemma]:
        return (lemma for lemma in self._lemmas if not lemma.retired)

    def lemma_count(self) -> int:
        return sum(1 for _ in self)

    # ------------------------------------------------------------------ #
    # Lemma lifecycle
    # ------------------------------------------------------------------ #

    def add(
        self, cube: frozenset[int], level: int
    ) -> tuple[Lemma | None, list[Lemma]]:
        """Record ``¬cube`` at ``level``; returns ``(lemma, retired)``.

        ``lemma`` is ``None`` when an existing lemma already subsumes the
        new one at this level or higher (nothing to add).  ``retired``
        lists the strictly weaker lemmas the new one replaces; the caller
        deactivates their solver clauses.
        """
        retired: list[Lemma] = []
        for other in self._lemmas:
            if other.retired:
                continue
            if other.level >= level and other.cube <= cube:
                return None, retired
            if other.level <= level and other.cube >= cube:
                other.retired = True
                self.subsumed += 1
                retired.append(other)
        lemma = Lemma(cube, level)
        self._lemmas.append(lemma)
        self.added += 1
        return lemma, retired

    def promote(self, lemma: Lemma) -> list[Lemma]:
        """Push a lemma one frame up; returns newly subsumed lemmas."""
        lemma.level += 1
        retired: list[Lemma] = []
        for other in self._lemmas:
            if other is lemma or other.retired:
                continue
            if other.level <= lemma.level and other.cube >= lemma.cube:
                other.retired = True
                self.subsumed += 1
                retired.append(other)
        return retired

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def at_level(self, level: int) -> list[Lemma]:
        """Active lemmas stored at exactly ``level`` (the delta set)."""
        return [
            lemma for lemma in self._lemmas
            if not lemma.retired and lemma.level == level
        ]

    def from_level(self, level: int) -> list[Lemma]:
        """Active lemmas of ``F_level`` (stored at ``level`` or above)."""
        return [
            lemma for lemma in self._lemmas
            if not lemma.retired and lemma.level >= level
        ]

    def blocking_level(self, cube: frozenset[int], level: int) -> int | None:
        """Highest level ``≥ level`` at which some lemma subsumes ``cube``.

        ``None`` when no lemma blocks the cube at ``level`` — the caller
        must pose the SAT query.
        """
        best: int | None = None
        for lemma in self._lemmas:
            if lemma.retired or lemma.level < level:
                continue
            if lemma.cube <= cube and (best is None or lemma.level > best):
                best = lemma.level
        return best

    def invariant_clauses(self, level: int) -> list[tuple[int, ...]]:
        """The clauses of ``F_level`` in a deterministic order."""
        return sorted(
            (lemma.clause() for lemma in self.from_level(level)),
            key=lambda clause: (len(clause), clause),
        )


def cube_excludes_init(
    cube: frozenset[int], init: Mapping[int, bool]
) -> bool:
    """True iff the initial state does not satisfy the cube."""
    return any(
        (lit > 0) != init[abs(lit)] for lit in cube
    )


def state_to_cube(state: Mapping[int, bool]) -> frozenset[int]:
    """A full latch assignment as a cube of signed node ids."""
    return frozenset(
        node if value else -node for node, value in state.items()
    )
