"""One incremental SAT solver per PDR frame.

Every frame ``k`` owns a :class:`repro.sat.solver.Solver` that encodes
the transition relation exactly once (frames 0 and 1 of a two-frame
:class:`repro.mc.unroll.Unroller`), the environment constraints at the
*source* frame, and — via the solver's removable-clause/activation
machinery — the lemmas of ``F_k``.  Lemmas are added and retired without
ever rebuilding CNF: each lemma clause carries an activation literal
that queries pass as an assumption, and a subsumed lemma's literal is
pinned false.

Constraints are deliberately **not** asserted at the successor frame:
a violating state needs constraint-satisfying inputs of its own (the
bad-cone literal includes them), but a state's mere reachability does
not — asserting them would excise reachable dead-end states from the
frames and the final certificate would not close.

The pool poses the three PDR queries:

* ``intersects_bad(k)`` — SAT?\\ [F_k ∧ C ∧ ¬P];
* ``relative_query(level, cube)`` — SAT?\\ [F_{level-1} ∧ C ∧ ¬cube ∧ T
  ∧ cube'] (the consecution query of an obligation at ``level``); on
  UNSAT the assumption core is mapped back to cube literals for
  generalization;
* ``push_query(k, cube)`` — SAT?\\ [F_k ∧ C ∧ T ∧ cube'] (clause
  propagation).

Frame 0 is special: its solver pins the latches to the initial state,
and it never holds lemmas (the initial state satisfies them all).
"""

from __future__ import annotations

from repro.aig.graph import edge_not
from repro.circuits.netlist import Netlist
from repro.mc.unroll import Unroller
from repro.pdr.frames import FrameTrace, Lemma
from repro.sat.solver import SolveResult, Solver
from repro.util.stats import StatsBag


# Retired clauses (spent query guards, subsumed lemmas) accumulate as
# dead variables in a frame's solver; past this many the pool rebuilds
# the solver from the live lemmas instead of dragging the garbage along.
COMPACT_RETIRED_LIMIT = 1000


class FrameSolver:
    """The incremental solver of one frame (T + C + activated lemmas)."""

    def __init__(self, netlist: Netlist, pin_init: bool) -> None:
        self.solver = Solver()
        self.unroller = Unroller(netlist, self.solver,
                                 assert_constraints=False)
        self.unroller.ensure_frames(2)
        self.unroller.constrain_frame(0)
        if pin_init:
            self.unroller.assert_initial_state()
        self._now = self.unroller.frame(0)
        self._next = self.unroller.frame(1)
        self._acts: dict[Lemma, int] = {}
        self._bad_lit: int | None = None
        self.retired = 0   # spent activation literals since construction

    # ------------------------------------------------------------------ #
    # Literal plumbing
    # ------------------------------------------------------------------ #

    def lit(self, state_lit: int, primed: bool = False) -> int:
        """Solver literal of a signed latch node, at frame 0 or 1."""
        frame = self._next if primed else self._now
        var = frame[abs(state_lit)]
        return -var if state_lit < 0 else var

    def bad_lit(self, bad_edge: int) -> int:
        """Literal of the bad cone (¬P ∧ C) over the source frame."""
        if self._bad_lit is None:
            self._bad_lit = self.unroller.edge_lit_in(self._now, bad_edge)
        return self._bad_lit

    # ------------------------------------------------------------------ #
    # Lemma lifecycle
    # ------------------------------------------------------------------ #

    def attach(self, lemma: Lemma) -> None:
        if lemma in self._acts:
            return
        self._acts[lemma] = self.solver.add_removable_clause(
            [self.lit(lit) for lit in lemma.clause()]
        )

    def detach(self, lemma: Lemma) -> None:
        activation = self._acts.pop(lemma, None)
        if activation is not None:
            self.solver.retire_clause(activation)
            self.retired += 1

    def assumptions(self) -> list[int]:
        """Activation literals of every live lemma of this frame."""
        return list(self._acts.values())

    def read_state(self) -> dict[int, bool]:
        return self.unroller.read_state(0)

    def read_inputs(self) -> dict[int, bool]:
        return self.unroller.read_inputs(0)


class SolverPool:
    """Lazily created frame solvers sharing one frame trace."""

    def __init__(
        self, netlist: Netlist, frames: FrameTrace, stats: StatsBag
    ) -> None:
        self.netlist = netlist
        self.frames = frames
        self.stats = stats
        aig = netlist.aig
        self.bad_edge = aig.and_(
            edge_not(netlist.property_edge), netlist.constraint_edge()
        )
        self._solvers: dict[int, FrameSolver] = {}

    def solver(self, frame_index: int) -> FrameSolver:
        existing = self._solvers.get(frame_index)
        if existing is not None:
            if existing.retired <= COMPACT_RETIRED_LIMIT:
                return existing
            # Too much garbage (spent query guards, subsumed lemmas):
            # a rebuild from the live lemmas is cheaper than dragging
            # thousands of dead variables through every later solve.
            del self._solvers[frame_index]
            self.stats.incr("pdr_solver_compactions")
        created = FrameSolver(self.netlist, pin_init=frame_index == 0)
        self._solvers[frame_index] = created
        if frame_index > 0:
            # A solver born late (or rebuilt) inherits every lemma its
            # frame holds.
            for lemma in self.frames.from_level(frame_index):
                created.attach(lemma)
        self.stats.max("pdr_solvers", float(len(self._solvers)))
        return created

    # ------------------------------------------------------------------ #
    # Lemma bookkeeping (mirrors FrameTrace operations)
    # ------------------------------------------------------------------ #

    def attach(self, lemma: Lemma) -> None:
        """Install a fresh lemma into solvers 1..level (those that exist)."""
        for frame_index in range(1, lemma.level + 1):
            solver = self._solvers.get(frame_index)
            if solver is not None:
                solver.attach(lemma)

    def attach_promoted(self, lemma: Lemma) -> None:
        """A lemma just moved up one level: install at its new frame."""
        solver = self._solvers.get(lemma.level)
        if solver is not None:
            solver.attach(lemma)

    def detach(self, lemma: Lemma) -> None:
        for solver in self._solvers.values():
            solver.detach(lemma)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def intersects_bad(
        self, frame_index: int
    ) -> tuple[dict[int, bool], dict[int, bool]] | None:
        """A bad state in F_k with its violating inputs, or ``None``."""
        frame_solver = self.solver(frame_index)
        assumptions = frame_solver.assumptions()
        assumptions.append(frame_solver.bad_lit(self.bad_edge))
        self.stats.incr("sat_calls")
        if frame_solver.solver.solve(assumptions) is SolveResult.SAT:
            return frame_solver.read_state(), frame_solver.read_inputs()
        return None

    def relative_query(
        self, level: int, cube: frozenset[int]
    ) -> tuple[str, object, object]:
        """The consecution query of an obligation ``(cube, level)``.

        Returns ``("sat", predecessor_state, inputs)`` when some
        ``F_{level-1}`` state steps into the cube, else
        ``("unsat", core_cube, None)`` where ``core_cube`` is the subset
        of cube literals whose primed assumptions the refutation used.
        """
        frame_solver = self.solver(level - 1)
        solver = frame_solver.solver
        assumptions = frame_solver.assumptions()
        temp = None
        if level - 1 > 0:
            # ¬cube at the source frame (relative induction).  Frame 0
            # pins the initial state, which never satisfies the cube, so
            # the clause is omitted there.
            temp = solver.add_removable_clause(
                [frame_solver.lit(-lit) for lit in cube]
            )
            assumptions.append(temp)
        primed = {
            frame_solver.lit(lit, primed=True): lit
            for lit in sorted(cube, key=abs)
        }
        assumptions.extend(primed)
        self.stats.incr("sat_calls")
        outcome = solver.solve(assumptions)
        if outcome is SolveResult.SAT:
            result = (
                "sat",
                frame_solver.read_state(),
                frame_solver.read_inputs(),
            )
        else:
            core = solver.core or ()
            result = (
                "unsat",
                frozenset(primed[lit] for lit in core if lit in primed),
                None,
            )
        if temp is not None:
            solver.retire_clause(temp)
            frame_solver.retired += 1
        return result

    def push_query(self, frame_index: int, cube: frozenset[int]) -> bool:
        """True iff F_k ∧ C ∧ T cannot step into the cube (pushable)."""
        frame_solver = self.solver(frame_index)
        assumptions = frame_solver.assumptions()
        assumptions.extend(
            frame_solver.lit(lit, primed=True)
            for lit in sorted(cube, key=abs)
        )
        self.stats.incr("sat_calls")
        return (
            frame_solver.solver.solve(assumptions)
            is not SolveResult.SAT
        )
