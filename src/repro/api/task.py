"""Typed description of one verification problem plus its budgets.

A :class:`VerificationTask` is everything a :class:`repro.api.Session`
needs to run (and cache, and report on) one problem: the netlist, the
engine name, and three budgets — traversal depth, wall-clock seconds,
and the engine's operation-cache bound.  Tasks are plain data; building
one runs nothing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.api.registry import EngineSpec, get_engine
from repro.circuits.netlist import Netlist
from repro.errors import ModelCheckingError


@dataclass
class VerificationTask:
    """One netlist, one engine, explicit budgets.

    * ``max_depth`` — bounds BMC depth / induction k / traversal
      iterations (the engine option dataclass's depth field).
    * ``timeout`` — wall-clock seconds; when set, the engine runs in a
      worker process that is terminated at the deadline and the task
      reports UNKNOWN.  A composite engine budgets its own workers, so
      the timeout becomes its per-engine budget instead (an explicit
      ``budget`` in ``options`` wins).
    * ``max_cache_entries`` — operation-cache bound, forwarded to
      engines whose option dataclass has a ``max_cache_entries`` field
      (the BDD traversals); silently inapplicable elsewhere.
    * ``options`` — extra engine options, exactly as
      :func:`repro.mc.verify` accepts them (loose keywords, or a
      ready-made dataclass under the ``"options"`` key).
    * ``label`` — display name for progress events; defaults to the
      netlist's own name.
    """

    netlist: Netlist
    engine: str = "reach_aig"
    max_depth: int = 100
    timeout: float | None = None
    max_cache_entries: int | None = None
    options: dict[str, object] = field(default_factory=dict)
    label: str | None = None

    @property
    def name(self) -> str:
        return self.label if self.label is not None else self.netlist.name

    def spec(self) -> EngineSpec:
        """Resolve the engine name (raises on an unknown engine)."""
        return get_engine(self.engine)

    def engine_options(self) -> dict[str, object]:
        """The option mapping handed to the engine, budgets folded in."""
        options = dict(self.options)
        if self.max_cache_entries is None:
            return options
        if "options" in options:
            # A ready-made options object carries its own cache bound; a
            # second one on the task would be silently ignored.
            raise ModelCheckingError(
                "set max_cache_entries on the options object or the "
                "task, not both"
            )
        if "max_cache_entries" not in options:
            options_class = self.spec().options_class
            if options_class is not None and any(
                f.name == "max_cache_entries"
                for f in dataclasses.fields(options_class)
            ):
                options["max_cache_entries"] = self.max_cache_entries
        return options
