"""Sessions: run verification tasks with caching, events, cancellation.

A :class:`Session` is the long-lived object a service (or a script, or
the CLI) verifies through.  It owns one structural-hash
:class:`~repro.portfolio.cache.ResultCache` shared by every task it
runs, emits :class:`ProgressEvent`s so callers can observe a batch
without polling, and supports cooperative cancellation: any progress
callback (or another thread) may call :meth:`Session.cancel`, after
which remaining tasks complete immediately as UNKNOWN instead of
running their engines.

Wall-clock budgets are real: a task with ``timeout=`` runs its engine in
a worker process (via :mod:`repro.portfolio.runner`) that is terminated
at the deadline, so a diverging traversal cannot wedge the session.
"""

from __future__ import annotations

import dataclasses
import pathlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.api.task import VerificationTask
from repro.circuits.netlist import Netlist
from repro.mc.result import Status, VerificationResult
from repro.portfolio.cache import ResultCache
from repro.portfolio.hashing import structural_hash
from repro.util.stats import StatsBag

ProgressCallback = Callable[["ProgressEvent"], None]


@dataclass(frozen=True)
class ProgressEvent:
    """One observation of a session's progress.

    ``kind`` is ``batch_started``, ``task_started``, ``task_finished``,
    ``task_cancelled`` or ``batch_finished``.  ``index``/``total`` place
    the task in its batch (single runs are a batch of one).  Finished
    events carry the result — its ``stats`` bag holds the engine's
    frontier/iteration/cache numbers — and ``cached`` says whether it
    was served from the session's result cache without running an
    engine.  Batch events carry the session's aggregate ``stats``.

    Tasks that run engines in worker processes (budgeted tasks, and the
    ``portfolio`` composite) additionally emit ``engine_started``,
    ``engine_finished`` and ``engine_cancelled`` events, forwarded from
    the runner pipe, with ``engine`` naming the worker's engine.
    """

    kind: str
    index: int
    total: int
    task: VerificationTask | None = None
    result: VerificationResult | None = None
    elapsed: float = 0.0
    cached: bool = False
    stats: StatsBag | None = None
    engine: str | None = None


class Session:
    """Runs :class:`VerificationTask`s against one shared result cache.

    * ``cache`` — a :class:`ResultCache`, a path to a JSON-lines cache
      file, or None for a fresh in-memory cache; every task this session
      runs shares it, keyed by structural hash.
    * ``max_cache_entries`` — LRU bound of the in-memory cache front.
    * ``on_progress`` — a callback receiving every
      :class:`ProgressEvent`; more can be passed per ``verify_many``
      call.
    * ``cancel_poll`` — an optional zero-argument callable polled at
      task boundaries and on every forwarded engine lifecycle event
      (i.e. between engine races); returning True cancels the session.
      This is how wire-level cancellation reaches a running session: a
      service worker (:mod:`repro.svc.worker`) passes a poll of its
      job record's cancel flag.
    """

    def __init__(
        self,
        *,
        cache: ResultCache | str | pathlib.Path | None = None,
        max_cache_entries: int = 4096,
        on_progress: ProgressCallback | None = None,
        stats: StatsBag | None = None,
        cancel_poll: Callable[[], bool] | None = None,
    ) -> None:
        if isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(
                cache, max_memory_entries=max_cache_entries
            )
        self.stats = stats if stats is not None else StatsBag()
        self._callbacks: list[ProgressCallback] = (
            [on_progress] if on_progress is not None else []
        )
        self._cancelled = threading.Event()
        self._cancel_poll = cancel_poll

    # ------------------------------------------------------------------ #
    # Cancellation and events
    # ------------------------------------------------------------------ #

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def cancel(self) -> None:
        """Cooperatively cancel: tasks not yet started return UNKNOWN."""
        self._cancelled.set()

    def reset(self) -> None:
        """Clear the cancellation flag so the session can run again."""
        self._cancelled.clear()

    def _poll_cancel(self) -> None:
        """Check the external cancellation source, if one is wired."""
        if (
            self._cancel_poll is not None
            and not self._cancelled.is_set()
            and self._cancel_poll()
        ):
            self._cancelled.set()

    def on_progress(self, callback: ProgressCallback) -> ProgressCallback:
        """Subscribe a callback to every future event (decorator-friendly)."""
        self._callbacks.append(callback)
        return callback

    def _emit(
        self, event: ProgressEvent, extra: Sequence[ProgressCallback] = ()
    ) -> None:
        for callback in (*self._callbacks, *extra):
            callback(event)

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #

    def verify(
        self, netlist: Netlist, engine: str = "reach_aig", **task_fields
    ) -> VerificationResult:
        """Convenience: build a task for one netlist and run it."""
        return self.run(VerificationTask(netlist, engine=engine, **task_fields))

    def run(
        self,
        task: VerificationTask,
        *,
        _index: int = 0,
        _total: int = 1,
        _extra: Sequence[ProgressCallback] = (),
    ) -> VerificationResult:
        """Run one task: cache lookup, budgeted engine run, cache store."""
        spec = task.spec()  # resolve early: unknown engines fail loudly
        self._poll_cancel()
        if self.cancelled:
            result = self._cancelled_result(task)
            self._emit(
                ProgressEvent(
                    "task_cancelled", _index, _total, task=task, result=result
                ),
                _extra,
            )
            return result
        self._emit(
            ProgressEvent("task_started", _index, _total, task=task), _extra
        )
        start = time.monotonic()
        self.stats.incr("tasks")
        cached = None
        if not spec.composite:
            # Composite engines memoize per-engine themselves; a lookup
            # under the composite name could never hit.
            digest = structural_hash(task.netlist)
            cached = self.cache.lookup(
                task.netlist,
                task.engine,
                task.max_depth,
                budget=task.timeout,
                digest=digest,
            )
        if cached is not None:
            self.stats.incr("session_cache_hits")
            result = cached
        else:
            if not spec.composite:
                self.stats.incr("session_cache_misses")

            def forward(event: dict) -> None:
                # Engine lifecycle dicts from the worker runner, re-shaped
                # as progress events against this task.  Engine
                # boundaries are also where an external cancellation
                # source gets its say (the flag takes effect before the
                # next task starts).
                self._poll_cancel()
                self._emit(
                    ProgressEvent(
                        str(event.get("kind", "engine_event")),
                        _index,
                        _total,
                        task=task,
                        elapsed=float(event.get("elapsed", 0.0)),
                        engine=event.get("engine"),
                    ),
                    _extra,
                )

            result, memoize = self._run_engine(spec, task, forward)
            if memoize:
                self.cache.store(
                    task.netlist,
                    task.engine,
                    task.max_depth,
                    result,
                    budget=task.timeout,
                    digest=digest,
                )
        self.stats.incr(f"status_{result.status.value}")
        self._emit(
            ProgressEvent(
                "task_finished",
                _index,
                _total,
                task=task,
                result=result,
                elapsed=time.monotonic() - start,
                cached=cached is not None,
            ),
            _extra,
        )
        return result

    def _run_engine(
        self, spec, task: VerificationTask, on_event=None
    ) -> tuple[VerificationResult, bool]:
        """Run the engine; returns (result, safe-to-memoize)."""
        options = task.engine_options()
        if spec.composite:
            # Composite engines budget their own workers: the task's
            # wall-clock becomes their per-engine budget (unless the
            # caller configured one explicitly), and they share this
            # session's cache unless the caller chose one.
            options = self._share_cache(spec, options)
            options = self._wire_events(spec, options, on_event)
            if (
                task.timeout is not None
                and "options" not in options
                and spec.options_class is not None
                and any(
                    f.name == "budget"
                    for f in dataclasses.fields(spec.options_class)
                )
            ):
                options.setdefault("budget", task.timeout)
            return (
                spec.verify(task.netlist, max_depth=task.max_depth, **options),
                False,  # the portfolio memoizes per-engine itself
            )
        if task.timeout is None:
            return (
                spec.verify(task.netlist, max_depth=task.max_depth, **options),
                True,
            )
        # Wall-clock enforcement needs process isolation.
        from repro.portfolio.runner import run_portfolio

        outcome = run_portfolio(
            task.netlist,
            [task.engine],
            max_depth=task.max_depth,
            budget=task.timeout,
            jobs=1,
            engine_options=options,
            on_event=on_event,
        )
        (engine_outcome,) = outcome.outcomes
        result = engine_outcome.result
        result.stats.set(
            "wall_seconds", outcome.stats.get("portfolio_wall_seconds")
        )
        # Crashes may be environmental; don't memoize them.  Timeouts are
        # budget-stamped UNKNOWNs and are worth remembering.
        return result, not engine_outcome.crashed

    def _share_cache(self, spec, options: dict) -> dict:
        """Hand this session's result cache to a composite engine.

        Works for both option styles: a loose ``cache=`` keyword, or a
        ``cache`` field on a caller-supplied ready-made options object.
        Engines whose option dataclass has no ``cache`` field are left
        alone.
        """
        options_class = spec.options_class
        if options_class is None or not any(
            f.name == "cache" for f in dataclasses.fields(options_class)
        ):
            return options
        provided = options.get("options")
        if provided is not None:
            if getattr(provided, "cache", None) is None:
                options["options"] = dataclasses.replace(
                    provided, cache=self.cache
                )
            return options
        options.setdefault("cache", self.cache)
        return options

    @staticmethod
    def _wire_events(spec, options: dict, on_event) -> dict:
        """Thread the session's engine-event forwarder into a composite
        engine's options (same two option styles as :meth:`_share_cache`;
        an explicit caller-supplied callback is left in place)."""
        if on_event is None:
            return options
        options_class = spec.options_class
        if options_class is None or not any(
            f.name == "on_event" for f in dataclasses.fields(options_class)
        ):
            return options
        provided = options.get("options")
        if provided is not None:
            if getattr(provided, "on_event", None) is None:
                options["options"] = dataclasses.replace(
                    provided, on_event=on_event
                )
            return options
        options.setdefault("on_event", on_event)
        return options

    @staticmethod
    def _cancelled_result(task: VerificationTask) -> VerificationResult:
        result = VerificationResult(status=Status.UNKNOWN, engine=task.engine)
        result.stats.incr("session_cancelled")
        return result

    # ------------------------------------------------------------------ #
    # Batches
    # ------------------------------------------------------------------ #

    def verify_many(
        self,
        items: Iterable[VerificationTask | Netlist],
        *,
        engine: str = "reach_aig",
        max_depth: int = 100,
        timeout: float | None = None,
        on_progress: ProgressCallback | None = None,
    ) -> list[VerificationResult]:
        """Run a batch of tasks sharing this session's cache.

        ``items`` may mix ready-made tasks and bare netlists; bare
        netlists get the ``engine``/``max_depth``/``timeout`` defaults.
        Every task emits progress events; cancelling the session from a
        callback (or another thread) finishes the batch immediately —
        remaining tasks return UNKNOWN results marked
        ``session_cancelled`` without running their engines.  Returns
        one result per item, in order.
        """
        tasks = [
            item
            if isinstance(item, VerificationTask)
            else VerificationTask(
                item, engine=engine, max_depth=max_depth, timeout=timeout
            )
            for item in items
        ]
        extra = (on_progress,) if on_progress is not None else ()
        total = len(tasks)
        self._emit(
            ProgressEvent("batch_started", 0, total, stats=self.stats), extra
        )
        results = [
            self.run(task, _index=index, _total=total, _extra=extra)
            for index, task in enumerate(tasks)
        ]
        self._emit(
            ProgressEvent(
                "batch_finished", total, total, stats=self.stats
            ),
            extra,
        )
        return results
