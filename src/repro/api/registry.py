"""The engine registry: one enumerable source of truth for every engine.

The paper's message — no single image/quantification strategy wins
everywhere, so strategies must be interchangeable and schedulable —
needs an API to match: engines are described once, as an
:class:`EngineSpec` carrying the name, the capability flags consumers
select on, the typed option dataclass, and the runner itself.  Every
consumer derives from here:

* :func:`repro.mc.verify` resolves its ``method=`` argument via
  :func:`get_engine`;
* the portfolio derives its default candidate set from capability
  queries (:func:`engines_with`);
* the CLI builds its ``--method`` choices from :func:`engine_names`,
  so a newly registered engine appears there without edits.

Engines register themselves with the :func:`register_engine` decorator::

    @register_engine(
        name="my_engine",
        summary="one-line description",
        options_class=MyOptions,
        depth_field="max_iterations",
        complete=True,
    )
    def _run_my_engine(netlist, options):
        return ...  # a VerificationResult

The built-in engines live in :mod:`repro.mc.engine`; that module is
imported lazily on first query so the registry is always populated, in
whatever import order the process chose.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.errors import ModelCheckingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuits.netlist import Netlist
    from repro.mc.result import VerificationResult

_REGISTRY: dict[str, "EngineSpec"] = {}
_builtin_loaded = False


def _ensure_builtin() -> None:
    """Import the module that registers the built-in engines, once."""
    global _builtin_loaded
    if not _builtin_loaded:
        _builtin_loaded = True
        import repro.mc.engine  # noqa: F401 - registration side effect


@dataclass(frozen=True)
class EngineSpec:
    """One verification engine: identity, capabilities, options, runner.

    Capability flags are what consumers select on:

    * ``produces_trace`` — FAILED results carry a replayable
      counterexample;
    * ``complete`` — the engine can PROVE (BMC, a pure falsifier, has
      ``complete=False``);
    * ``supports_constraints`` — honors netlist environment constraints;
    * ``quick`` — cheap early-exit engine, fronted by sequential
      portfolio policies;
    * ``composite`` — dispatches to other engines (the portfolio); never
      a portfolio *candidate* itself;
    * ``variant_of`` — a forced-option variant of another engine
      (``reach_aig_allsat``/``_hybrid``); excluded from default
      portfolios, which already run the base engine.

    ``direction`` is ``"backward"``, ``"forward"`` or ``"any"``.
    ``options_class`` is the engine's typed option dataclass and
    ``depth_field`` names the field of it that a caller's ``max_depth``
    budget initializes; ``forced_options`` pins fields the engine name
    itself implies.
    """

    name: str
    summary: str
    run: Callable[["Netlist", object], "VerificationResult"]
    options_class: type | None = None
    depth_field: str | None = None
    forced_options: Mapping[str, object] = field(default_factory=dict)
    produces_trace: bool = True
    complete: bool = True
    supports_constraints: bool = True
    quick: bool = False
    direction: str = "backward"
    composite: bool = False
    variant_of: str | None = None

    # ------------------------------------------------------------------ #
    # Option normalization
    # ------------------------------------------------------------------ #

    def make_options(self, max_depth: int, overrides: Mapping[str, object]):
        """One normalization for every engine.

        Callers either pass a ready-made ``options=...`` object (whose
        own depth field is respected, with this spec's forced fields
        overriding) or loose keyword options merged into a fresh object;
        ``max_depth`` initializes the depth field unless explicitly
        overridden.
        """
        overrides = dict(overrides)
        provided = overrides.pop("options", None)
        if provided is not None:
            if overrides:
                raise ModelCheckingError(
                    f"pass either options=... or loose keywords, not both: "
                    f"{sorted(overrides)}"
                )
            if self.forced_options:
                return dataclasses.replace(provided, **self.forced_options)
            return provided
        if self.options_class is None:
            if overrides:
                raise ModelCheckingError(
                    f"engine {self.name!r} takes no options: "
                    f"{sorted(overrides)}"
                )
            return None
        collisions = set(self.forced_options) & set(overrides)
        if collisions:
            raise ModelCheckingError(
                f"engine {self.name!r} forces {sorted(collisions)}; "
                f"drop them or use the base engine"
            )
        kwargs = dict(self.forced_options)
        kwargs.update(overrides)
        if self.depth_field is not None and self.depth_field not in kwargs:
            kwargs[self.depth_field] = max_depth
        try:
            return self.options_class(**kwargs)
        except TypeError as exc:
            known = sorted(
                f.name for f in dataclasses.fields(self.options_class)
            )
            raise ModelCheckingError(
                f"bad options for engine {self.name!r}: {exc}; "
                f"known options are {known}"
            ) from None

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #

    def verify(
        self,
        netlist: "Netlist",
        max_depth: int = 100,
        **options: object,
    ) -> "VerificationResult":
        """Run this engine with normalized options and a validated trace.

        Counterexample traces of FAILED results are replay-validated
        before being returned — an engine producing a bogus trace is a
        bug, not a result.
        """
        from repro.mc.result import Status

        result = self.run(netlist, self.make_options(max_depth, options))
        if result.status is Status.FAILED and result.trace is not None:
            if not result.trace.validate(netlist):
                raise ModelCheckingError(
                    f"{self.name} produced an invalid counterexample trace"
                )
        return result


# ---------------------------------------------------------------------- #
# Registration and queries
# ---------------------------------------------------------------------- #


def register_engine(
    *,
    name: str,
    summary: str,
    options_class: type | None = None,
    depth_field: str | None = None,
    forced_options: Mapping[str, object] | None = None,
    produces_trace: bool = True,
    complete: bool = True,
    supports_constraints: bool = True,
    quick: bool = False,
    direction: str = "backward",
    composite: bool = False,
    variant_of: str | None = None,
) -> Callable:
    """Decorator registering a ``(netlist, options) -> result`` runner."""
    if direction not in ("backward", "forward", "any"):
        raise ModelCheckingError(
            f"engine direction must be backward/forward/any, "
            f"not {direction!r}"
        )

    def _register(run: Callable) -> Callable:
        if name in _REGISTRY:
            raise ModelCheckingError(f"engine {name!r} already registered")
        _REGISTRY[name] = EngineSpec(
            name=name,
            summary=summary,
            run=run,
            options_class=options_class,
            depth_field=depth_field,
            forced_options=dict(forced_options or {}),
            produces_trace=produces_trace,
            complete=complete,
            supports_constraints=supports_constraints,
            quick=quick,
            direction=direction,
            composite=composite,
            variant_of=variant_of,
        )
        return run

    return _register


def unregister_engine(name: str) -> None:
    """Remove an engine (tests registering temporary engines clean up)."""
    _REGISTRY.pop(name, None)


def get_engine(name: str) -> EngineSpec:
    """The spec registered under ``name``; raises with the known names."""
    _ensure_builtin()
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ModelCheckingError(
            f"unknown engine {name!r}; choose from {engine_names()}"
        )
    return spec


def engine_names() -> tuple[str, ...]:
    """Every registered engine name, in registration order."""
    _ensure_builtin()
    return tuple(_REGISTRY)


def iter_engines() -> tuple[EngineSpec, ...]:
    """Every registered spec, in registration order."""
    _ensure_builtin()
    return tuple(_REGISTRY.values())


def engine_catalog() -> list[dict]:
    """Machine-readable registry: one JSON-shaped dict per engine.

    This is the payload of ``repro engines --json`` and of the
    verification service's ``/engines`` endpoint, so a remote client
    can validate a submission's ``method`` (and discover its option
    names) without importing the registry — the schema is stable:
    ``name``/``summary``/``direction``/``depth_field`` scalars, a
    ``capabilities`` flag map, and the option dataclass's field names.
    """
    _ensure_builtin()
    catalog = []
    for spec in _REGISTRY.values():
        options = (
            sorted(f.name for f in dataclasses.fields(spec.options_class))
            if spec.options_class is not None
            else []
        )
        catalog.append(
            {
                "name": spec.name,
                "summary": spec.summary,
                "direction": spec.direction,
                "depth_field": spec.depth_field,
                "capabilities": {
                    "produces_trace": spec.produces_trace,
                    "complete": spec.complete,
                    "supports_constraints": spec.supports_constraints,
                    "quick": spec.quick,
                    "composite": spec.composite,
                    "variant_of": spec.variant_of,
                },
                "options": options,
            }
        )
    return catalog


def engines_with(**flags: object) -> tuple[EngineSpec, ...]:
    """Specs whose attributes match every given flag, e.g.
    ``engines_with(complete=True, composite=False)``."""
    _ensure_builtin()
    return tuple(
        spec
        for spec in _REGISTRY.values()
        if all(getattr(spec, key) == value for key, value in flags.items())
    )
