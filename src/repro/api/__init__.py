"""The typed verification API: engine registry, tasks, sessions.

This package is the seam every consumer goes through:

* :mod:`repro.api.registry` — :class:`EngineSpec` capability metadata,
  the :func:`register_engine` decorator, and the queries
  (:func:`get_engine`, :func:`engine_names`, :func:`engines_with`) that
  the CLI, the portfolio and the legacy :func:`repro.mc.verify` shim
  all derive from;
* :mod:`repro.api.task` — :class:`VerificationTask`, one problem plus
  its depth / wall-clock / cache budgets;
* :mod:`repro.api.session` — :class:`Session`, which runs tasks and
  batches against one shared structural-hash result cache, emits
  :class:`ProgressEvent`s, and honors cooperative cancellation.

Quick tour::

    from repro.api import Session, VerificationTask

    session = Session(cache="results.jsonl")
    session.on_progress(lambda e: print(e.kind, e.task and e.task.name))
    results = session.verify_many(
        [VerificationTask(n, engine="portfolio", timeout=5.0)
         for n in netlists]
    )

Results, traces and statuses serialize with ``to_dict``/``from_dict``
(see :mod:`repro.mc.result`), so a service front-end can ship them as
JSON verbatim.
"""

from repro.api.registry import (
    EngineSpec,
    engine_names,
    engines_with,
    get_engine,
    iter_engines,
    register_engine,
    unregister_engine,
)
from repro.api.session import ProgressEvent, Session
from repro.api.task import VerificationTask

__all__ = [
    "EngineSpec",
    "ProgressEvent",
    "Session",
    "VerificationTask",
    "engine_names",
    "engines_with",
    "get_engine",
    "iter_engines",
    "register_engine",
    "unregister_engine",
]
