"""Wall-clock helpers used by engines and the benchmark harness."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating stopwatch.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        delta = time.perf_counter() - self._started_at
        self.elapsed += delta
        self._started_at = None
        return delta

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None
