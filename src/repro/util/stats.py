"""Lightweight statistics containers shared by the engines.

Engines report their behaviour (number of SAT checks, merges found, nodes
saved, ...) through :class:`StatsBag` so that tests and the benchmark harness
can assert on *how* a result was obtained, not only on the result itself.
"""

from __future__ import annotations

import time
from typing import Iterator


class Counter:
    """A named monotone counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def incr(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class StatsBag:
    """A dictionary of counters and gauges with a compact report format.

    Keys written with :meth:`incr` are *counters* and add up under
    :meth:`merge`; keys written with :meth:`set` or :meth:`max` are
    *gauges* (sizes, peaks, levels) and merge by maximum — summing two
    engines' ``peak_size`` would report a peak nobody ever saw.  The
    *last* write wins the classification: ``incr`` on a key previously
    written with ``set``/``max`` reclassifies it as a counter (it used
    to stay a gauge silently, so merges took the maximum of values the
    caller meant to sum).

    Besides scalars, a bag can carry *time-series*: :meth:`sample`
    appends ``(t, value)`` points under a key, the probe hooks of
    :mod:`repro.obs.probes` being the main writer.  Series serialize
    with :meth:`to_dict`, concatenate under :meth:`merge`, and are
    summarized by :class:`repro.obs.report.RunReport`.
    """

    def __init__(self) -> None:
        self._values: dict[str, float] = {}
        self._gauges: set[str] = set()
        self._series: dict[str, list[tuple[float, float]]] = {}

    def incr(self, key: str, amount: float = 1) -> None:
        self._values[key] = self._values.get(key, 0) + amount
        self._gauges.discard(key)

    def set(self, key: str, value: float) -> None:
        self._values[key] = value
        self._gauges.add(key)

    def get(self, key: str, default: float = 0) -> float:
        return self._values.get(key, default)

    def max(self, key: str, value: float) -> None:
        self._values[key] = max(self._values.get(key, value), value)
        self._gauges.add(key)

    def is_gauge(self, key: str) -> bool:
        return key in self._gauges

    def gauge_keys(self) -> set[str]:
        return set(self._gauges)

    # ------------------------------------------------------------------ #
    # Time-series
    # ------------------------------------------------------------------ #

    def sample(self, key: str, value: float, t: float | None = None) -> None:
        """Append one ``(t, value)`` point to the series under ``key``.

        ``t`` defaults to ``time.perf_counter()``; probe hooks pass the
        active tracer's clock so series align with its spans.
        """
        if t is None:
            t = time.perf_counter()
        self._series.setdefault(key, []).append((t, float(value)))

    def series(self, key: str) -> list[tuple[float, float]]:
        """The recorded ``(t, value)`` points of ``key`` (a copy)."""
        return list(self._series.get(key, ()))

    def series_keys(self) -> set[str]:
        return set(self._series)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._values.items()))

    def as_dict(self) -> dict[str, float]:
        return dict(self._values)

    def to_dict(self) -> dict:
        """JSON-serializable form, preserving the counter/gauge split."""
        payload = {
            "values": dict(self._values),
            "gauges": sorted(self._gauges),
        }
        if self._series:
            payload["series"] = {
                key: [[t, value] for t, value in points]
                for key, points in self._series.items()
            }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "StatsBag":
        """Rebuild a bag serialized by :meth:`to_dict`."""
        bag = cls()
        gauges = set(payload.get("gauges", ()))
        for key, value in payload.get("values", {}).items():
            if key in gauges:
                bag.set(key, value)
            else:
                bag.incr(key, value)
        for key, points in payload.get("series", {}).items():
            bag._series[key] = [
                (float(t), float(value)) for t, value in points
            ]
        return bag

    def merge(self, other: "StatsBag") -> None:
        """Fold another bag in: counters add, gauges keep the maximum;
        time-series concatenate in timestamp order."""
        for key, value in other:
            if key in other._gauges or key in self._gauges:
                self.max(key, value)
            else:
                self.incr(key, value)
        for key, points in other._series.items():
            merged = self._series.setdefault(key, [])
            merged.extend(points)
            merged.sort()

    def report(self) -> str:
        lines = [f"{key:<40} {value:g}" for key, value in self]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatsBag({self._values!r})"
