"""Small shared utilities: timers, RNG helpers, statistics containers."""

from repro.util.timing import Stopwatch
from repro.util.stats import Counter, StatsBag

__all__ = ["Stopwatch", "Counter", "StatsBag"]
