"""Typed options of the ``itp`` engine.

Kept dependency-free (like :mod:`repro.portfolio.options`) so the engine
registry can import it without pulling the interpolation machinery — the
registration in :mod:`repro.mc.engine` needs the dataclass at import
time, the engine itself only on first use.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ItpOptions:
    """Configuration of interpolation-based reachability.

    ``max_depth`` bounds the unrolling depth ``k`` (doubled after every
    spurious hit); ``max_iterations`` caps the interpolant iterations of
    one fixed-depth round before deepening is forced.  ``check_proofs``
    replays each refutation through the independent resolution checker;
    ``verify_interpolants`` additionally runs the DPLL differential
    check on every extracted interpolant (slow — meant for tests).
    """

    max_depth: int = 100
    max_iterations: int = 64
    check_proofs: bool = True
    verify_interpolants: bool = False
