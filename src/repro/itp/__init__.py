"""Interpolation-based unbounded model checking.

The SAT-only route to unbounded proofs that displaced pure BDD traversal
in the years after the paper: refutation proofs of bounded queries yield
over-approximate images directly (McMillan, CAV 2003), so reachability
runs entirely on the CDCL solver.  Four layers, each trusting only the
one below:

* :class:`repro.sat.solver.ProofLog` — the solver's resolution-chain
  record (``Solver(proof=True)``);
* :mod:`repro.itp.proof` — :class:`ResolutionProof`, an independent
  replay checker that validates every chain down to the empty clause;
* :mod:`repro.itp.interpolant` — McMillan labeled-proof interpolant
  extraction into AIG nodes, plus the DPLL differential check;
* :mod:`repro.itp.engine` — the interpolant fix-point loop, registered
  as the ``itp`` engine (``mc.verify(method="itp")``).
"""

from repro.itp.engine import interpolation_reachability
from repro.itp.interpolant import extract_interpolant, verify_interpolant
from repro.itp.options import ItpOptions
from repro.itp.proof import ResolutionProof

__all__ = [
    "ItpOptions",
    "ResolutionProof",
    "extract_interpolant",
    "interpolation_reachability",
    "verify_interpolant",
]
