"""McMillan interpolant extraction from resolution refutations.

Given a refutation of ``A AND B``, walk the proof DAG once and annotate
every clause with a partial interpolant, built directly as AIG nodes
(structural hashing de-duplicates shared subterms for free):

* an A axiom contributes the disjunction of its literals whose variable
  also occurs in B (its "global" literals);
* a B axiom contributes TRUE;
* a resolution on a pivot local to A disjoins the two annotations, any
  other pivot conjoins them.

The empty clause's annotation is the interpolant ``I``: a formula over
the shared variables with ``A implies I`` and ``I AND B`` unsatisfiable —
exactly an over-approximate image when A is "now" and B is "the future".
:func:`verify_interpolant` checks both properties differentially against
the deliberately simple DPLL oracle, so neither the CDCL solver nor the
extraction is trusted on its own.
"""

from __future__ import annotations

from typing import Mapping

from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.ops import or_, support
from repro.errors import ProofError
from repro.itp.proof import ResolutionProof
from repro.sat.cnf import CNF
from repro.sat.dpll import DpllSolver
from repro.sat.solver import SolveResult, Solver


def extract_interpolant(
    proof: ResolutionProof,
    split: int,
    aig: Aig,
    var_edge: Mapping[int, int],
) -> int:
    """The McMillan interpolant of a refutation, as an AIG edge.

    ``split`` partitions the axioms: ids below it form A, the rest form
    B.  ``var_edge`` maps every shared DIMACS variable (one occurring in
    both partitions) to the AIG edge standing for it; a shared variable
    without a mapping is an error, an unused mapping is fine.
    """
    if proof.root is None:
        raise ProofError("cannot interpolate: proof has no refutation root")
    b_vars: set[int] = set()
    for index in proof.axiom_ids():
        if index >= split:
            b_vars.update(abs(lit) for lit in proof.literals[index])

    def lit_edge(lit: int) -> int:
        edge = var_edge.get(abs(lit))
        if edge is None:
            raise ProofError(
                f"shared variable {abs(lit)} has no AIG edge mapping"
            )
        return edge_not(edge) if lit < 0 else edge

    annotations: dict[int, int] = {}
    for index in proof.antecedent_cone(proof.root):
        chain = proof.chains[index]
        if not chain:
            if index < split:
                annotations[index] = _or_shared(
                    aig, proof.literals[index], b_vars, lit_edge
                )
            else:
                annotations[index] = TRUE
            continue
        current = annotations[chain[0]]
        for antecedent, pivot, _ in proof.resolution_steps(index):
            other = annotations[antecedent]
            if abs(pivot) in b_vars:
                current = aig.and_(current, other)
            else:
                current = or_(aig, current, other)
        annotations[index] = current
    return annotations[proof.root]


def _or_shared(aig: Aig, literals, b_vars, lit_edge) -> int:
    result = FALSE
    for lit in literals:
        if abs(lit) in b_vars:
            result = or_(aig, result, lit_edge(lit))
    return result


def _encode_edge(
    cnf: CNF, aig: Aig, edge: int, node_var: dict[int, int]
) -> int:
    """Tseitin-encode ``edge`` into ``cnf``; returns its literal.

    ``node_var`` maps the cone's input nodes to existing CNF variables
    (gate nodes get fresh ones and are added to the map, so several
    encodings over one CNF share clauses).
    """
    if edge in (TRUE, FALSE):
        pinned = cnf.new_var()
        cnf.add_clause([pinned if edge == TRUE else -pinned])
        return pinned
    for node in aig.cone([edge]):
        if node in node_var:
            continue
        if aig.is_input(node):
            raise ProofError(
                f"interpolant depends on node {node}, which has no "
                f"CNF variable in the checked partition"
            )
        f0, f1 = aig.fanins(node)
        a = node_var[f0 >> 1] * (-1 if f0 & 1 else 1)
        b = node_var[f1 >> 1] * (-1 if f1 & 1 else 1)
        out = cnf.new_var()
        node_var[node] = out
        cnf.add_clause([-out, a])
        cnf.add_clause([-out, b])
        cnf.add_clause([out, -a, -b])
    lit = node_var[edge >> 1]
    return -lit if edge & 1 else lit


def verify_interpolant(
    aig: Aig,
    itp_edge: int,
    cnf_a: CNF,
    cnf_b: CNF,
    var_edge: Mapping[int, int],
    oracle: str = "dpll",
) -> bool:
    """Differentially check an interpolant against its (A, B) partition.

    Verifies the two defining properties — ``A AND NOT I`` and
    ``I AND B`` are both unsatisfiable — with the reference DPLL solver
    (``oracle="cdcl"`` swaps in a fresh CDCL instance for larger
    partitions), and that I's support stays within the mapped shared
    variables.  Raises :class:`ProofError` on any violation; returns
    ``True`` so callers can assert on it directly.

    A shared variable mapped to a *constant* edge declares that the
    query pins it (the Tseitin constant variable, whose ``[-var]`` unit
    lives in only one partition); the extraction cofactored I under
    that value, so both checks evaluate under it too — otherwise the
    side without the pin axiom would be checked weaker than it really
    is and a sound interpolant could be rejected.
    """
    node_var = {
        edge >> 1: var
        for var, edge in var_edge.items()
        if edge not in (TRUE, FALSE)
    }
    pinned = [
        var if edge == TRUE else -var
        for var, edge in var_edge.items()
        if edge in (TRUE, FALSE)
    ]
    unmapped = support(aig, itp_edge) - set(node_var)
    if unmapped:
        raise ProofError(
            f"interpolant support escapes the shared variables: "
            f"nodes {sorted(unmapped)}"
        )

    def unsatisfiable(cnf: CNF) -> bool:
        if oracle == "dpll":
            return not DpllSolver(cnf).solve()
        return Solver(cnf).solve() is SolveResult.UNSAT

    check_a = cnf_a.copy()
    for unit in pinned:
        check_a.add_clause([unit])
    lit = _encode_edge(check_a, aig, itp_edge, dict(node_var))
    check_a.add_clause([-lit])
    if not unsatisfiable(check_a):
        raise ProofError("A does not imply the interpolant")
    check_b = cnf_b.copy()
    for unit in pinned:
        check_b.add_clause([unit])
    lit = _encode_edge(check_b, aig, itp_edge, dict(node_var))
    check_b.add_clause([lit])
    if not unsatisfiable(check_b):
        raise ProofError("the interpolant does not contradict B")
    return True
