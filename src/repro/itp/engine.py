"""Interpolation-based unbounded model checking (McMillan, CAV 2003).

The paper's traversal quantifies images out of circuits; this engine gets
its over-approximate images for free from SAT refutations instead.  One
round at unrolling depth ``k``:

* pose ``R(V0) AND T(V0,V1)`` (partition A) against
  ``T(V1..Vk) AND (bad(V1) OR ... OR bad(Vk))`` (partition B) in one
  proof-logging CDCL solver, reusing :class:`repro.mc.unroll.Unroller`
  for the time-frame expansion;
* UNSAT: the (A, B) interpolant of the refutation is a state set over
  the frame-1 latches that contains the image of ``R`` and excludes
  every state within ``k-1`` steps of a violation.  Accumulate it into
  ``R``; when an interpolant implies the accumulated set, the fix-point
  is an inductive invariant excluding bad — PROVED, with no BDDs and no
  explicit quantification anywhere;
* SAT with ``R`` still the initial states: a real counterexample, read
  straight off the model and replay-validated upstream;
* SAT with a widened ``R``: spurious (an artifact of over-approximation)
  — restart with a deeper unrolling, which tightens the interpolants.

Every refutation can be replayed through the independent checker
(``check_proofs``, on by default), and every interpolant differentially
validated against the DPLL oracle (``verify_interpolants``, expensive,
for tests).
"""

from __future__ import annotations

from repro.aig.cnf import CnfMapper
from repro.aig.graph import FALSE, TRUE, edge_not
from repro.aig.ops import or_
from repro.circuits.netlist import Netlist
from repro.itp.interpolant import extract_interpolant, verify_interpolant
from repro.itp.options import ItpOptions
from repro.itp.proof import ResolutionProof
from repro.mc.result import Status, Trace, VerificationResult
from repro.mc.trace import find_violation_inputs
from repro.mc.unroll import Unroller
from repro.obs import probes as _obs
from repro.sat.solver import SolveResult, Solver
from repro.util.stats import StatsBag


def interpolation_reachability(
    netlist: Netlist, options: ItpOptions | None = None
) -> VerificationResult:
    """Prove or refute an invariant by interpolant iteration."""
    if options is None:
        options = ItpOptions()
    netlist.validate()
    stats = StatsBag()
    failed0 = _check_initial_states(netlist, stats)
    if failed0 is not None:
        return failed0
    iterations = 0
    depth = 1
    while depth <= options.max_depth:
        stats.set("itp_depth", depth)
        with _obs.span("itp.round", "engine", depth=depth) as round_span:
            verdict, trace, spent = _itp_round(
                netlist, depth, options, stats
            )
            round_span.set(verdict=verdict, iterations=spent)
        iterations += spent
        if verdict == "proved":
            return VerificationResult(
                status=Status.PROVED, engine="itp",
                iterations=iterations, stats=stats,
            )
        if verdict == "failed":
            return VerificationResult(
                status=Status.FAILED, engine="itp", trace=trace,
                iterations=iterations, stats=stats,
            )
        if depth == options.max_depth:
            break
        depth = min(2 * depth, options.max_depth)
    return VerificationResult(
        status=Status.UNKNOWN, engine="itp",
        iterations=iterations, stats=stats,
    )


def _check_initial_states(
    netlist: Netlist, stats: StatsBag
) -> VerificationResult | None:
    """Depth 0: does some initial state already violate the property?"""
    aig = netlist.aig
    bad0 = aig.and_(
        netlist.init_state_edge(),
        aig.and_(netlist.constraint_edge(),
                 edge_not(netlist.property_edge)),
    )
    if bad0 == FALSE:
        return None
    mapper = CnfMapper(aig, Solver())
    stats.incr("sat_calls")
    if mapper.solver.solve([mapper.lit_for(bad0)]) is not SolveResult.SAT:
        return None
    state = netlist.init_assignment()
    trace = Trace(
        states=[state], inputs=[],
        violation_inputs=find_violation_inputs(netlist, state),
    )
    return VerificationResult(
        status=Status.FAILED, engine="itp", trace=trace,
        iterations=0, stats=stats,
    )


def _itp_round(
    netlist: Netlist, depth: int, options: ItpOptions, stats: StatsBag
) -> tuple[str, Trace | None, int]:
    """One fixed-depth round; returns ``(verdict, trace, iterations)``.

    The verdict is ``proved``, ``failed``, or ``deepen`` (a spurious hit
    or the iteration cap: retry with a larger unrolling).
    """
    aig = netlist.aig
    latch_nodes = netlist.latch_nodes
    bad = edge_not(netlist.property_edge)
    reach = netlist.init_state_edge()
    iterations = 0
    while iterations < options.max_iterations:
        iterations += 1
        solver = Solver(proof=True)
        unroller = Unroller(netlist, solver, assert_constraints=False)
        # Partition A: R(V0) AND C(V0) AND T(V0, V1).  Its only variables
        # shared with B are the frame-1 latches (and the constant var),
        # so the interpolant lands directly on a state set.
        unroller.ensure_frames(2)
        unroller.constrain_frame(0)
        solver.add_clause(
            [unroller.edge_lit_in(unroller.frame(0), reach)]
        )
        split = len(solver.proof)
        # Partition B: T(V1..Vk) and "some frame violates".  Constraints
        # at frames >= 1 must NOT be asserted as units: a violation at
        # frame j whose bad state has no constraint-satisfying successor
        # (a dead-end) would otherwise be unreachable in the query and
        # the engine would wrongly prove.  Instead each frame gets a
        # one-directional selector implying "bad here AND constraints
        # hold on every frame up to here".
        unroller.ensure_frames(depth + 1)
        violation_lits = _encode_violations(netlist, unroller, bad, depth)
        solver.add_clause(violation_lits)
        stats.incr("sat_calls")
        stats.set("cnf_vars", solver.num_vars)
        outcome = solver.solve()
        if outcome is SolveResult.SAT:
            if iterations == 1:
                return (
                    "failed",
                    _trace_from_model(netlist, unroller, violation_lits),
                    iterations,
                )
            stats.incr("spurious_hits")
            return "deepen", None, iterations
        proof = ResolutionProof.from_solver(solver)
        stats.set("proof_nodes", float(len(proof)))
        if options.check_proofs:
            proof.check_refutation()
            stats.incr("proofs_checked")
        frame1 = unroller.frame(1)
        var_edge = {frame1[node]: 2 * node for node in latch_nodes}
        if unroller.const_var is not None:
            var_edge[unroller.const_var] = FALSE
        with _obs.span("itp.interpolant", "engine", depth=depth,
                       iteration=iterations) as itp_span:
            interpolant = extract_interpolant(proof, split, aig, var_edge)
            interpolant_nodes = float(aig.cone_and_count(interpolant))
            itp_span.set(nodes=interpolant_nodes)
        stats.set("interpolant_nodes", interpolant_nodes)
        if _obs.ENABLED:
            # Interpolant growth per iteration is the engine's own
            # convergence signal; sample it unconditionally of the tick.
            tracer = _obs.tracer()
            tracer.sample("itp.interpolant_nodes", interpolant_nodes)
            stats.sample("itp.interpolant_nodes", interpolant_nodes,
                         t=tracer.now())
        if options.verify_interpolants:
            cnf_a, cnf_b = proof.partition(split)
            width = max(cnf_a.num_vars, cnf_b.num_vars, solver.num_vars)
            cnf_a.num_vars = cnf_b.num_vars = width
            verify_interpolant(aig, interpolant, cnf_a, cnf_b, var_edge)
            stats.incr("interpolants_verified")
        if not _edge_satisfiable(aig, aig.and_(interpolant,
                                               edge_not(reach)), stats):
            # The over-approximation closed: reach is inductive and
            # excludes every bad state.
            stats.set("reach_nodes", float(aig.cone_and_count(reach)))
            return "proved", None, iterations
        reach = or_(aig, reach, interpolant)
        if _obs.ENABLED:
            _obs.sample("itp.reach_nodes", aig.cone_and_count(reach),
                        bag=stats)
    return "deepen", None, iterations


def _encode_violations(
    netlist: Netlist, unroller: Unroller, bad: int, depth: int
) -> list[int]:
    """Selector literals, one per frame: "the property fails at frame j
    and the environment constraints hold at frames 1..j".

    Implication only (selector -> violation), which is all the big
    disjunction needs; the suffix frames past j stay unconstrained, so
    dead-end counterexamples survive.  Without constraints the selectors
    are simply the per-frame bad literals.
    """
    solver = unroller.solver
    if not netlist.constraints:
        return [
            unroller.edge_lit_in(unroller.frame(j), bad)
            for j in range(1, depth + 1)
        ]
    selectors = []
    prefix: int | None = None  # "constraints hold at frames 1..j"
    for j in range(1, depth + 1):
        frame = unroller.frame(j)
        guard = solver.new_var()
        for edge in netlist.constraints:
            solver.add_clause([-guard, unroller.edge_lit_in(frame, edge)])
        if prefix is not None:
            solver.add_clause([-guard, prefix])
        prefix = guard
        selector = solver.new_var()
        solver.add_clause([-selector, unroller.edge_lit_in(frame, bad)])
        solver.add_clause([-selector, prefix])
        selectors.append(selector)
    return selectors


def _edge_satisfiable(aig, edge: int, stats: StatsBag) -> bool:
    if edge == FALSE:
        return False
    if edge == TRUE:
        return True
    mapper = CnfMapper(aig, Solver())
    stats.incr("sat_calls")
    return mapper.solver.solve([mapper.lit_for(edge)]) is SolveResult.SAT


def _trace_from_model(
    netlist: Netlist, unroller: Unroller, violation_lits: list[int]
) -> Trace:
    """Read a concrete counterexample off a satisfying unrolling."""
    solver = unroller.solver
    depth = next(
        j
        for j, lit in enumerate(violation_lits, start=1)
        if solver.lit_true(lit)
    )
    states = [unroller.read_state(j) for j in range(depth + 1)]
    inputs = [unroller.read_inputs(j) for j in range(depth)]
    return Trace(
        states=states,
        inputs=inputs,
        violation_inputs=unroller.read_inputs(depth),
    )
