"""Resolution refutations and their independent checker.

A :class:`ResolutionProof` is an immutable snapshot of a proof-logging
solver's :class:`repro.sat.solver.ProofLog`: clauses in DIMACS literals,
each derived clause carrying the chain of antecedent ids it resolves.
The checker replays every chain by literal-set resolution — each step
must resolve on exactly one complementary pair, antecedents must precede
the clause they derive, and the replayed literal set must equal the
recorded clause — and a refutation must end in the empty clause.

Nothing here trusts the solver: the checker is the trust anchor the
interpolation engine rests on, so it shares no code with the CDCL
implementation beyond the literal convention.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ProofError
from repro.sat.cnf import CNF
from repro.sat.solver import ProofLog, Solver


class ResolutionProof:
    """An immutable resolution proof over DIMACS literals.

    ``literals[i]`` is clause ``i``; ``chains[i]`` its antecedent ids
    (empty for an axiom).  ``root`` is the empty clause of a refutation,
    ``final`` the clause concluding the last UNSAT verdict (the root, or
    the negated assumption core).
    """

    __slots__ = ("literals", "chains", "root", "final")

    def __init__(
        self,
        literals: tuple[tuple[int, ...], ...],
        chains: tuple[tuple[int, ...], ...],
        root: int | None = None,
        final: int | None = None,
    ) -> None:
        if len(literals) != len(chains):
            raise ProofError("literals and chains must align")
        self.literals = literals
        self.chains = chains
        self.root = root
        self.final = final

    @classmethod
    def from_log(cls, log: ProofLog) -> "ResolutionProof":
        return cls(
            tuple(log.literals), tuple(log.chains), log.root, log.final
        )

    @classmethod
    def from_solver(cls, solver: Solver) -> "ResolutionProof":
        log = solver.proof
        if log is None:
            raise ProofError(
                "solver holds no proof; construct it with Solver(proof=True)"
            )
        return cls.from_log(log)

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.literals)

    def is_axiom(self, index: int) -> bool:
        return not self.chains[index]

    def axiom_ids(self) -> Iterator[int]:
        for index, chain in enumerate(self.chains):
            if not chain:
                yield index

    def num_axioms(self) -> int:
        return sum(1 for chain in self.chains if not chain)

    def antecedent_cone(self, index: int) -> list[int]:
        """Every clause id the derivation of ``index`` depends on,
        ascending (and therefore topologically sorted)."""
        seen = {index}
        stack = [index]
        while stack:
            for parent in self.chains[stack.pop()]:
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        return sorted(seen)

    def partition(self, split: int) -> tuple[CNF, CNF]:
        """The axioms as two CNFs: ids below ``split`` vs. the rest.

        This recovers the (A, B) pair an interpolation query was posed
        as, which is what ``verify_interpolant`` checks against.
        """
        cnf_a, cnf_b = CNF(), CNF()
        for index in self.axiom_ids():
            target = cnf_a if index < split else cnf_b
            target.add_clause(self.literals[index])
        return cnf_a, cnf_b

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #

    def resolution_steps(
        self, index: int
    ) -> Iterator[tuple[int, int, frozenset[int]]]:
        """Replay one chain, yielding ``(antecedent_id, pivot, result)``.

        The pivot is the literal of the running clause that the
        antecedent resolves away.  Raises :class:`ProofError` on a step
        with no (or more than one) complementary pair, on an antecedent
        that does not precede the derived clause, and on a final literal
        set differing from the recorded clause.
        """
        chain = self.chains[index]
        if not chain:
            return
        if max(chain) >= index:
            raise ProofError(
                f"clause {index} resolves antecedent {max(chain)} that does "
                f"not precede it"
            )
        lits = set(self.literals[chain[0]])
        for antecedent in chain[1:]:
            other = self.literals[antecedent]
            pivots = [lit for lit in lits if -lit in other]
            if len(pivots) != 1:
                raise ProofError(
                    f"clause {index}: resolution with antecedent "
                    f"{antecedent} has {len(pivots)} complementary pairs "
                    f"(need exactly 1)"
                )
            pivot = pivots[0]
            lits.discard(pivot)
            lits.update(other)
            lits.discard(-pivot)
            yield antecedent, pivot, frozenset(lits)
        if lits != set(self.literals[index]):
            raise ProofError(
                f"clause {index} replays to {sorted(lits)}, recorded as "
                f"{sorted(self.literals[index])}"
            )

    def replay(self, index: int) -> frozenset[int]:
        """The literal set chain ``index`` derives (validating each step)."""
        result = frozenset(self.literals[index])
        for _, _, result in self.resolution_steps(index):
            pass
        return result

    def check(self) -> int:
        """Replay every derived chain; returns how many were checked."""
        checked = 0
        for index in range(len(self.literals)):
            if self.chains[index]:
                self.replay(index)
                checked += 1
        return checked

    def check_refutation(self) -> int:
        """Full check plus: the root exists and is the empty clause."""
        if self.root is None:
            raise ProofError("proof has no root (no refutation was logged)")
        if self.literals[self.root]:
            raise ProofError(
                f"root clause {self.root} is not empty: "
                f"{self.literals[self.root]}"
            )
        return self.check()
