"""The And-Inverter Graph manager.

An AIG node is either the constant node, a primary input, or a two-input
AND.  Inversion lives on edges: an edge is ``2*node + complement``.  The
manager hash-conses AND nodes — identical ``(fanin0, fanin1)`` pairs map to
one node — which is the "AIG semi-canonicity and hashing scheme" the paper
exploits "to early detect functionally equivalent map points".
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import AigError

FALSE = 0
TRUE = 1

_CONST_NODE = 0


def edge_node(edge: int) -> int:
    """The node an edge points to."""
    return edge >> 1


def edge_is_complement(edge: int) -> bool:
    """Whether the edge inverts its node."""
    return bool(edge & 1)


def edge_not(edge: int) -> int:
    """Negate an edge (invert the complement bit)."""
    return edge ^ 1


class Aig:
    """Append-only hash-consed AIG manager.

    >>> aig = Aig()
    >>> a, b = aig.add_input("a"), aig.add_input("b")
    >>> f = aig.and_(a, b)
    >>> g = aig.and_(b, a)
    >>> f == g                     # structural hashing
    True
    >>> aig.and_(a, edge_not(a))   # x AND NOT x == FALSE
    0
    """

    def __init__(self) -> None:
        # Node 0 is the constant-FALSE node.
        self._fanin0: list[int] = [-1]
        self._fanin1: list[int] = [-1]
        self._levels: list[int] = [0]
        self._inputs: list[int] = []
        self._input_names: dict[int, str] = {}
        self._strash: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_input(self, name: str | None = None) -> int:
        """Create a primary input node; returns its positive edge."""
        node = len(self._fanin0)
        self._fanin0.append(-1)
        self._fanin1.append(-1)
        self._levels.append(0)
        self._inputs.append(node)
        if name is not None:
            self._input_names[node] = name
        return 2 * node

    def add_inputs(self, count: int, prefix: str = "x") -> list[int]:
        """Create ``count`` named inputs ``prefix0 .. prefixN-1``."""
        if count < 0:
            raise AigError("count must be non-negative")
        return [self.add_input(f"{prefix}{i}") for i in range(count)]

    def and_(self, a: int, b: int) -> int:
        """Return the edge for ``a AND b``, with simplification and hashing."""
        self._check_edge(a)
        self._check_edge(b)
        # Constant and trivial-structure simplifications.
        if a == FALSE or b == FALSE or a == edge_not(b):
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE or a == b:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        node = self._strash.get(key)
        if node is not None:
            return 2 * node
        node = len(self._fanin0)
        self._fanin0.append(a)
        self._fanin1.append(b)
        self._levels.append(
            1 + max(self._levels[a >> 1], self._levels[b >> 1])
        )
        self._strash[key] = node
        return 2 * node

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #

    def _check_edge(self, edge: int) -> None:
        if edge < 0 or (edge >> 1) >= len(self._fanin0):
            raise AigError(f"edge {edge} does not belong to this AIG")

    def is_input(self, node: int) -> bool:
        return self._fanin0[node] == -1 and node != _CONST_NODE

    def is_and(self, node: int) -> bool:
        return self._fanin0[node] != -1

    def is_const(self, node: int) -> bool:
        return node == _CONST_NODE

    def fanins(self, node: int) -> tuple[int, int]:
        """The two fanin edges of an AND node."""
        if not self.is_and(node):
            raise AigError(f"node {node} is not an AND node")
        return self._fanin0[node], self._fanin1[node]

    def level(self, node: int) -> int:
        return self._levels[node]

    @property
    def inputs(self) -> list[int]:
        """Input nodes in creation order."""
        return list(self._inputs)

    @property
    def input_edges(self) -> list[int]:
        return [2 * node for node in self._inputs]

    def input_name(self, node: int) -> str:
        return self._input_names.get(node, f"i{node}")

    def name_of(self, node: int) -> str | None:
        return self._input_names.get(node)

    @property
    def num_nodes(self) -> int:
        """Total nodes including constant and inputs."""
        return len(self._fanin0)

    @property
    def num_ands(self) -> int:
        return len(self._fanin0) - 1 - len(self._inputs)

    @property
    def num_inputs(self) -> int:
        return len(self._inputs)

    def nodes(self) -> Iterator[int]:
        """All nodes in topological (creation) order."""
        return iter(range(len(self._fanin0)))

    def and_nodes(self) -> Iterator[int]:
        for node in range(len(self._fanin0)):
            if self.is_and(node):
                yield node

    # ------------------------------------------------------------------ #
    # Cone extraction / compaction
    # ------------------------------------------------------------------ #

    def cone(self, edges: Iterable[int]) -> list[int]:
        """Nodes in the transitive fanin of ``edges``, topologically sorted.

        Includes input nodes of the cone; excludes the constant node.
        """
        roots = [edge >> 1 for edge in edges]
        seen: set[int] = set()
        order: list[int] = []
        stack: list[tuple[int, bool]] = [(n, False) for n in roots]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if node in seen or node == _CONST_NODE:
                continue
            seen.add(node)
            stack.append((node, True))
            if self.is_and(node):
                stack.append((self._fanin0[node] >> 1, False))
                stack.append((self._fanin1[node] >> 1, False))
        return order

    def cone_and_count(self, edge: int) -> int:
        """Number of AND nodes in the cone of a single edge."""
        return sum(1 for node in self.cone([edge]) if self.is_and(node))

    def extract(
        self, edges: Iterable[int], keep_all_inputs: bool = False
    ) -> tuple["Aig", list[int], dict[int, int]]:
        """Rebuild only the logic reachable from ``edges`` in a fresh manager.

        Returns ``(new_aig, new_edges, node_map)`` where ``node_map`` maps
        old node ids to new *edges*.  Input nodes keep their names.  With
        ``keep_all_inputs`` every input of this manager is recreated (in
        order) even if unreferenced, so input indices stay aligned.
        """
        edges = list(edges)
        new_aig = Aig()
        node_map: dict[int, int] = {_CONST_NODE: FALSE}
        if keep_all_inputs:
            for node in self._inputs:
                node_map[node] = new_aig.add_input(self._input_names.get(node))
        for node in self.cone(edges):
            if node in node_map:
                continue
            if self.is_input(node):
                node_map[node] = new_aig.add_input(self._input_names.get(node))
            else:
                f0, f1 = self._fanin0[node], self._fanin1[node]
                a = node_map[f0 >> 1] ^ (f0 & 1)
                b = node_map[f1 >> 1] ^ (f1 & 1)
                node_map[node] = new_aig.and_(a, b)
        new_edges = [node_map[e >> 1] ^ (e & 1) for e in edges]
        return new_aig, new_edges, node_map

    # ------------------------------------------------------------------ #
    # Rebuilding with a substitution map (shared by cofactor/compose/sweep)
    # ------------------------------------------------------------------ #

    def rebuild(
        self,
        edge: int,
        leaf_map: Mapping[int, int],
        cache: dict[int, int] | None = None,
    ) -> int:
        """Re-express ``edge`` with some nodes replaced by other edges.

        ``leaf_map`` maps node ids to replacement edges; every node not in
        the map is rebuilt from its (rebuilt) fanins.  The result lives in
        *this* manager.  ``cache`` allows sharing work across calls.
        """
        self._check_edge(edge)
        if cache is None:
            cache = {}
        root = edge >> 1
        stack = [root]
        fanin0, fanin1 = self._fanin0, self._fanin1
        while stack:
            node = stack[-1]
            if node in cache:
                stack.pop()
                continue
            if node in leaf_map:
                cache[node] = leaf_map[node]
                stack.pop()
                continue
            if not self.is_and(node):
                cache[node] = 2 * node
                stack.pop()
                continue
            f0, f1 = fanin0[node], fanin1[node]
            n0, n1 = f0 >> 1, f1 >> 1
            pending = False
            if n0 not in cache:
                stack.append(n0)
                pending = True
            if n1 not in cache:
                stack.append(n1)
                pending = True
            if pending:
                continue
            stack.pop()
            a = cache[n0] ^ (f0 & 1)
            b = cache[n1] ^ (f1 & 1)
            cache[node] = self.and_(a, b)
        return cache[root] ^ (edge & 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Aig(inputs={self.num_inputs}, ands={self.num_ands})"
        )
