"""Bit-parallel AIG simulation.

Simulation drives the sweeping engines: random patterns partition nodes into
candidate-equivalence classes, and every SAT counterexample is fed back as
one more pattern ("any SAT solver solution thus potentially rules-out
several non matching couples").  Vectors are numpy ``uint64`` arrays, so one
word simulates 64 patterns at once.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.aig.graph import Aig
from repro.errors import AigError

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def simulate(
    aig: Aig,
    input_vectors: Mapping[int, np.ndarray],
    targets: Sequence[int],
) -> dict[int, np.ndarray]:
    """Simulate the cones of ``targets`` under the given input vectors.

    ``input_vectors`` maps input *nodes* to uint64 arrays (all of one equal
    length).  Returns a map from each target *edge* to its output vector.
    Inputs missing from the map default to constant zero.
    """
    words = None
    for vector in input_vectors.values():
        if words is None:
            words = len(vector)
        elif len(vector) != words:
            raise AigError("input vectors must all have the same length")
    if words is None:
        words = 1
    zeros = np.zeros(words, dtype=np.uint64)
    node_values: dict[int, np.ndarray] = {0: zeros}
    for node in aig.cone(targets):
        if aig.is_input(node):
            node_values[node] = np.asarray(
                input_vectors.get(node, zeros), dtype=np.uint64
            )
        else:
            f0, f1 = aig.fanins(node)
            v0 = node_values[f0 >> 1]
            if f0 & 1:
                v0 = ~v0
            v1 = node_values[f1 >> 1]
            if f1 & 1:
                v1 = ~v1
            node_values[node] = v0 & v1
    result: dict[int, np.ndarray] = {}
    for edge in targets:
        value = node_values.get(edge >> 1)
        if value is None:  # target collapses to a constant edge
            value = zeros
        result[edge] = ~value if edge & 1 else value.copy()
    return result


def simulate_nodes(
    aig: Aig,
    input_vectors: Mapping[int, np.ndarray],
    targets: Sequence[int],
) -> dict[int, np.ndarray]:
    """Like :func:`simulate` but returns *node* vectors for whole cones.

    The sweeping engines need per-node signatures, not just root values.
    """
    words = max((len(v) for v in input_vectors.values()), default=1)
    zeros = np.zeros(words, dtype=np.uint64)
    node_values: dict[int, np.ndarray] = {0: zeros}
    for node in aig.cone(targets):
        if aig.is_input(node):
            node_values[node] = np.asarray(
                input_vectors.get(node, zeros), dtype=np.uint64
            )
        else:
            f0, f1 = aig.fanins(node)
            v0 = node_values[f0 >> 1]
            if f0 & 1:
                v0 = ~v0
            v1 = node_values[f1 >> 1]
            if f1 & 1:
                v1 = ~v1
            node_values[node] = v0 & v1
    return node_values


def random_input_vectors(
    aig: Aig, words: int, seed: int = 0
) -> dict[int, np.ndarray]:
    """Uniform random simulation vectors for every input of the manager."""
    rng = np.random.default_rng(seed)
    return {
        node: rng.integers(0, 2**64, size=words, dtype=np.uint64)
        for node in aig.inputs
    }


def eval_edge(aig: Aig, edge: int, assignment: Mapping[int, bool]) -> bool:
    """Evaluate one edge under a Boolean input assignment (by node id)."""
    vectors = {
        node: np.array([_ALL_ONES if value else 0], dtype=np.uint64)
        for node, value in assignment.items()
    }
    result = simulate(aig, vectors, [edge])[edge]
    return bool(result[0] & np.uint64(1))


def truth_table(aig: Aig, edge: int, input_order: Sequence[int]) -> int:
    """Exhaustive truth table of ``edge`` over ``input_order`` as a bitmask.

    Bit ``i`` of the result is the function value when input ``k`` takes
    bit ``k`` of ``i``.  Limited to 16 inputs (65536 rows).
    """
    n = len(input_order)
    if n > 16:
        raise AigError("truth_table supports at most 16 inputs")
    rows = 1 << n
    words = (rows + 63) // 64
    vectors: dict[int, np.ndarray] = {}
    for k, node in enumerate(input_order):
        pattern = np.zeros(words, dtype=np.uint64)
        for row in range(rows):
            if (row >> k) & 1:
                pattern[row // 64] |= np.uint64(1) << np.uint64(row % 64)
        vectors[node] = pattern
    out = simulate(aig, vectors, [edge])[edge]
    mask = 0
    for w in range(words):
        mask |= int(out[w]) << (64 * w)
    return mask & ((1 << rows) - 1)
