"""Bit-parallel AIG simulation.

Simulation drives the sweeping engines: random patterns partition nodes into
candidate-equivalence classes, and every SAT counterexample is fed back as
one more pattern ("any SAT solver solution thus potentially rules-out
several non matching couples").  The public interface speaks numpy
``uint64`` arrays (one word simulates 64 patterns at once), but the kernel
itself runs on a *levelized cone plan*: one topological pass over flat
integer arrays, with each node's 64-way lanes packed into a single Python
integer (``words * 64`` bits wide).  A packed-int AND/XOR is one arbitrary-
precision machine op, so the per-node cost is a few interpreter ops instead
of a numpy ufunc dispatch, and there are no per-node dict lookups.

Plans are cached on the :class:`~repro.aig.graph.Aig` instance keyed by the
target node set.  The manager is append-only, so a plan — the cone's
topological order compiled to positional fanin/negation columns — stays
valid forever; repeated simulations of the same targets (PDR's ternary
generalization, FRAIG resimulation) skip the cone walk entirely.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.aig.graph import Aig
from repro.errors import AigError

# Plans are tiny (five int tuples per AND) but target sets are open-ended —
# FRAIG asks for one fresh node at a time — so the per-manager plan cache is
# bounded with the same wholesale-amnesia discipline as the BDD caches.
_MAX_PLANS = 256


class ConePlan:
    """A levelized, position-indexed evaluation plan for one target set.

    ``ops`` holds one ``(dst, src0, neg0, src1, neg1)`` tuple per AND node
    in topological order; ``inputs`` holds ``(pos, node)`` for the cone's
    inputs; ``pos`` maps node ids to value-array positions (position 0 is
    the constant-FALSE node) and ``nodes`` is the inverse column.
    Positions index a flat value list, so an evaluator is one loop with
    no dict access.
    """

    __slots__ = ("size", "inputs", "ops", "pos", "nodes")

    def __init__(self, aig: Aig, nodes: tuple[int, ...]) -> None:
        pos: dict[int, int] = {0: 0}
        node_ids: list[int] = [0]
        inputs: list[tuple[int, int]] = []
        ops: list[tuple[int, int, int, int, int]] = []
        for node in aig.cone([2 * n for n in nodes]):
            index = len(pos)
            pos[node] = index
            node_ids.append(node)
            if aig.is_input(node):
                inputs.append((index, node))
            else:
                f0, f1 = aig.fanins(node)
                ops.append(
                    (index, pos[f0 >> 1], f0 & 1, pos[f1 >> 1], f1 & 1)
                )
        self.size = len(pos)
        self.inputs = inputs
        self.ops = ops
        self.pos = pos
        self.nodes = node_ids


def cone_plan(aig: Aig, edges: Sequence[int]) -> ConePlan:
    """The (cached) levelized plan for the cone of ``edges``."""
    key = tuple(sorted({edge >> 1 for edge in edges}))
    plans = aig.__dict__.get("_sim_plans")
    if plans is None:
        plans = aig.__dict__["_sim_plans"] = {}
    plan = plans.get(key)
    if plan is None:
        if len(plans) >= _MAX_PLANS:
            plans.clear()
        plan = ConePlan(aig, key)
        plans[key] = plan
    return plan


def _pack(vector: np.ndarray | Sequence[int]) -> int:
    """A uint64 vector packed into one little-endian Python integer."""
    return int.from_bytes(
        np.ascontiguousarray(np.asarray(vector, dtype="<u8")).tobytes(),
        "little",
    )


def _unpack(value: int, words: int) -> np.ndarray:
    """A packed integer back to a fresh, writable uint64 vector."""
    return np.frombuffer(
        bytearray(value.to_bytes(words * 8, "little")), dtype="<u8"
    ).view(np.uint64)


def _eval_plan(
    plan: ConePlan,
    input_ints: Mapping[int, int],
    mask: int,
) -> list[int]:
    """One topological pass; returns the flat per-position value list."""
    values = [0] * plan.size
    for index, node in plan.inputs:
        values[index] = input_ints.get(node, 0)
    for dst, src0, neg0, src1, neg1 in plan.ops:
        a = values[src0]
        if neg0:
            a ^= mask
        b = values[src1]
        if neg1:
            b ^= mask
        values[dst] = a & b
    return values


def simulate(
    aig: Aig,
    input_vectors: Mapping[int, np.ndarray],
    targets: Sequence[int],
) -> dict[int, np.ndarray]:
    """Simulate the cones of ``targets`` under the given input vectors.

    ``input_vectors`` maps input *nodes* to uint64 arrays (all of one equal
    length).  Returns a map from each target *edge* to its output vector.
    Inputs missing from the map default to constant zero.
    """
    words = None
    for vector in input_vectors.values():
        if words is None:
            words = len(vector)
        elif len(vector) != words:
            raise AigError("input vectors must all have the same length")
    if words is None:
        words = 1
    plan = cone_plan(aig, targets)
    mask = (1 << (words * 64)) - 1
    input_ints = {
        node: _pack(vector) for node, vector in input_vectors.items()
    }
    values = _eval_plan(plan, input_ints, mask)
    pos = plan.pos
    result: dict[int, np.ndarray] = {}
    for edge in targets:
        value = values[pos.get(edge >> 1, 0)]
        if edge & 1:
            value ^= mask
        result[edge] = _unpack(value, words)
    return result


def simulate_nodes(
    aig: Aig,
    input_vectors: Mapping[int, np.ndarray],
    targets: Sequence[int],
) -> dict[int, np.ndarray]:
    """Like :func:`simulate` but returns *node* vectors for whole cones.

    The sweeping engines need per-node signatures, not just root values.
    """
    words = max((len(v) for v in input_vectors.values()), default=1)
    plan = cone_plan(aig, targets)
    mask = (1 << (words * 64)) - 1
    input_ints = {
        node: _pack(vector) for node, vector in input_vectors.items()
    }
    values = _eval_plan(plan, input_ints, mask)
    return {
        node: _unpack(values[index], words)
        for node, index in plan.pos.items()
    }


def random_input_vectors(
    aig: Aig, words: int, seed: int = 0
) -> dict[int, np.ndarray]:
    """Uniform random simulation vectors for every input of the manager."""
    rng = np.random.default_rng(seed)
    return {
        node: rng.integers(0, 2**64, size=words, dtype=np.uint64)
        for node in aig.inputs
    }


def eval_edge(aig: Aig, edge: int, assignment: Mapping[int, bool]) -> bool:
    """Evaluate one edge under a Boolean input assignment (by node id)."""
    plan = cone_plan(aig, (edge,))
    values = [0] * plan.size
    for index, node in plan.inputs:
        if assignment.get(node, False):
            values[index] = 1
    for dst, src0, neg0, src1, neg1 in plan.ops:
        values[dst] = (values[src0] ^ neg0) & (values[src1] ^ neg1)
    return bool((values[plan.pos.get(edge >> 1, 0)] ^ edge) & 1)


def truth_table(aig: Aig, edge: int, input_order: Sequence[int]) -> int:
    """Exhaustive truth table of ``edge`` over ``input_order`` as a bitmask.

    Bit ``i`` of the result is the function value when input ``k`` takes
    bit ``k`` of ``i``.  Limited to 16 inputs (65536 rows).
    """
    n = len(input_order)
    if n > 16:
        raise AigError("truth_table supports at most 16 inputs")
    rows = 1 << n
    plan = cone_plan(aig, (edge,))
    mask = (1 << rows) - 1
    # Input k's column is the standard block pattern 0101.., 0011.., ...
    # built directly as packed integers.
    input_ints: dict[int, int] = {}
    for k, node in enumerate(input_order):
        block = 1 << k
        pattern = ((1 << block) - 1) << block
        period = block * 2
        full = 0
        for shift in range(0, rows, period):
            full |= pattern << shift
        input_ints[node] = full & mask
    values = _eval_plan(plan, input_ints, mask)
    value = values[plan.pos.get(edge >> 1, 0)]
    if edge & 1:
        value ^= mask
    return value
