"""Truth-table-based local rewriting (the "category 2" optimizations).

Section 2.2 of the paper keeps a second class of size reductions that look
at the final function ("minimizing, factorizing, rewriting ... the final
resulting function").  This pass re-synthesizes small cuts from their truth
tables via Shannon decomposition with memoized sub-functions, and keeps the
new cone only when it is smaller.

The synthesis is deliberately simple — a recursive Shannon/ISOP hybrid on at
most ``k`` variables — but because it is applied over all cuts of the cone
with global structural hashing, it recovers most of the easy factorizations
the paper alludes to.
"""

from __future__ import annotations

from repro.aig.cuts import cut_truth_table, enumerate_cuts
from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.ops import ite


def synthesize_from_truth_table(
    aig: Aig,
    mask: int,
    leaf_edges: list[int],
    cache: dict[tuple[int, tuple[int, ...]], int] | None = None,
) -> int:
    """Build an AIG edge computing the given truth table over leaf edges.

    Shannon-decomposes on the variable whose cofactors are simplest, with
    constant/equal-cofactor shortcuts; memoizes on (mask, leaves).
    """
    if cache is None:
        cache = {}
    return _synth(aig, mask, tuple(leaf_edges), cache)


def _synth(
    aig: Aig,
    mask: int,
    leaves: tuple[int, ...],
    cache: dict[tuple[int, tuple[int, ...]], int],
) -> int:
    n = len(leaves)
    rows = 1 << n
    full = (1 << rows) - 1
    mask &= full
    if mask == 0:
        return FALSE
    if mask == full:
        return TRUE
    if n == 1:
        return leaves[0] if mask == 0b10 else edge_not(leaves[0])
    key = (mask, leaves)
    hit = cache.get(key)
    if hit is not None:
        return hit
    # Cofactor masks w.r.t. each variable; pick the variable where the two
    # cofactors are most constrained (max constant/equal shortcuts).
    best = None
    for position in range(n):
        negative, positive = _cofactor_masks(mask, position, n)
        score = 0
        half_rows = 1 << (n - 1)
        half_full = (1 << half_rows) - 1
        for cof in (negative, positive):
            if cof in (0, half_full):
                score += 2
        if negative == positive:
            score += 3
        candidate = (score, position, negative, positive)
        if best is None or candidate > best:
            best = candidate
    _, position, negative, positive = best
    sub_leaves = leaves[:position] + leaves[position + 1:]
    if negative == positive:
        result = _synth(aig, negative, sub_leaves, cache)
    else:
        then_edge = _synth(aig, positive, sub_leaves, cache)
        else_edge = _synth(aig, negative, sub_leaves, cache)
        result = ite(aig, leaves[position], then_edge, else_edge)
    cache[key] = result
    return result


def _cofactor_masks(mask: int, position: int, n: int) -> tuple[int, int]:
    """Split a truth table on variable ``position``; returns (neg, pos)."""
    negative = 0
    positive = 0
    out_row_neg = 0
    out_row_pos = 0
    for row in range(1 << n):
        bit = (mask >> row) & 1
        if (row >> position) & 1:
            positive |= bit << out_row_pos
            out_row_pos += 1
        else:
            negative |= bit << out_row_neg
            out_row_neg += 1
    return negative, positive


def rewrite_root(
    aig: Aig,
    edge: int,
    k: int = 4,
    max_cuts_per_node: int = 6,
) -> int:
    """Rewrite the cone of ``edge``; returns a (possibly) smaller new edge.

    Processes the cone bottom-up.  For each node, tries every k-cut, builds
    the cut function from its truth table over *rewritten* leaves, and keeps
    the best replacement edge.  Size never increases because the trivial
    (identity) reconstruction is always among the candidates.
    """
    if edge in (FALSE, TRUE):
        return edge
    cuts = enumerate_cuts(aig, [edge], k=k, max_cuts_per_node=max_cuts_per_node)
    rebuilt: dict[int, int] = {}  # old node -> new edge
    synth_cache: dict[tuple[int, tuple[int, ...]], int] = {}
    for node in aig.cone([edge]):
        if aig.is_input(node):
            rebuilt[node] = 2 * node
            continue
        f0, f1 = aig.fanins(node)
        default = aig.and_(
            rebuilt[f0 >> 1] ^ (f0 & 1),
            rebuilt[f1 >> 1] ^ (f1 & 1),
        )
        best_edge = default
        best_size = aig.cone_and_count(default)
        for cut in cuts.get(node, ()):
            if node in cut or not cut:
                continue
            if any(leaf not in rebuilt for leaf in cut):
                continue
            mask, leaf_order = cut_truth_table(aig, node, cut)
            leaf_edges = [rebuilt[leaf] for leaf in leaf_order]
            candidate = synthesize_from_truth_table(
                aig, mask, leaf_edges, synth_cache
            )
            size = aig.cone_and_count(candidate)
            if size < best_size:
                best_size = size
                best_edge = candidate
        rebuilt[node] = best_edge
    return rebuilt[edge >> 1] ^ (edge & 1)
