"""And-Inverter Graph substrate.

The paper represents every state set as a single-output Boolean circuit over
an AIG (Kuehlmann et al. [3]).  This package provides the graph itself with
the semi-canonical structural hashing scheme the merge phase relies on
(step 1 of Section 2.1), plus the algebra the quantification and traversal
engines need: cofactoring, composition (for quantification by substitution),
bit-parallel simulation, Tseitin CNF encoding, cut enumeration and
truth-table-based rewriting.

Edges ("literals") are plain ints: ``2*node + complement``.  The constant
FALSE edge is 0 and TRUE is 1.  Managers are append-only; algorithms that
shrink circuits build replacement cones and call :meth:`Aig.extract` to
compact.
"""

from repro.aig.graph import Aig, FALSE, TRUE, edge_node, edge_is_complement, edge_not
from repro.aig.ops import (
    and_all,
    cofactor,
    compose,
    equal_edges_syntactic,
    implies_edge,
    ite,
    or_,
    or_all,
    support,
    xor,
    xnor,
)
from repro.aig.cnf import CnfMapper, edge_to_cnf
from repro.aig.simulate import eval_edge, simulate, truth_table
from repro.aig.analysis import cone_nodes, cone_size, level_of, structural_stats
from repro.aig.balance import balance, balance_stats, collect_conjunction
from repro.aig.aiger_binary import read_aig_binary, write_aig_binary, write_aig_binary_bytes

__all__ = [
    "Aig",
    "FALSE",
    "TRUE",
    "edge_node",
    "edge_is_complement",
    "edge_not",
    "and_all",
    "or_",
    "or_all",
    "xor",
    "xnor",
    "ite",
    "implies_edge",
    "cofactor",
    "compose",
    "support",
    "equal_edges_syntactic",
    "CnfMapper",
    "edge_to_cnf",
    "simulate",
    "eval_edge",
    "truth_table",
    "cone_nodes",
    "cone_size",
    "level_of",
    "structural_stats",
    "balance",
    "balance_stats",
    "collect_conjunction",
    "read_aig_binary",
    "write_aig_binary",
    "write_aig_binary_bytes",
]
