"""AND-tree balancing: depth reduction over conjunction trees.

Iterative quantification chains disjunctions and conjunctions linearly,
producing skewed trees whose depth grows with every step.  Depth matters
twice here: simulation and CNF encoding touch every level, and the
backward SAT-merge order (which probes "the output region" first) degrades
on deep, narrow cones.

Balancing collects each maximal multi-input AND tree (following
non-inverted AND edges), deduplicates and sorts its leaves by level, and
rebuilds the conjunction as a lowest-depth tree — the standard algebraic
balance pass of AIG packages.  The function is preserved exactly;
the node count never increases on tree-shaped regions (shared leaves can
only merge further under hashing).
"""

from __future__ import annotations

from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.util.stats import StatsBag


def collect_conjunction(aig: Aig, edge: int) -> list[int]:
    """The leaves of the maximal AND tree rooted at ``edge``.

    Follows positive (non-inverted) AND edges only — an inverted edge is
    an OR boundary and stays a leaf.  Returns the leaf edges left to
    right; duplicates are removed, and a leaf pair ``x, NOT x`` collapses
    the whole conjunction to constant FALSE (signalled by ``[FALSE]``).
    """
    if edge & 1 or not aig.is_and(edge >> 1):
        return [edge]
    leaves: list[int] = []
    seen: set[int] = set()
    stack = [edge]
    while stack:
        current = stack.pop()
        node = current >> 1
        if not (current & 1) and aig.is_and(node):
            f0, f1 = aig.fanins(node)
            stack.append(f0)
            stack.append(f1)
            continue
        if edge_not(current) in seen:
            return [FALSE]
        if current == TRUE or current in seen:
            continue
        if current == FALSE:
            return [FALSE]
        seen.add(current)
        leaves.append(current)
    return leaves if leaves else [TRUE]


def balance(aig: Aig, edge: int, cache: dict[int, int] | None = None) -> int:
    """Rebuild the cone of ``edge`` with every AND tree depth-balanced.

    Returns a functionally identical edge in the same manager.  ``cache``
    (old node -> balanced edge) may be shared across calls so common
    logic balances once.
    """
    if cache is None:
        cache = {}
    root = edge >> 1
    stack = [root]
    while stack:
        node = stack[-1]
        if node in cache or not aig.is_and(node):
            cache.setdefault(node, 2 * node)
            stack.pop()
            continue
        # Balance the *maximal* tree at this node; its leaves are the
        # recursion frontier.
        leaves = collect_conjunction(aig, 2 * node)
        pending = [
            leaf >> 1 for leaf in leaves
            if (leaf >> 1) not in cache and aig.is_and(leaf >> 1)
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        balanced_leaves = [
            cache.get(leaf >> 1, 2 * (leaf >> 1)) ^ (leaf & 1)
            for leaf in leaves
        ]
        cache[node] = _balanced_and(aig, balanced_leaves)
    return cache[root] ^ (edge & 1)


def _balanced_and(aig: Aig, leaves: list[int]) -> int:
    """Conjoin leaves pairing the shallowest first (Huffman-style)."""
    if not leaves:
        return TRUE
    work = sorted(leaves, key=lambda e: aig.level(e >> 1))
    while len(work) > 1:
        a = work.pop(0)
        b = work.pop(0)
        merged = aig.and_(a, b)
        # Insert keeping the by-level order (list is short in practice).
        level = aig.level(merged >> 1)
        index = 0
        while index < len(work) and aig.level(work[index] >> 1) <= level:
            index += 1
        work.insert(index, merged)
    return work[0]


def balance_stats(aig: Aig, edge: int) -> tuple[int, StatsBag]:
    """Balance plus a before/after size and depth report."""
    stats = StatsBag()
    stats.set("size_before", aig.cone_and_count(edge))
    stats.set("depth_before", aig.level(edge >> 1))
    result = balance(aig, edge)
    stats.set("size_after", aig.cone_and_count(result))
    stats.set("depth_after", aig.level(result >> 1))
    return result, stats
