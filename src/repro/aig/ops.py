"""Boolean algebra over AIG edges.

All operators create nodes in the given manager and return edges.  The
quantification engine is built from exactly these pieces: cofactors for the
Shannon split, ``or_`` for the disjunction of cofactors, and ``compose`` for
quantification by substitution (in-lining, Section 3 of the paper).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.errors import AigError


def or_(aig: Aig, a: int, b: int) -> int:
    """``a OR b`` via De Morgan."""
    return edge_not(aig.and_(edge_not(a), edge_not(b)))


def xor(aig: Aig, a: int, b: int) -> int:
    """``a XOR b`` as two ANDs (the standard AIG decomposition)."""
    return or_(aig, aig.and_(a, edge_not(b)), aig.and_(edge_not(a), b))


def xnor(aig: Aig, a: int, b: int) -> int:
    return edge_not(xor(aig, a, b))


def ite(aig: Aig, cond: int, then_edge: int, else_edge: int) -> int:
    """If-then-else: ``cond ? then : else``."""
    return or_(
        aig,
        aig.and_(cond, then_edge),
        aig.and_(edge_not(cond), else_edge),
    )


def implies_edge(aig: Aig, a: int, b: int) -> int:
    """``a -> b``."""
    return edge_not(aig.and_(a, edge_not(b)))


def and_all(aig: Aig, edges: Iterable[int]) -> int:
    """Conjunction of many edges as a balanced tree (keeps levels low)."""
    work = list(edges)
    if not work:
        return TRUE
    while len(work) > 1:
        merged = []
        for i in range(0, len(work) - 1, 2):
            merged.append(aig.and_(work[i], work[i + 1]))
        if len(work) % 2:
            merged.append(work[-1])
        work = merged
    return work[0]


def or_all(aig: Aig, edges: Iterable[int]) -> int:
    """Disjunction of many edges as a balanced tree."""
    return edge_not(and_all(aig, [edge_not(e) for e in edges]))


def support(aig: Aig, edge: int) -> set[int]:
    """The set of input *nodes* the edge structurally depends on.

    Rides the levelized plan cache: repeated support queries for the
    same cone (netlist validation, solver-pool construction) skip the
    cone walk entirely.
    """
    from repro.aig.simulate import cone_plan

    return {node for _, node in cone_plan(aig, (edge,)).inputs}


def support_many(aig: Aig, edges: Sequence[int]) -> set[int]:
    from repro.aig.simulate import cone_plan

    return {node for _, node in cone_plan(aig, edges).inputs}


def cofactor(aig: Aig, edge: int, var_node: int, value: bool,
             cache: dict[int, int] | None = None) -> int:
    """Shannon cofactor: the function with input ``var_node`` fixed.

    This is the entry point of circuit-based quantification: Section 2 of
    the paper forms both cofactors and disjoins them.
    """
    if not aig.is_input(var_node):
        raise AigError(f"node {var_node} is not an input")
    return aig.rebuild(edge, {var_node: TRUE if value else FALSE}, cache)


def compose(aig: Aig, edge: int, substitution: Mapping[int, int],
            cache: dict[int, int] | None = None) -> int:
    """Substitute edges for input nodes (functional composition).

    Quantification by substitution ("in-lining") is
    ``exists x' . S(x') AND (x' == delta(s, i))  ==  S(delta(s, i))`` —
    one :func:`compose` call with the next-state functions.
    """
    for node in substitution:
        if not aig.is_input(node):
            raise AigError(f"substituted node {node} is not an input")
    return aig.rebuild(edge, dict(substitution), cache)


def transfer(
    src: Aig,
    edge: int,
    dst: Aig,
    leaf_map: Mapping[int, int],
    cache: dict[int, int] | None = None,
) -> int:
    """Copy the cone of ``edge`` from one manager into another.

    ``leaf_map`` maps every input node of the cone (src node ids) to a dst
    edge.  ``cache`` (src node -> dst edge) can be shared across calls so
    one compaction pass copies common logic once.  Used by netlist cloning
    and by the traversal engine's periodic compaction.
    """
    if cache is None:
        cache = {}
    cache.setdefault(0, FALSE)
    root = edge >> 1
    stack = [root]
    while stack:
        node = stack[-1]
        if node in cache:
            stack.pop()
            continue
        if src.is_input(node):
            if node not in leaf_map:
                raise AigError(f"input node {node} missing from leaf_map")
            cache[node] = leaf_map[node]
            stack.pop()
            continue
        f0, f1 = src.fanins(node)
        n0, n1 = f0 >> 1, f1 >> 1
        pending = False
        if n0 not in cache:
            stack.append(n0)
            pending = True
        if n1 not in cache:
            stack.append(n1)
            pending = True
        if pending:
            continue
        stack.pop()
        cache[node] = dst.and_(
            cache[n0] ^ (f0 & 1), cache[n1] ^ (f1 & 1)
        )
    return cache[root] ^ (edge & 1)


def equal_edges_syntactic(a: int, b: int) -> bool:
    """Structural equality of edges (same node, same polarity)."""
    return a == b


def constant_value(edge: int) -> bool | None:
    """``True``/``False`` for the constant edges, ``None`` otherwise."""
    if edge == TRUE:
        return True
    if edge == FALSE:
        return False
    return None
