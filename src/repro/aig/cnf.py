"""Tseitin encoding of AIG cones into CNF.

:class:`CnfMapper` keeps a persistent node-to-variable map over one solver
instance, so several cones (and several checks) share a clause database —
the exact workflow the paper built on top of ZChaff: "we load the clause
database once and for-all, and we factorize several checks together within
a single ZChaff run".
"""

from __future__ import annotations

from repro.aig.graph import FALSE, TRUE, Aig
from repro.errors import AigError
from repro.sat.cnf import CNF
from repro.sat.solver import Solver


class CnfMapper:
    """Incrementally encode AIG nodes as CNF variables in one solver.

    >>> aig = Aig()
    >>> a, b = aig.add_input(), aig.add_input()
    >>> f = aig.and_(a, b)
    >>> mapper = CnfMapper(aig, Solver())
    >>> lit = mapper.lit_for(f)
    >>> mapper.solver.solve([lit])         # is a AND b satisfiable?
    <SolveResult.SAT: 'sat'>
    """

    def __init__(self, aig: Aig, solver: Solver | None = None) -> None:
        self.aig = aig
        self.solver = solver if solver is not None else Solver()
        self._node_var: dict[int, int] = {}
        self._const_var: int | None = None

    def _var_for_const(self) -> int:
        if self._const_var is None:
            self._const_var = self.solver.new_var()
            self.solver.add_clause([-self._const_var])  # constant FALSE
        return self._const_var

    def var_for_node(self, node: int) -> int:
        """The solver variable carrying this node's value (encode if new)."""
        existing = self._node_var.get(node)
        if existing is not None:
            return existing
        if node == 0:
            return self._var_for_const()
        if self.aig.is_input(node):
            var = self.solver.new_var()
            self._node_var[node] = var
            return var
        # Encode the whole cone iteratively (recursion-free for deep AIGs).
        for cone_node in self.aig.cone([2 * node]):
            if cone_node in self._node_var:
                continue
            if self.aig.is_input(cone_node):
                self._node_var[cone_node] = self.solver.new_var()
                continue
            f0, f1 = self.aig.fanins(cone_node)
            a = self._edge_lit_encoded(f0)
            b = self._edge_lit_encoded(f1)
            out = self.solver.new_var()
            self._node_var[cone_node] = out
            # out <-> a AND b
            self.solver.add_clause([-out, a])
            self.solver.add_clause([-out, b])
            self.solver.add_clause([out, -a, -b])
        return self._node_var[node]

    def _edge_lit_encoded(self, edge: int) -> int:
        node = edge >> 1
        if node == 0:
            var = self._var_for_const()
        else:
            var = self._node_var[node]
        return -var if edge & 1 else var

    def lit_for(self, edge: int) -> int:
        """DIMACS literal equivalent to the edge (encoding its cone).

        The constant node is backed by a variable pinned to false, so the
        FALSE edge maps to that (unsatisfiable) literal and TRUE to its
        negation.
        """
        if edge == FALSE:
            return self._var_for_const()
        if edge == TRUE:
            return -self._var_for_const()
        var = self.var_for_node(edge >> 1)
        return -var if edge & 1 else var

    def input_literal(self, input_node: int) -> int:
        """The literal of a primary input (useful for model extraction)."""
        if not self.aig.is_input(input_node):
            raise AigError(f"node {input_node} is not an input")
        return self.var_for_node(input_node)

    def model_inputs(self) -> dict[int, bool]:
        """Read back input values from the solver's last model."""
        values: dict[int, bool] = {}
        for node, var in self._node_var.items():
            if self.aig.is_input(node) and var <= len(self.solver.model):
                values[node] = self.solver.value(var)
        return values


def edge_to_cnf(aig: Aig, edge: int) -> tuple[CNF, int, dict[int, int]]:
    """Standalone Tseitin encoding of one edge.

    Returns ``(cnf, root_literal, input_node_to_var)``.  Asserting
    ``root_literal`` makes the CNF equisatisfiable with the edge function.
    """
    cnf = CNF()
    node_var: dict[int, int] = {}
    const_var: int | None = None

    def const() -> int:
        nonlocal const_var
        if const_var is None:
            const_var = cnf.new_var()
            cnf.add_clause([-const_var])
        return const_var

    def lit_of(e: int) -> int:
        node = e >> 1
        var = const() if node == 0 else node_var[node]
        return -var if e & 1 else var

    for node in aig.cone([edge]):
        if aig.is_input(node):
            node_var[node] = cnf.new_var()
            continue
        f0, f1 = aig.fanins(node)
        a, b = lit_of(f0), lit_of(f1)
        out = cnf.new_var()
        node_var[node] = out
        cnf.add_clause([-out, a])
        cnf.add_clause([-out, b])
        cnf.add_clause([out, -a, -b])
    inputs = {node: var for node, var in node_var.items() if aig.is_input(node)}
    if edge == FALSE:
        return cnf, const(), inputs   # pinned-false literal: asserting it is UNSAT
    if edge == TRUE:
        return cnf, -const(), inputs
    return cnf, lit_of(edge), inputs
