"""K-feasible cut enumeration.

Cuts serve two consumers:

* BDD sweeping builds BDDs over cut frontiers when whole-cone BDDs exceed
  the node budget (Kuehlmann-Krohm "cuts and heaps" [4]);
* the rewriting pass of the optimization phase resynthesizes the function
  of small cuts from their truth tables.
"""

from __future__ import annotations

from typing import Sequence

from repro.aig.graph import Aig

Cut = frozenset[int]


def enumerate_cuts(
    aig: Aig,
    roots: Sequence[int],
    k: int = 4,
    max_cuts_per_node: int = 8,
) -> dict[int, list[Cut]]:
    """Enumerate up to ``max_cuts_per_node`` k-feasible cuts per node.

    Returns a map from each node in the cones of ``roots`` to its cut list.
    Every node's trivial cut ``{node}`` is included.  Leaves (inputs) only
    get the trivial cut.
    """
    cuts: dict[int, list[Cut]] = {0: [frozenset()]}
    for node in aig.cone(list(roots)):
        trivial = frozenset((node,))
        if aig.is_input(node):
            cuts[node] = [trivial]
            continue
        f0, f1 = aig.fanins(node)
        left = cuts.get(f0 >> 1, [frozenset((f0 >> 1,))])
        right = cuts.get(f1 >> 1, [frozenset((f1 >> 1,))])
        merged: list[Cut] = [trivial]
        seen: set[Cut] = {trivial}
        for cut_a in left:
            for cut_b in right:
                union = cut_a | cut_b
                if len(union) > k or union in seen:
                    continue
                # Drop dominated cuts (supersets of an existing cut).
                if any(existing <= union for existing in merged):
                    continue
                merged = [c for c in merged if not union <= c]
                merged.append(union)
                seen.add(union)
                if len(merged) >= max_cuts_per_node:
                    break
            if len(merged) >= max_cuts_per_node:
                break
        cuts[node] = merged
    return cuts


def cut_cone(aig: Aig, node: int, cut: Cut) -> list[int]:
    """Nodes strictly between ``cut`` leaves and ``node`` (inclusive of node).

    Topologically ordered; empty if ``node`` is itself a leaf of the cut.
    """
    if node in cut:
        return []
    order: list[int] = []
    seen: set[int] = set(cut)
    stack: list[tuple[int, bool]] = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if expanded:
            order.append(current)
            continue
        if current in seen or current == 0:
            continue
        seen.add(current)
        stack.append((current, True))
        if aig.is_and(current):
            f0, f1 = aig.fanins(current)
            stack.append((f0 >> 1, False))
            stack.append((f1 >> 1, False))
    return order


def cut_truth_table(aig: Aig, node: int, cut: Cut) -> tuple[int, list[int]]:
    """Truth table of ``node`` over the (ordered) cut leaves.

    Returns ``(mask, leaf_order)`` with bit ``i`` of ``mask`` giving the
    node value when leaf ``k`` takes bit ``k`` of ``i``.
    """
    leaves = sorted(cut)
    n = len(leaves)
    rows = 1 << n
    values: dict[int, int] = {0: 0}
    for position, leaf in enumerate(leaves):
        pattern = 0
        for row in range(rows):
            if (row >> position) & 1:
                pattern |= 1 << row
        values[leaf] = pattern
    full = (1 << rows) - 1
    for inner in cut_cone(aig, node, cut):
        f0, f1 = aig.fanins(inner)
        v0 = values[f0 >> 1]
        if f0 & 1:
            v0 ^= full
        v1 = values[f1 >> 1]
        if f1 & 1:
            v1 ^= full
        values[inner] = v0 & v1
    return values[node] & full, leaves
