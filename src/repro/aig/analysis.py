"""Structural analysis helpers: cone sizes, levels, sharing statistics.

The experiments report circuit sizes before and after quantification;
every size number in EXPERIMENTS.md comes from these functions.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.aig.graph import Aig


def cone_nodes(aig: Aig, edge: int) -> list[int]:
    """Topologically ordered nodes in the transitive fanin of an edge."""
    return aig.cone([edge])


def cone_size(aig: Aig, edge: int) -> int:
    """Number of AND nodes in the cone of an edge (the paper's size metric)."""
    return sum(1 for node in aig.cone([edge]) if aig.is_and(node))


def cone_size_many(aig: Aig, edges: Sequence[int]) -> int:
    """AND nodes in the union of the cones (counts shared logic once)."""
    return sum(1 for node in aig.cone(edges) if aig.is_and(node))


def level_of(aig: Aig, edge: int) -> int:
    """Logic depth of an edge."""
    return aig.level(edge >> 1)


def shared_nodes(aig: Aig, a: int, b: int) -> int:
    """AND nodes common to the cones of two edges.

    The merge phase exists to push this number up: "merge together as many
    internal nodes of f0 and f1 as possible".
    """
    cone_a = {n for n in aig.cone([a]) if aig.is_and(n)}
    cone_b = {n for n in aig.cone([b]) if aig.is_and(n)}
    return len(cone_a & cone_b)


def sharing_ratio(aig: Aig, a: int, b: int) -> float:
    """Fraction of the union of the two cones that is shared."""
    cone_a = {n for n in aig.cone([a]) if aig.is_and(n)}
    cone_b = {n for n in aig.cone([b]) if aig.is_and(n)}
    union = cone_a | cone_b
    if not union:
        return 1.0
    return len(cone_a & cone_b) / len(union)


def fanout_counts(aig: Aig, roots: Iterable[int]) -> dict[int, int]:
    """Fanout count of every node within the cones of ``roots``."""
    counts: dict[int, int] = {}
    for node in aig.cone(list(roots)):
        if not aig.is_and(node):
            continue
        for fanin in aig.fanins(node):
            child = fanin >> 1
            counts[child] = counts.get(child, 0) + 1
    return counts


def structural_stats(aig: Aig, edge: int) -> dict[str, int]:
    """Compact summary used in logs and benchmark tables."""
    nodes = aig.cone([edge])
    ands = [n for n in nodes if aig.is_and(n)]
    inputs = [n for n in nodes if aig.is_input(n)]
    return {
        "ands": len(ands),
        "inputs": len(inputs),
        "level": level_of(aig, edge),
    }
