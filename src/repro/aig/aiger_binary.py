"""Binary AIGER (``aig``) format: reader and writer.

The binary format is the interchange format AIG-based tools actually
exchange (ABC, aigtools, hardware model-checking competitions).  Compared
to ASCII ``aag``:

* inputs are implicit — literals ``2..2*I`` in order;
* AND gates are implicit too — gate ``i`` defines literal
  ``2*(I+i+1)``, and only the two fanin *deltas* are stored, each as a
  LEB128-style variable-length unsigned integer:
  ``delta0 = lhs - rhs0`` and ``delta1 = rhs0 - rhs1`` with the AIGER
  ordering invariant ``lhs > rhs0 >= rhs1``.

Only the combinational subset is handled here (like :mod:`repro.aig.io`);
sequential designs go through the netlist-layer formats.
"""

from __future__ import annotations

import io as _io
from typing import BinaryIO, Sequence

from repro.aig.graph import Aig
from repro.errors import AigError


def _encode_delta(value: int, out: BinaryIO) -> None:
    """LEB128 variable-length encoding used by binary AIGER."""
    while value >= 0x80:
        out.write(bytes([(value & 0x7F) | 0x80]))
        value >>= 7
    out.write(bytes([value]))


def _decode_delta(data: bytes, cursor: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if cursor >= len(data):
            raise AigError("truncated binary AIGER delta")
        byte = data[cursor]
        cursor += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, cursor
        shift += 7


def write_aig_binary(
    aig: Aig, outputs: Sequence[int], out: BinaryIO
) -> None:
    """Write the cones of ``outputs`` in binary AIGER format.

    The cone is compacted and renumbered so that every AND literal is
    larger than both fanins (guaranteed by the manager's topological
    creation order).
    """
    compact, new_outputs, _ = aig.extract(outputs, keep_all_inputs=True)
    num_inputs = compact.num_inputs
    num_ands = compact.num_ands
    max_index = num_inputs + num_ands
    # Renumber: input k -> literal 2(k+1); AND j -> literal 2(I+j+1).
    literal_of: dict[int, int] = {0: 0}
    for position, node in enumerate(compact.inputs):
        literal_of[node] = 2 * (position + 1)
    next_literal = 2 * (num_inputs + 1)
    and_rows: list[tuple[int, int, int]] = []
    for node in compact.and_nodes():
        f0, f1 = compact.fanins(node)
        lhs = next_literal
        literal_of[node] = lhs
        next_literal += 2
        rhs = sorted(
            (
                literal_of[f0 >> 1] ^ (f0 & 1),
                literal_of[f1 >> 1] ^ (f1 & 1),
            ),
            reverse=True,
        )
        if rhs[0] >= lhs:
            raise AigError("AND fanin literal not smaller than gate literal")
        and_rows.append((lhs, rhs[0], rhs[1]))
    header = f"aig {max_index} {num_inputs} 0 {len(new_outputs)} {num_ands}\n"
    out.write(header.encode("ascii"))
    for edge in new_outputs:
        literal = literal_of[edge >> 1] ^ (edge & 1)
        out.write(f"{literal}\n".encode("ascii"))
    for lhs, rhs0, rhs1 in and_rows:
        _encode_delta(lhs - rhs0, out)
        _encode_delta(rhs0 - rhs1, out)
    # Symbol table for named inputs, then end-of-file comment marker.
    symbols = []
    for position, node in enumerate(compact.inputs):
        name = compact.name_of(node)
        if name is not None:
            symbols.append(f"i{position} {name}\n")
    if symbols:
        out.write("".join(symbols).encode("utf-8"))


def write_aig_binary_bytes(aig: Aig, outputs: Sequence[int]) -> bytes:
    buffer = _io.BytesIO()
    write_aig_binary(aig, outputs, buffer)
    return buffer.getvalue()


def read_aig_binary(data: bytes | BinaryIO) -> tuple[Aig, list[int]]:
    """Parse binary AIGER; returns ``(aig, output_edges)``."""
    if not isinstance(data, bytes):
        data = data.read()
    newline = data.find(b"\n")
    if newline < 0:
        raise AigError("missing binary AIGER header")
    header = data[:newline].decode("ascii", errors="replace").split()
    if len(header) != 6 or header[0] != "aig":
        raise AigError(f"malformed binary AIGER header: {header!r}")
    max_index, num_inputs, num_latches, num_outputs, num_ands = (
        int(token) for token in header[1:]
    )
    if num_latches:
        raise AigError("latches are handled at the netlist layer, not here")
    if max_index != num_inputs + num_ands:
        raise AigError("inconsistent binary AIGER header counts")
    cursor = newline + 1
    output_literals: list[int] = []
    for _ in range(num_outputs):
        newline = data.find(b"\n", cursor)
        if newline < 0:
            raise AigError("truncated output section")
        output_literals.append(int(data[cursor:newline]))
        cursor = newline + 1
    aig = Aig()
    edge_of: dict[int, int] = {0: 0}
    for position in range(num_inputs):
        edge_of[2 * (position + 1)] = aig.add_input()

    def resolve(literal: int) -> int:
        base = edge_of.get(literal & ~1)
        if base is None:
            raise AigError(f"literal {literal} used before definition")
        return base ^ (literal & 1)

    lhs = 2 * num_inputs
    for _ in range(num_ands):
        lhs += 2
        delta0, cursor = _decode_delta(data, cursor)
        delta1, cursor = _decode_delta(data, cursor)
        rhs0 = lhs - delta0
        rhs1 = rhs0 - delta1
        if rhs0 < 0 or rhs1 < 0:
            raise AigError("negative literal in binary AIGER deltas")
        edge_of[lhs] = aig.and_(resolve(rhs0), resolve(rhs1))
    # Optional symbol table (input names only).
    input_nodes = aig.inputs
    remainder = data[cursor:].decode("utf-8", errors="replace")
    for line in remainder.splitlines():
        if line.startswith("c"):
            break
        if line.startswith("i"):
            parts = line.split(None, 1)
            position = int(parts[0][1:])
            if len(parts) == 2 and 0 <= position < len(input_nodes):
                aig._input_names[input_nodes[position]] = parts[1].strip()
    return aig, [resolve(literal) for literal in output_literals]
