"""AIG serialization: ASCII AIGER (``aag``) and Graphviz DOT.

Only the combinational subset of AIGER is handled here; sequential circuits
(latches) are serialized by :mod:`repro.circuits.parse` on top of this.
"""

from __future__ import annotations

import io as _io
from typing import Sequence, TextIO

from repro.aig.graph import Aig
from repro.errors import AigError


def write_aag(
    aig: Aig, outputs: Sequence[int], out: TextIO, comments: str | None = None
) -> None:
    """Write the cones of ``outputs`` in ASCII AIGER format.

    Nodes are renumbered compactly; inputs keep their relative order.
    """
    compact, new_outputs, _ = aig.extract(outputs, keep_all_inputs=True)
    num_inputs = compact.num_inputs
    num_ands = compact.num_ands
    max_index = num_inputs + num_ands
    out.write(f"aag {max_index} {num_inputs} 0 {len(new_outputs)} {num_ands}\n")
    for node in compact.inputs:
        out.write(f"{2 * node}\n")
    for edge in new_outputs:
        out.write(f"{edge}\n")
    for node in compact.and_nodes():
        f0, f1 = compact.fanins(node)
        out.write(f"{2 * node} {max(f0, f1)} {min(f0, f1)}\n")
    for position, node in enumerate(compact.inputs):
        name = compact.name_of(node)
        if name is not None:
            out.write(f"i{position} {name}\n")
    if comments:
        out.write("c\n")
        out.write(comments)
        if not comments.endswith("\n"):
            out.write("\n")


def write_aag_string(aig: Aig, outputs: Sequence[int]) -> str:
    buf = _io.StringIO()
    write_aag(aig, outputs, buf)
    return buf.getvalue()


def read_aag(text: str | TextIO) -> tuple[Aig, list[int]]:
    """Parse ASCII AIGER; returns ``(aig, output_edges)``.

    Latch declarations are rejected — sequential AIGER is handled at the
    netlist layer.
    """
    if not isinstance(text, str):
        text = text.read()
    lines = text.splitlines()
    if not lines:
        raise AigError("empty AIGER input")
    header = lines[0].split()
    if len(header) != 6 or header[0] != "aag":
        raise AigError(f"malformed AIGER header: {lines[0]!r}")
    _, max_index, num_inputs, num_latches, num_outputs, num_ands = header
    max_index = int(max_index)
    num_inputs, num_latches = int(num_inputs), int(num_latches)
    num_outputs, num_ands = int(num_outputs), int(num_ands)
    if num_latches:
        raise AigError("latches are handled by repro.circuits.parse, not here")
    aig = Aig()
    cursor = 1
    # old AIGER literal -> new edge
    edge_map: dict[int, int] = {0: 0, 1: 1}

    def map_edge(old: int) -> int:
        base = edge_map.get(old & ~1)
        if base is None:
            raise AigError(f"AIGER literal {old} used before definition")
        return base ^ (old & 1)

    for _ in range(num_inputs):
        literal = int(lines[cursor].split()[0])
        cursor += 1
        edge_map[literal] = aig.add_input()
    output_literals = []
    for _ in range(num_outputs):
        output_literals.append(int(lines[cursor].split()[0]))
        cursor += 1
    pending = []
    for _ in range(num_ands):
        parts = lines[cursor].split()
        cursor += 1
        if len(parts) != 3:
            raise AigError(f"malformed AND line: {lines[cursor - 1]!r}")
        pending.append((int(parts[0]), int(parts[1]), int(parts[2])))
    # AND definitions may reference later ANDs only in binary AIGER; in aag
    # they are topologically ordered, so one pass suffices.
    for literal, rhs0, rhs1 in pending:
        if literal & 1:
            raise AigError("AND node literal must be even")
        edge_map[literal] = aig.and_(map_edge(rhs0), map_edge(rhs1))
    # Symbol table: rename inputs.
    input_nodes = aig.inputs
    while cursor < len(lines):
        line = lines[cursor]
        cursor += 1
        if line.startswith("c"):
            break
        if line.startswith("i"):
            name_part = line.split(None, 1)
            position = int(name_part[0][1:])
            if len(name_part) == 2 and 0 <= position < len(input_nodes):
                aig._input_names[input_nodes[position]] = name_part[1].strip()
    outputs = [map_edge(lit) for lit in output_literals]
    return aig, outputs


def to_dot(aig: Aig, outputs: Sequence[int]) -> str:
    """Graphviz rendering of the cones of ``outputs`` (debugging aid)."""
    lines = ["digraph aig {", "  rankdir=BT;"]
    for node in aig.cone(outputs):
        if aig.is_input(node):
            lines.append(
                f'  n{node} [shape=box,label="{aig.input_name(node)}"];'
            )
        else:
            lines.append(f'  n{node} [shape=circle,label="AND"];')
            for fanin in aig.fanins(node):
                style = " [style=dashed]" if fanin & 1 else ""
                lines.append(f"  n{fanin >> 1} -> n{node}{style};")
    for index, edge in enumerate(outputs):
        style = " [style=dashed]" if edge & 1 else ""
        lines.append(f'  out{index} [shape=plaintext,label="o{index}"];')
        lines.append(f"  n{edge >> 1} -> out{index}{style};")
    lines.append("}")
    return "\n".join(lines)
