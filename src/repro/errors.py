"""Exception hierarchy for the repro library.

Every package raises subclasses of :class:`ReproError` so that callers can
catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SatError(ReproError):
    """Raised for malformed CNF input or misuse of a SAT solver."""


class AigError(ReproError):
    """Raised for invalid AIG construction or manipulation."""


class BddError(ReproError):
    """Raised for invalid BDD operations."""


class BddLimitExceeded(BddError):
    """Raised when a BDD operation exceeds its configured node budget.

    BDD sweeping uses this to abandon a node and insert a cut point instead
    of letting the canonical representation blow up.
    """


class NetlistError(ReproError):
    """Raised for ill-formed sequential netlists."""


class QuantificationAborted(ReproError):
    """Raised when partial quantification aborts a too-expensive variable.

    Section 4 of the paper: "it accepts effective quantification and aborts
    the expensive ones (in term of size)".  Callers that combine circuit
    quantification with SAT-based methods catch this and leave the variable
    to the downstream engine.
    """

    def __init__(self, variable: int, size_before: int, size_after: int) -> None:
        super().__init__(
            f"quantification of variable {variable} aborted: "
            f"size {size_before} -> {size_after} exceeds threshold"
        )
        self.variable = variable
        self.size_before = size_before
        self.size_after = size_after


class ProofError(ReproError):
    """Raised when a resolution proof is malformed or fails replay.

    The interpolation pipeline treats the independent proof checker as its
    trust anchor: a chain that does not replay, a missing antecedent, or an
    interpolant that fails the differential check all surface as this error
    rather than as a wrong verdict.
    """


class CertificateError(ReproError):
    """Raised when an inductive-invariant certificate fails its check.

    A PROVED verdict from the PDR engine ships an
    :class:`repro.mc.result.InvariantCertificate`; the independent
    checker re-derives initiation, consecution and safety on a fresh
    solver.  A certificate that fails any of the three is an engine bug
    surfaced as this error, never as a wrong verdict.
    """


class ModelCheckingError(ReproError):
    """Raised when a model-checking engine is configured inconsistently."""


class ServiceError(ReproError):
    """Raised for verification-service failures (:mod:`repro.svc`):
    a store whose schema is newer than the code, a malformed submission,
    or a job operation against the wrong state."""


class QueueFullError(ServiceError):
    """Raised when a submission is rejected for backpressure.

    The durable queue bounds its depth; past the bound, ``submit``
    raises this instead of growing without limit.  ``retry_after`` is
    the server's hint (seconds) for when to try again — the HTTP front
    maps it to a 429 response with the same field.
    """

    def __init__(self, depth: int, bound: int, retry_after: float) -> None:
        super().__init__(
            f"queue is full ({depth} queued >= bound {bound}); "
            f"retry in {retry_after:.1f}s"
        )
        self.depth = depth
        self.bound = bound
        self.retry_after = retry_after


class ResourceLimit(ReproError):
    """Raised when an engine exceeds a user-supplied resource budget."""
