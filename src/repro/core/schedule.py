"""Variable-ordering heuristics for multi-variable quantification.

``exists {x1..xk} . f`` is computed one variable at a time, and the order
matters enormously: a variable whose cofactors are nearly identical is
almost free (the merge phase collapses them), while a deeply entangled
variable can double the circuit.  The paper's "partial quantification"
aborts the expensive ones; these schedulers try to not meet them early in
the first place.

Heuristics (all return the *next* variable to quantify):

* ``static``         — caller-given order, no analysis;
* ``min_dependence`` — fewest AND nodes structurally depending on the
  variable (the default greedy schedule; cheap, one cone walk);
* ``min_level``      — shallowest variable first (its cofactors share the
  most top logic);
* ``cofactor_probe`` — simulate both cofactors on random patterns and pick
  the variable whose cofactors agree most often (highest expected merge
  yield, the most faithful to the paper's "similar cofactors" notion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.aig.graph import Aig
from repro.aig.simulate import simulate
from repro.errors import AigError

Scheduler = Callable[[Aig, int, Sequence[int]], int]


def schedule_static(
    aig: Aig, edge: int, candidates: Sequence[int]
) -> int:
    """Caller order: always the first remaining variable."""
    return candidates[0]


def schedule_min_dependence(
    aig: Aig, edge: int, candidates: Sequence[int]
) -> int:
    """The variable with the fewest structurally dependent AND nodes."""
    return min(
        candidates, key=lambda var: dependence_cost(aig, edge, var)
    )


def schedule_min_level(
    aig: Aig, edge: int, candidates: Sequence[int]
) -> int:
    """The variable whose deepest dependent node is shallowest.

    A variable only feeding shallow logic perturbs a small top slice of
    the cone; its two cofactors share everything below.
    """
    def max_dependent_level(var: int) -> int:
        dependent: set[int] = {var}
        deepest = 0
        for node in aig.cone([edge]):
            if not aig.is_and(node):
                continue
            f0, f1 = aig.fanins(node)
            if (f0 >> 1) in dependent or (f1 >> 1) in dependent:
                dependent.add(node)
                deepest = max(deepest, aig.level(node))
        return deepest

    return min(candidates, key=max_dependent_level)


def schedule_cofactor_probe(
    aig: Aig,
    edge: int,
    candidates: Sequence[int],
    words: int = 2,
    seed: int = 2005,
) -> int:
    """The variable whose cofactors agree on the most random patterns.

    High agreement predicts a high merge yield — the paper's "high merge
    probability (similar cofactors)" case, where quantification is cheap.
    Ties break towards lower dependence cost.
    """
    rng = np.random.default_rng(seed)
    input_nodes = [n for n in aig.cone([edge]) if aig.is_input(n)]
    vectors = {
        node: rng.integers(0, 2**64, size=words, dtype=np.uint64)
        for node in input_nodes
    }
    all_ones = np.full(words, ~np.uint64(0), dtype=np.uint64)
    zeros = np.zeros(words, dtype=np.uint64)

    def disagreement(var: int) -> tuple[int, int]:
        low = dict(vectors)
        low[var] = zeros
        high = dict(vectors)
        high[var] = all_ones
        value_low = simulate(aig, low, [edge])[edge]
        value_high = simulate(aig, high, [edge])[edge]
        differing = int(
            sum(int(w).bit_count() for w in (value_low ^ value_high))
        )
        return differing, dependence_cost(aig, edge, var)

    return min(candidates, key=disagreement)


_SCHEDULERS: dict[str, Scheduler] = {
    "static": schedule_static,
    "min_dependence": schedule_min_dependence,
    "min_level": schedule_min_level,
    "cofactor_probe": schedule_cofactor_probe,
}


def get_scheduler(name: str) -> Scheduler:
    """Look up a scheduling heuristic by name."""
    try:
        return _SCHEDULERS[name]
    except KeyError:
        raise AigError(
            f"unknown quantification schedule {name!r}; "
            f"choose from {sorted(_SCHEDULERS)}"
        ) from None


def scheduler_names() -> list[str]:
    """All registered schedule names (benchmark sweeps iterate these)."""
    return sorted(_SCHEDULERS)


def schedule_variable_order(
    aig: Aig,
    edge: int,
    variables: Sequence[int],
    schedule: str = "min_dependence",
) -> list[int]:
    """A complete quantification order by repeated scheduler application.

    This is the *static* form of the per-step scheduling that
    :func:`repro.core.quantify.quantify_exists` performs dynamically: the
    chosen heuristic is applied to the fixed ``edge`` until every variable
    is placed.  Image pipelines use it to decide the conjunction order and
    early-quantification points of a partitioned transition relation —
    both the AIG and the BDD engines speak this one vocabulary.
    """
    scheduler = get_scheduler(schedule)
    remaining = list(dict.fromkeys(variables))
    order: list[int] = []
    while remaining:
        var = scheduler(aig, edge, remaining)
        remaining.remove(var)
        order.append(var)
    return order


@dataclass(frozen=True)
class ImageStep:
    """One step of a partitioned image computation.

    ``conjoin`` lists partition indices to AND into the running product;
    ``quantify`` lists the variables that become quantifiable right after
    (no remaining partition depends on them).
    """

    conjoin: tuple[int, ...]
    quantify: tuple[int, ...]


def plan_partitioned_quantification(
    var_order: Sequence[int],
    supports: Sequence[Iterable[int]],
) -> list[ImageStep]:
    """Schedule a partitioned relational product with early quantification.

    Given the quantification order of the variables and the support of
    each partition (transition-relation cluster), produce the IWLS95-style
    plan: walk the variables in order, conjoin the not-yet-conjoined
    partitions that depend on the current variable, then quantify every
    variable no remaining partition mentions.  Partitions whose support
    contains no scheduled variable are conjoined in a final step.

    The plan is representation-agnostic — the AIG image computer executes
    it with circuit conjunction + circuit quantification, the BDD engine
    with ``and_exists`` — which is what lets both paths share the
    scheduling heuristics of this module.
    """
    support_sets = [frozenset(s) for s in supports]
    remaining = set(range(len(support_sets)))
    quantified: set[int] = set()
    steps: list[ImageStep] = []
    for var in var_order:
        if var in quantified:
            continue
        conjoin = sorted(c for c in remaining if var in support_sets[c])
        remaining.difference_update(conjoin)
        pending: set[int] = set()
        for c in remaining:
            pending |= support_sets[c]
        free = tuple(
            v for v in var_order if v not in quantified and v not in pending
        )
        quantified.update(free)
        steps.append(ImageStep(tuple(conjoin), free))
    if remaining:
        steps.append(ImageStep(tuple(sorted(remaining)), ()))
    return steps


def dependence_cost(aig: Aig, edge: int, var_node: int) -> int:
    """How many AND nodes of the cone structurally depend on the variable."""
    dependent: set[int] = {var_node}
    count = 0
    for node in aig.cone([edge]):
        if not aig.is_and(node):
            continue
        f0, f1 = aig.fanins(node)
        if (f0 >> 1) in dependent or (f1 >> 1) in dependent:
            dependent.add(node)
            count += 1
    return count
