"""Partial quantification (Section 4).

"Our methodology adopts partial quantification, i.e., it accepts effective
quantification and aborts the expensive ones (in terms of size)."

Each variable is quantified tentatively; if the result grew beyond
``growth_factor`` times the input (or above ``absolute_limit``), the
variable is *aborted* — the original function is kept and the variable is
reported as residual.  Downstream engines (all-solutions SAT pre-image,
BMC, induction) then treat only the residual variables as decision
variables, which is exactly how the paper combines circuit quantification
with SAT-based methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.aig.analysis import cone_size
from repro.aig.graph import Aig
from repro.aig.ops import support
from repro.core.quantify import QuantifyOptions, quantify_exists_one
from repro.sweep.satsweep import SatSweeper
from repro.util.stats import StatsBag


@dataclass
class PartialOutcome:
    """Result of a partial quantification pass."""

    edge: int
    quantified: list[int]
    aborted: list[int]
    stats: StatsBag = field(default_factory=StatsBag)

    @property
    def residual_variables(self) -> list[int]:
        """Variables the caller still has to handle (aborted ones)."""
        return list(self.aborted)


class PartialQuantifier:
    """Quantifier with a size-growth abort rule.

    >>> # exists-quantify what is cheap, report the rest
    >>> # (see examples/partial_quantification.py for a full walkthrough)
    """

    def __init__(
        self,
        aig: Aig,
        options: QuantifyOptions | None = None,
        growth_factor: float = 1.5,
        absolute_limit: int | None = None,
        sweeper: SatSweeper | None = None,
    ) -> None:
        if growth_factor <= 0:
            raise ValueError("growth_factor must be positive")
        self.aig = aig
        self.options = options if options is not None else QuantifyOptions()
        self.growth_factor = growth_factor
        self.absolute_limit = absolute_limit
        self.sweeper = sweeper

    def quantify(self, edge: int, variables: Iterable[int]) -> PartialOutcome:
        """Quantify every variable whose result stays within budget."""
        aig = self.aig
        stats = StatsBag()
        if self.sweeper is None and (
            self.options.use_merge or self.options.use_optimize
        ):
            self.sweeper = SatSweeper(aig)
        current = edge
        quantified: list[int] = []
        aborted: list[int] = []
        # Cheapest-dependence first, like the full quantifier.
        remaining = [v for v in dict.fromkeys(variables)]
        while remaining:
            present = support(aig, current)
            still_present = [v for v in remaining if v in present]
            for gone in remaining:
                if gone not in present and gone not in quantified:
                    quantified.append(gone)  # free: out of support
            remaining = still_present
            if not remaining:
                break
            var = remaining.pop(0)
            size_before = cone_size(aig, current)
            candidate = quantify_exists_one(
                aig,
                current,
                var,
                self.options,
                sweeper=self.sweeper,
                stats=stats,
            )
            size_after = cone_size(aig, candidate)
            limit = self.growth_factor * max(size_before, 1)
            if self.absolute_limit is not None:
                limit = min(limit, self.absolute_limit)
            if size_after <= limit:
                current = candidate
                quantified.append(var)
                stats.incr("accepted")
            else:
                aborted.append(var)
                stats.incr("aborted")
                stats.incr("aborted_growth", size_after - size_before)
        stats.set("final_size", cone_size(aig, current))
        return PartialOutcome(
            edge=current, quantified=quantified, aborted=aborted, stats=stats
        )
