"""The synthesis-based optimization phase (Section 2.2).

After merging, ``f0 OR f1`` can still shrink: we transform each cofactor
using the *other* cofactor's onset as an input don't-care set — the
"category 1" optimizations the paper says it dedicates most effort to —
then optionally run truth-table rewriting on the final disjunction
("category 2").

The algorithm per direction (simplify f1 under f0's onset):

1. simulate the cones and derive candidate transformations per node
   (constants and merges modulo complement) valid on all simulated *care*
   patterns;
2. validate candidates with the input-DC SAT check; validated input-DC
   replacements compose, so they are applied in one batch rebuild;
3. optionally retry failed candidates under the observability-DC rule
   (full output equivalence check); these do not compose and are applied
   one at a time;
4. keep the transformed cofactor only if it did not grow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aig.analysis import cone_size_many
from repro.aig.graph import Aig, edge_not
from repro.aig.ops import or_
from repro.aig.rewrite import rewrite_root
from repro.core.dontcare import DontCareOracle, care_set_candidates
from repro.sweep.satsweep import SatSweeper
from repro.util.stats import StatsBag


@dataclass
class OptimizeOptions:
    """Knobs of the optimization phase."""

    use_input_dc: bool = True
    use_odc: bool = False          # observability checks are expensive
    use_rewrite: bool = False
    sim_words: int = 4
    sim_seed: int = 2005
    max_merge_candidates: int = 4
    max_input_dc_checks: int = 200
    max_odc_checks: int = 30


def _simplify_against(
    aig: Aig,
    reference: int,
    target: int,
    oracle: DontCareOracle,
    options: OptimizeOptions,
    stats: StatsBag,
) -> int:
    """Simplify ``target`` using the onset of ``reference`` as DC set."""
    rng = np.random.default_rng(options.sim_seed)
    cone_inputs = [
        node for node in aig.cone([reference, target]) if aig.is_input(node)
    ]
    input_vectors = {
        node: rng.integers(0, 2**64, size=options.sim_words, dtype=np.uint64)
        for node in cone_inputs
    }
    candidates = care_set_candidates(
        aig,
        reference,
        target,
        input_vectors,
        max_merge_candidates=options.max_merge_candidates,
    )
    care_edge = edge_not(reference)
    replacements: dict[int, int] = {}
    odc_retry: list[tuple[int, int]] = []
    checks = 0
    for node in aig.cone([target]):
        if node not in candidates or not aig.is_and(node):
            continue
        for candidate in candidates[node]:
            if checks >= options.max_input_dc_checks:
                break
            checks += 1
            verdict = oracle.valid_under_input_dc(
                care_edge, 2 * node, candidate
            )
            if verdict:
                replacements[node] = candidate
                stats.incr("input_dc_replacements")
                break
            if verdict is False and options.use_odc:
                odc_retry.append((node, candidate))
    simplified = target
    if replacements:
        simplified = aig.rebuild(target, replacements)
    if options.use_odc:
        odc_checks = 0
        for node, candidate in odc_retry:
            if odc_checks >= options.max_odc_checks:
                break
            # The node may have disappeared from the rebuilt cone.
            if node not in set(aig.cone([simplified])):
                continue
            odc_checks += 1
            transformed = aig.rebuild(simplified, {node: candidate})
            verdict = oracle.valid_under_odc(reference, simplified, transformed)
            if verdict:
                simplified = transformed
                stats.incr("odc_replacements")
    return simplified


def optimize_disjunction(
    aig: Aig,
    f0: int,
    f1: int,
    sweeper: SatSweeper | None = None,
    options: OptimizeOptions | None = None,
) -> tuple[int, StatsBag]:
    """Optimize ``f0 OR f1`` by mutual cofactor simplification.

    Returns ``(result_edge, stats)``.  The result is guaranteed no larger
    than the plain disjunction (a growing transform is discarded).
    """
    if options is None:
        options = OptimizeOptions()
    if sweeper is None:
        sweeper = SatSweeper(aig)
    stats = StatsBag()
    oracle = DontCareOracle(aig, sweeper)
    baseline = or_(aig, f0, f1)
    baseline_size = cone_size_many(aig, [baseline])
    best = baseline
    best_size = baseline_size
    if options.use_input_dc or options.use_odc:
        f1_simplified = _simplify_against(
            aig, f0, f1, oracle, options, stats
        )
        f0_simplified = _simplify_against(
            aig, f1_simplified, f0, oracle, options, stats
        )
        candidate = or_(aig, f0_simplified, f1_simplified)
        candidate_size = cone_size_many(aig, [candidate])
        if candidate_size <= best_size:
            best, best_size = candidate, candidate_size
        else:
            stats.incr("growth_discarded")
    if options.use_rewrite:
        rewritten = rewrite_root(aig, best)
        rewritten_size = cone_size_many(aig, [rewritten])
        if rewritten_size < best_size:
            stats.set("rewrite_gain", best_size - rewritten_size)
            best, best_size = rewritten, rewritten_size
    stats.merge(oracle.stats)
    stats.set("size_before", baseline_size)
    stats.set("size_after", best_size)
    return best, stats
