"""Existential quantification over circuit-based state sets (Section 2).

``exists x . f`` is computed as ``f|x=0 OR f|x=1``.  Unmitigated, each
variable can double the circuit, so the engine interleaves

* the **merge phase** — structural hashing, optional BDD sweeping,
  SAT-based checks in forward or backward order (:mod:`repro.core.merge`);
* the **optimization phase** — cofactor-vs-cofactor don't-care
  simplification and optional rewriting (:mod:`repro.core.optimize`).

``QuantifyOptions.preset`` builds the ablation ladder the benchmarks sweep:
``"shannon"`` (nothing but hashing-free expansion), ``"hash"``, ``"bdd"``,
``"sat"`` and ``"full"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.aig.analysis import cone_size
from repro.aig.graph import Aig
from repro.aig.ops import cofactor, or_, support
from repro.core.merge import MergeOptions, merge_cofactors
from repro.core.optimize import OptimizeOptions, optimize_disjunction
from repro.core.schedule import get_scheduler
from repro.errors import AigError
from repro.sweep.satsweep import SatSweeper
from repro.util.stats import StatsBag


@dataclass
class QuantifyOptions:
    """Configuration of one quantification run."""

    merge: MergeOptions = field(default_factory=MergeOptions)
    optimize: OptimizeOptions = field(default_factory=OptimizeOptions)
    use_merge: bool = True
    use_optimize: bool = True
    # Variable-ordering heuristic; see repro.core.schedule for choices.
    schedule: str = "min_dependence"

    @classmethod
    def preset(cls, name: str) -> "QuantifyOptions":
        """The ablation ladder used throughout the experiments.

        - ``shannon``: bare Shannon expansion (cofactors still share the
          manager, so constant folding applies, but no merging effort);
        - ``hash``: structural-hash merging only;
        - ``bdd``: hash + BDD sweeping;
        - ``sat``: hash + SAT merging;
        - ``full``: hash + BDD + SAT merging + don't-care optimization.
        """
        if name == "shannon":
            return cls(use_merge=False, use_optimize=False)
        if name == "hash":
            return cls(
                merge=MergeOptions(use_bdd_sweep=False, use_sat_merge=False),
                use_optimize=False,
            )
        if name == "bdd":
            return cls(
                merge=MergeOptions(use_bdd_sweep=True, use_sat_merge=False),
                use_optimize=False,
            )
        if name == "sat":
            return cls(
                merge=MergeOptions(use_bdd_sweep=False, use_sat_merge=True),
                use_optimize=False,
            )
        if name == "full":
            return cls()
        raise AigError(f"unknown quantification preset: {name!r}")


@dataclass
class QuantifyOutcome:
    """Result of quantifying a set of variables."""

    edge: int
    quantified: list[int]
    stats: StatsBag

    @property
    def size(self) -> int:
        return int(self.stats.get("final_size"))


def quantify_exists_one(
    aig: Aig,
    edge: int,
    var_node: int,
    options: QuantifyOptions | None = None,
    sweeper: SatSweeper | None = None,
    stats: StatsBag | None = None,
) -> int:
    """``exists var . edge`` for a single input variable."""
    if options is None:
        options = QuantifyOptions()
    if stats is None:
        stats = StatsBag()
    cache: dict[int, int] = {}
    cof0 = cofactor(aig, edge, var_node, False, cache)
    cof1 = cofactor(aig, edge, var_node, True)
    stats.incr("vars_quantified")
    if cof0 == cof1:
        # Variable was not semantically in the support.
        stats.incr("independent_vars")
        return cof0
    if options.use_merge:
        cof0, cof1, merge_stats = merge_cofactors(
            aig, cof0, cof1, options.merge, sweeper=sweeper
        )
        stats.merge(merge_stats)
    if options.use_optimize:
        result, opt_stats = optimize_disjunction(
            aig, cof0, cof1, sweeper=sweeper, options=options.optimize
        )
        stats.merge(opt_stats)
    else:
        result = or_(aig, cof0, cof1)
    return result


def quantify_exists(
    aig: Aig,
    edge: int,
    variables: Iterable[int],
    options: QuantifyOptions | None = None,
    sweeper: SatSweeper | None = None,
    order: Sequence[int] | None = None,
) -> QuantifyOutcome:
    """``exists {vars} . edge`` — quantifies one variable at a time.

    Variables outside the structural support are skipped (already
    quantified for free).  ``options.schedule`` picks the next variable at
    every step — by default the greedy minimum-dependence order, which
    keeps intermediate results small (see :mod:`repro.core.schedule`).

    ``order`` overrides the dynamic scheduler with a precomputed static
    order (e.g. one slice of a partitioned-image plan from
    :func:`repro.core.schedule.schedule_variable_order`); variables not
    mentioned in ``order`` fall back to caller order.
    """
    if options is None:
        options = QuantifyOptions()
    stats = StatsBag()
    stats.set("initial_size", cone_size(aig, edge))
    if sweeper is None and (options.use_merge or options.use_optimize):
        sweeper = SatSweeper(aig)
    scheduler = get_scheduler(options.schedule)
    remaining = [v for v in dict.fromkeys(variables)]
    remaining_set = set(remaining)
    plan = (
        [v for v in dict.fromkeys(order) if v in remaining_set]
        if order is not None
        else None
    )
    current = edge
    quantified: list[int] = []
    while remaining:
        present = support(aig, current)
        remaining = [v for v in remaining if v in present]
        if not remaining:
            break
        if plan is not None:
            plan = [v for v in plan if v in remaining]
            var = plan[0] if plan else remaining[0]
        else:
            var = scheduler(aig, current, remaining)
        remaining.remove(var)
        current = quantify_exists_one(
            aig, current, var, options, sweeper=sweeper, stats=stats
        )
        quantified.append(var)
        stats.max("peak_size", cone_size(aig, current))
    stats.set("final_size", cone_size(aig, current))
    return QuantifyOutcome(edge=current, quantified=quantified, stats=stats)


def quantify_forall(
    aig: Aig,
    edge: int,
    variables: Iterable[int],
    options: QuantifyOptions | None = None,
    sweeper: SatSweeper | None = None,
) -> QuantifyOutcome:
    """``forall {vars} . edge``  ==  ``NOT exists {vars} . NOT edge``."""
    outcome = quantify_exists(aig, edge ^ 1, variables, options, sweeper)
    return QuantifyOutcome(
        edge=outcome.edge ^ 1,
        quantified=outcome.quantified,
        stats=outcome.stats,
    )


