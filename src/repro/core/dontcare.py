"""Don't-care machinery for the optimization phase (Section 2.2).

When representing ``f0 OR f1`` we never need ``f1`` to be right where
``f0`` is already 1: the *onset of f0 is an input don't-care set for f1*
(and symmetrically).  A node ``n`` in f1's cone may be replaced by ``n'``
whenever

* input-DC rule:  ``NOT f0  ->  (n' == n)``   — checked as
  ``UNSAT( NOT f0  AND  (n XOR n') )``, the paper's
  "the transformed node is required to match the original one outside the
  don't care set"; or
* observability rule: the difference *is* inside the care set but is not
  observable at the output — checked as
  ``UNSAT( (f0 OR f1)  XOR  (f0 OR f1') )``, the paper's "additional
  equivalence check", equivalently redundancy of the EXOR gate comparing
  f1 and f1'.

Candidate ``n'`` are constants (redundancy removal) and existing nodes
modulo complementation (merge), pre-filtered by care-set simulation so the
SAT engine only sees plausible pairs.
"""

from __future__ import annotations

import numpy as np

from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.ops import or_, xor
from repro.aig.simulate import simulate_nodes
from repro.sweep.satsweep import SatSweeper
from repro.util.stats import StatsBag


class DontCareOracle:
    """SAT-backed validity checks for node transformations under DCs.

    All probes run through the shared :class:`SatSweeper` solver, so one
    clause database serves the whole optimization phase.
    """

    def __init__(self, aig: Aig, sweeper: SatSweeper) -> None:
        self.aig = aig
        self.sweeper = sweeper
        self.stats = StatsBag()

    def valid_under_input_dc(
        self, care_edge: int, original: int, replacement: int
    ) -> bool | None:
        """Input-DC rule: does ``original == replacement`` hold within care?

        ``care_edge`` is the care set (``NOT f0`` when f0's onset is the DC
        set).  True means the replacement is safe.
        """
        difference = self.aig.and_(
            care_edge, xor(self.aig, original, replacement)
        )
        if difference == FALSE:
            self.stats.incr("input_dc_trivial")
            return True
        self.stats.incr("input_dc_checks")
        verdict = self.sweeper.check_constant(difference, False)
        return verdict

    def valid_under_odc(
        self,
        f0: int,
        f1_original: int,
        f1_transformed: int,
    ) -> bool | None:
        """Observability rule: is ``f0 OR f1`` unchanged by the transform?

        This is the redundancy check on the EXOR gate comparing the two
        versions of the disjunction.
        """
        before = or_(self.aig, f0, f1_original)
        after = or_(self.aig, f0, f1_transformed)
        miter = xor(self.aig, before, after)
        if miter == FALSE:
            self.stats.incr("odc_trivial")
            return True
        self.stats.incr("odc_checks")
        return self.sweeper.check_constant(miter, False)


def care_set_candidates(
    aig: Aig,
    f0: int,
    f1: int,
    input_vectors: dict[int, np.ndarray],
    max_merge_candidates: int = 4,
) -> dict[int, list[int]]:
    """Simulation-based candidate transformations for nodes of f1's cone.

    Patterns where ``f0`` is 1 are don't-cares, so signatures are compared
    only on care patterns (``f0 == 0``).  Returns node -> candidate
    replacement edges, most promising first: constants, then merges with
    other nodes (modulo complement).  Purely heuristic — every candidate
    still goes through the :class:`DontCareOracle`.
    """
    values = simulate_nodes(aig, input_vectors, [f0, f1])
    sig_f0 = values[f0 >> 1]
    if f0 & 1:
        sig_f0 = ~sig_f0
    care = ~sig_f0  # patterns where f0 == 0
    f1_cone = [n for n in aig.cone([f1]) if aig.is_and(n)]
    # Index care-masked signatures of *all* cone nodes (f0's included —
    # merging into f0's cone is where the sharing payoff is) so merge
    # candidates can be found in both polarities.
    by_masked: dict[bytes, list[tuple[int, bool]]] = {}
    for node in aig.cone([f0, f1]):
        by_masked.setdefault(
            (values[node] & care).tobytes(), []
        ).append((node, False))
        by_masked.setdefault(
            (~values[node] & care).tobytes(), []
        ).append((node, True))
    candidates: dict[int, list[int]] = {}
    for node in f1_cone:
        entries: list[int] = []
        masked = values[node] & care
        if not masked.any():
            entries.append(FALSE)
        if not ((~values[node]) & care).any():
            entries.append(TRUE)
        added = 0
        for other, complemented in by_masked.get(masked.tobytes(), ()):
            if other == node or other == 0:
                continue
            entries.append((2 * other) ^ int(complemented))
            added += 1
            if added >= max_merge_candidates:
                break
        if entries:
            candidates[node] = entries
    return candidates
