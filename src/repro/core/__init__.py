"""Circuit-based quantifier elimination — the paper's contribution.

Existential quantification over AIG state sets via Shannon expansion
(``exists x . f  =  f|x=0  OR  f|x=1``), with the size explosion fought by

* the merge phase (:mod:`repro.core.merge` orchestrating the engines of
  :mod:`repro.sweep`) and
* the synthesis-based optimization phase (:mod:`repro.core.optimize`,
  don't-care machinery in :mod:`repro.core.dontcare`).

Section 3's traversal support lives in :mod:`repro.core.images`
(pre/post-image) and :mod:`repro.core.substitution` (quantification by
in-lining); Section 4's partial quantification in :mod:`repro.core.partial`.
"""

from repro.core.quantify import (
    QuantifyOptions,
    QuantifyOutcome,
    quantify_exists,
    quantify_exists_one,
    quantify_forall,
)
from repro.core.partial import PartialQuantifier, PartialOutcome
from repro.core.substitution import preimage_by_substitution
from repro.core.images import ImageComputer

__all__ = [
    "QuantifyOptions",
    "QuantifyOutcome",
    "quantify_exists",
    "quantify_exists_one",
    "quantify_forall",
    "PartialQuantifier",
    "PartialOutcome",
    "preimage_by_substitution",
    "ImageComputer",
]
