"""Merge-phase orchestration for cofactor pairs (Section 2.1).

Given the two cofactors of a Shannon expansion, maximize sub-circuit
sharing before taking their disjunction.  Three engines run in the paper's
order — structural hashing (implicit), BDD sweeping, SAT checks — and the
SAT stage supports both processing directions the paper compares:

* ``backward``: try to prove output-region pairs equivalent first and stop
  descending on success (wins when the cofactors are similar);
* ``forward``: sweep the union of both cones from the inputs up, learning
  merges as it goes (wins when cofactors are dissimilar — behaves like
  BDD sweeping).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.graph import Aig
from repro.errors import AigError
from repro.sweep.bddsweep import bdd_sweep
from repro.sweep.satsweep import SatSweeper
from repro.util.stats import StatsBag


@dataclass
class MergeOptions:
    """Configuration of the merge phase."""

    use_bdd_sweep: bool = True
    use_sat_merge: bool = True
    order: str = "backward"          # "backward" | "forward"
    bdd_node_limit: int = 2000
    sat_conflict_budget: int = 3000
    sim_words: int = 4


def merge_cofactors(
    aig: Aig,
    cof0: int,
    cof1: int,
    options: MergeOptions | None = None,
    sweeper: SatSweeper | None = None,
) -> tuple[int, int, StatsBag]:
    """Run the merge phase on a cofactor pair; returns merged edges + stats."""
    if options is None:
        options = MergeOptions()
    if options.order not in ("backward", "forward"):
        raise AigError(f"unknown merge order: {options.order!r}")
    stats = StatsBag()
    if options.use_bdd_sweep:
        (cof0, cof1), _, bdd_stats = bdd_sweep(
            aig, [cof0, cof1], node_limit=options.bdd_node_limit
        )
        stats.merge(bdd_stats)
    if options.use_sat_merge:
        if sweeper is None:
            sweeper = SatSweeper(
                aig,
                conflict_budget=options.sat_conflict_budget,
                sim_words=options.sim_words,
            )
        checks_before = sweeper.stats.get("sat_checks")
        if options.order == "backward":
            cof1, _ = sweeper.merge_pair_backward(cof0, cof1)
        else:
            (cof0, cof1), _ = sweeper.sweep([cof0, cof1])
        stats.merge(sweeper.stats)
        stats.set(
            "merge_sat_checks", sweeper.stats.get("sat_checks") - checks_before
        )
    return cof0, cof1, stats
