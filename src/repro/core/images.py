"""Pre-image and post-image over AIG state sets (Section 3 support).

``ImageComputer`` binds a netlist to a quantification strategy:

* **pre-image** uses the in-lining rule — compose the next-state functions
  into the state set (no quantifier for next-state variables at all) —
  then existentially quantifies the primary inputs with the circuit-based
  engine;
* **post-image** has no such shortcut: it builds the relational product
  with next-state placeholder variables and quantifies both current state
  and inputs (provided for completeness and forward-reachability
  extensions; the paper's traversal is backward).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.graph import Aig
from repro.aig.ops import and_all, compose, support, xnor
from repro.circuits.netlist import Netlist
from repro.core.partial import PartialOutcome, PartialQuantifier
from repro.core.quantify import QuantifyOptions, quantify_exists
from repro.core.substitution import preimage_by_substitution
from repro.sweep.satsweep import SatSweeper
from repro.util.stats import StatsBag


@dataclass
class ImageResult:
    """An image computation outcome."""

    edge: int
    quantified: list[int]
    residual: list[int]          # inputs left unquantified (partial mode)
    stats: StatsBag


class ImageComputer:
    """Pre/post-image engine over one netlist.

    With ``partial=True`` the input quantification aborts expensive
    variables and reports them in ``ImageResult.residual`` — the hook that
    experiment T6/T7 use to hand residual variables to SAT engines.
    """

    def __init__(
        self,
        netlist: Netlist,
        options: QuantifyOptions | None = None,
        partial: bool = False,
        growth_factor: float = 2.0,
        share_solver: bool = True,
    ) -> None:
        netlist.validate()
        self.netlist = netlist
        self.aig: Aig = netlist.aig
        self.options = options if options is not None else QuantifyOptions()
        self.partial = partial
        self.growth_factor = growth_factor
        self._sweeper: SatSweeper | None = (
            SatSweeper(self.aig) if share_solver else None
        )
        self._next_functions = netlist.next_functions()
        self._placeholders: dict[int, int] | None = None

    # ------------------------------------------------------------------ #
    # Pre-image
    # ------------------------------------------------------------------ #

    def preimage(self, state_set: int) -> ImageResult:
        """States with *some constrained* input leading into ``state_set``.

        In-lining first (cost: one compose), then input quantification.
        Environment constraints are conjoined before quantifying, so the
        result is ``exists i . C(s, i) AND S(delta(s, i))``.
        """
        composed = preimage_by_substitution(
            self.aig, state_set, self._next_functions
        )
        composed = self.aig.and_(composed, self.netlist.constraint_edge())
        input_nodes = [
            node
            for node in self.netlist.input_nodes
            if node in support(self.aig, composed)
        ]
        return self._quantify(composed, input_nodes)

    # ------------------------------------------------------------------ #
    # Post-image
    # ------------------------------------------------------------------ #

    def _next_placeholders(self) -> dict[int, int]:
        if self._placeholders is None:
            self._placeholders = {}
            for latch in self.netlist.latches:
                edge = self.aig.add_input(f"next_{latch.name}")
                self._placeholders[latch.node] = edge >> 1
        return self._placeholders

    def postimage(self, state_set: int) -> ImageResult:
        """States reachable from ``state_set`` in one step.

        Relational product: ``exists s, i . S(s) AND AND_k (y_k == delta_k)``
        followed by renaming y back to the state variables.
        """
        placeholders = self._next_placeholders()
        constraints = [
            xnor(self.aig, 2 * placeholders[node], fn)
            for node, fn in self._next_functions.items()
        ]
        constraints.append(self.netlist.constraint_edge())
        product = self.aig.and_(state_set, and_all(self.aig, constraints))
        to_quantify = [
            node
            for node in (
                self.netlist.latch_nodes + self.netlist.input_nodes
            )
            if node in support(self.aig, product)
        ]
        result = self._quantify(product, to_quantify)
        renamed = compose(
            self.aig,
            result.edge,
            {y: 2 * node for node, y in placeholders.items()},
        )
        return ImageResult(
            edge=renamed,
            quantified=result.quantified,
            residual=result.residual,
            stats=result.stats,
        )

    # ------------------------------------------------------------------ #
    # Shared quantification entry
    # ------------------------------------------------------------------ #

    def _quantify(self, edge: int, variables: list[int]) -> ImageResult:
        if self.partial:
            quantifier = PartialQuantifier(
                self.aig,
                options=self.options,
                growth_factor=self.growth_factor,
                sweeper=self._sweeper,
            )
            outcome: PartialOutcome = quantifier.quantify(edge, variables)
            return ImageResult(
                edge=outcome.edge,
                quantified=outcome.quantified,
                residual=outcome.aborted,
                stats=outcome.stats,
            )
        full = quantify_exists(
            self.aig, edge, variables, self.options, sweeper=self._sweeper
        )
        return ImageResult(
            edge=full.edge,
            quantified=full.quantified,
            residual=[],
            stats=full.stats,
        )
