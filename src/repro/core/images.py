"""Pre-image and post-image over AIG state sets (Section 3 support).

``ImageComputer`` binds a netlist to a quantification strategy:

* **pre-image** uses the in-lining rule — compose the next-state functions
  into the state set (no quantifier for next-state variables at all) —
  then existentially quantifies the primary inputs with the circuit-based
  engine;
* **post-image** builds the relational product with next-state placeholder
  variables and quantifies both current state and inputs.  By default the
  product is *partitioned*: the ``y_k == delta_k`` conjuncts are conjoined
  in the order chosen by :func:`repro.core.schedule.schedule_variable_order`
  and every variable is quantified as soon as no later conjunct depends on
  it — the same plan vocabulary the BDD engine's scheduled image uses
  (:func:`repro.core.schedule.plan_partitioned_quantification`).  Set
  ``schedule_image=False`` (or ``partial=True``, which needs the whole
  product for residual bookkeeping) for the monolithic
  conjoin-then-quantify pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.graph import Aig
from repro.aig.ops import and_all, compose, support, xnor
from repro.circuits.netlist import Netlist
from repro.core.partial import PartialOutcome, PartialQuantifier
from repro.core.quantify import QuantifyOptions, quantify_exists
from repro.core.schedule import (
    plan_partitioned_quantification,
    schedule_variable_order,
)
from repro.core.substitution import preimage_by_substitution
from repro.sweep.satsweep import SatSweeper
from repro.util.stats import StatsBag


@dataclass
class ImageResult:
    """An image computation outcome."""

    edge: int
    quantified: list[int]
    residual: list[int]          # inputs left unquantified (partial mode)
    stats: StatsBag


class ImageComputer:
    """Pre/post-image engine over one netlist.

    With ``partial=True`` the input quantification aborts expensive
    variables and reports them in ``ImageResult.residual`` — the hook that
    experiment T6/T7 use to hand residual variables to SAT engines.
    """

    def __init__(
        self,
        netlist: Netlist,
        options: QuantifyOptions | None = None,
        partial: bool = False,
        growth_factor: float = 2.0,
        share_solver: bool = True,
        schedule_image: bool = True,
    ) -> None:
        netlist.validate()
        self.netlist = netlist
        self.aig: Aig = netlist.aig
        self.options = options if options is not None else QuantifyOptions()
        self.partial = partial
        self.growth_factor = growth_factor
        self.schedule_image = schedule_image
        self._sweeper: SatSweeper | None = (
            SatSweeper(self.aig) if share_solver else None
        )
        self._next_functions = netlist.next_functions()
        self._placeholders: dict[int, int] | None = None
        # (constraints, plan) for the scheduled product — the transition
        # relation is invariant across calls, only the state set changes.
        self._image_plan: tuple[list[int], list] | None = None

    # ------------------------------------------------------------------ #
    # Pre-image
    # ------------------------------------------------------------------ #

    def preimage(self, state_set: int) -> ImageResult:
        """States with *some constrained* input leading into ``state_set``.

        In-lining first (cost: one compose), then input quantification.
        Environment constraints are conjoined before quantifying, so the
        result is ``exists i . C(s, i) AND S(delta(s, i))``.
        """
        composed = preimage_by_substitution(
            self.aig, state_set, self._next_functions
        )
        composed = self.aig.and_(composed, self.netlist.constraint_edge())
        input_nodes = [
            node
            for node in self.netlist.input_nodes
            if node in support(self.aig, composed)
        ]
        return self._quantify(composed, input_nodes)

    # ------------------------------------------------------------------ #
    # Post-image
    # ------------------------------------------------------------------ #

    def _next_placeholders(self) -> dict[int, int]:
        if self._placeholders is None:
            self._placeholders = {}
            for latch in self.netlist.latches:
                edge = self.aig.add_input(f"next_{latch.name}")
                self._placeholders[latch.node] = edge >> 1
        return self._placeholders

    def postimage(self, state_set: int) -> ImageResult:
        """States reachable from ``state_set`` in one step.

        Relational product: ``exists s, i . S(s) AND AND_k (y_k == delta_k)``
        followed by renaming y back to the state variables.  Unless
        ``schedule_image`` is off (or ``partial`` is on), the product is
        conjoined partition by partition with early quantification along
        the shared image-scheduling plan.
        """
        placeholders = self._next_placeholders()
        constraints = [
            xnor(self.aig, 2 * placeholders[node], fn)
            for node, fn in self._next_functions.items()
        ]
        constraints.append(self.netlist.constraint_edge())
        if self.schedule_image and not self.partial:
            result = self._scheduled_product(state_set, constraints)
        else:
            product = self.aig.and_(state_set, and_all(self.aig, constraints))
            to_quantify = [
                node
                for node in (
                    self.netlist.latch_nodes + self.netlist.input_nodes
                )
                if node in support(self.aig, product)
            ]
            result = self._quantify(product, to_quantify)
        renamed = compose(
            self.aig,
            result.edge,
            {y: 2 * node for node, y in placeholders.items()},
        )
        return ImageResult(
            edge=renamed,
            quantified=result.quantified,
            residual=result.residual,
            stats=result.stats,
        )

    def _scheduled_product(
        self, state_set: int, constraints: list[int]
    ) -> ImageResult:
        """Partitioned relational product with early quantification.

        The conjuncts are folded into the product along the
        :func:`~repro.core.schedule.plan_partitioned_quantification` plan;
        each plan step hands its freed variables to the circuit-based
        quantifier at once, so no variable ever waits for conjuncts it does
        not depend on.  The plan depends only on the transition relation,
        so it is computed once and reused across traversal steps.
        """
        aig = self.aig
        if self._image_plan is None:
            # The full structural conjunction is cheap on AIGs; it only
            # seeds the scheduling heuristics, the product never builds it.
            relation = and_all(aig, constraints)
            # Every current-state/input variable is a candidate — one the
            # relation ignores is freed in the plan's first step and costs
            # nothing unless the state set happens to read it.
            candidates = (
                self.netlist.latch_nodes + self.netlist.input_nodes
            )
            order = schedule_variable_order(
                aig, relation, candidates, self.options.schedule
            )
            candidate_set = set(candidates)
            supports = [
                support(aig, term) & candidate_set for term in constraints
            ]
            self._image_plan = (
                list(constraints),
                plan_partitioned_quantification(order, supports),
            )
        constraints, plan = self._image_plan
        stats = StatsBag()
        product = state_set
        quantified: list[int] = []
        for step in plan:
            for index in step.conjoin:
                product = aig.and_(product, constraints[index])
            if step.quantify:
                outcome = quantify_exists(
                    aig,
                    product,
                    step.quantify,
                    self.options,
                    sweeper=self._sweeper,
                    order=step.quantify,
                )
                product = outcome.edge
                quantified.extend(outcome.quantified)
                stats.merge(outcome.stats)
        return ImageResult(
            edge=product, quantified=quantified, residual=[], stats=stats
        )

    # ------------------------------------------------------------------ #
    # Shared quantification entry
    # ------------------------------------------------------------------ #

    def _quantify(self, edge: int, variables: list[int]) -> ImageResult:
        if self.partial:
            quantifier = PartialQuantifier(
                self.aig,
                options=self.options,
                growth_factor=self.growth_factor,
                sweeper=self._sweeper,
            )
            outcome: PartialOutcome = quantifier.quantify(edge, variables)
            return ImageResult(
                edge=outcome.edge,
                quantified=outcome.quantified,
                residual=outcome.aborted,
                stats=outcome.stats,
            )
        full = quantify_exists(
            self.aig, edge, variables, self.options, sweeper=self._sweeper
        )
        return ImageResult(
            edge=full.edge,
            quantified=full.quantified,
            residual=[],
            stats=full.stats,
        )
