"""Quantification by substitution — "in-lining" (Section 3).

Backward reachability must compute

    pre(S)(s, i)  =  exists x' .  S(x')  AND  (x' == delta(s, i))

Because the transition relation of a deterministic netlist is exactly a
conjunction of next-state definitions, the quantification of every
next-state variable collapses to functional composition:

    exists x . (x == g) AND f(x)   ==   f(g)

so ``pre(S) = S(delta(s, i))`` — one :func:`repro.aig.ops.compose` call and
*no* quantifier for the x' variables at all.  Only the primary inputs
``i`` remain to be quantified (by the circuit-based engine or left to a
SAT enumerator).
"""

from __future__ import annotations

from typing import Mapping

from repro.aig.graph import Aig
from repro.aig.ops import and_all, compose, support, xnor
from repro.errors import AigError


def preimage_by_substitution(
    aig: Aig,
    state_set: int,
    next_state_functions: Mapping[int, int],
) -> int:
    """Apply the in-lining rule: ``pre(S) = S(delta)`` over state inputs.

    ``next_state_functions`` maps each state-variable input node of the
    state set to its next-state function edge (over current-state and
    primary-input variables).  Variables of the state set missing from the
    map are left untouched.
    """
    present = support(aig, state_set)
    substitution = {
        node: fn for node, fn in next_state_functions.items() if node in present
    }
    return compose(aig, state_set, substitution)


def preimage_relational(
    aig: Aig,
    state_set: int,
    next_state_functions: Mapping[int, int],
    next_state_placeholders: Mapping[int, int],
) -> int:
    """The *relational* pre-image the in-lining rule avoids.

    Builds ``S(x') AND  AND_k (x'_k XNOR delta_k)`` explicitly, leaving the
    x' variables to be quantified by the caller.  Exists only as the
    baseline for experiment T5: the in-lining rule gives the same function
    after quantifying the placeholders.

    ``next_state_placeholders`` maps state-variable input nodes (as used in
    ``state_set``) to fresh placeholder input nodes x'.
    """
    for node in next_state_placeholders.values():
        if not aig.is_input(node):
            raise AigError("placeholders must be input nodes")
    renamed = compose(
        aig,
        state_set,
        {
            old: 2 * new
            for old, new in next_state_placeholders.items()
        },
    )
    constraints = [
        xnor(aig, 2 * next_state_placeholders[node], fn)
        for node, fn in next_state_functions.items()
        if node in next_state_placeholders
    ]
    return aig.and_(renamed, and_all(aig, constraints))
