"""Tests for Tseitin encoding: CnfMapper and standalone edge_to_cnf."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.cnf import CnfMapper, edge_to_cnf
from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.ops import or_, xor
from repro.aig.simulate import eval_edge
from repro.errors import AigError
from repro.sat.solver import SolveResult, Solver
from tests.conftest import build_random_aig


class TestCnfMapper:
    def test_satisfiable_edge(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        mapper = CnfMapper(aig)
        lit = mapper.lit_for(aig.and_(a, b))
        assert mapper.solver.solve([lit]) is SolveResult.SAT

    def test_unsatisfiable_edge(self):
        aig = Aig()
        a = aig.add_input()
        mapper = CnfMapper(aig)
        # a AND NOT a folds to FALSE at construction:
        lit = mapper.lit_for(aig.and_(a, edge_not(a)))
        assert mapper.solver.solve([lit]) is SolveResult.UNSAT

    def test_constant_edges(self):
        aig = Aig()
        mapper = CnfMapper(aig)
        assert mapper.solver.solve([mapper.lit_for(TRUE)]) is SolveResult.SAT
        assert mapper.solver.solve([mapper.lit_for(FALSE)]) is SolveResult.UNSAT

    def test_model_matches_simulation(self):
        aig, inputs, root = build_random_aig(5, 25, seed=21)
        mapper = CnfMapper(aig)
        lit = mapper.lit_for(root)
        if mapper.solver.solve([lit]) is SolveResult.SAT:
            assignment = mapper.model_inputs()
            assert eval_edge(aig, root, assignment)

    def test_shared_encoding_two_edges(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        g = or_(aig, a, b)
        mapper = CnfMapper(aig)
        lit_f = mapper.lit_for(f)
        vars_after_f = mapper.solver.num_vars
        lit_g = mapper.lit_for(g)
        # g shares the inputs already encoded; only new gate vars appear.
        assert mapper.solver.num_vars <= vars_after_f + 2
        # f implies g: f AND NOT g unsatisfiable.
        assert mapper.solver.solve([lit_f, -lit_g]) is SolveResult.UNSAT

    def test_complement_edge_literal(self):
        aig = Aig()
        a = aig.add_input()
        mapper = CnfMapper(aig)
        assert mapper.lit_for(edge_not(a)) == -mapper.lit_for(a)

    def test_input_literal(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        mapper = CnfMapper(aig)
        lit = mapper.lit_for(f)
        assert mapper.solver.solve(
            [lit, -mapper.input_literal(a >> 1)]
        ) is SolveResult.UNSAT

    def test_input_literal_non_input_rejected(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        mapper = CnfMapper(aig)
        mapper.lit_for(f)
        with pytest.raises(AigError):
            mapper.input_literal(f >> 1)

    def test_miter_check_equivalent(self):
        # (a AND b) == NOT(NOT a OR NOT b): miter is UNSAT.
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        g = edge_not(or_(aig, edge_not(a), edge_not(b)))
        assert f == g  # hashing already merges them!
        mapper = CnfMapper(aig)
        # A structurally different equivalent pair:
        h = edge_not(xor(aig, f, FALSE ^ 0))  # NOT (f XOR 0) == NOT f... build directly
        lit_f = mapper.lit_for(f)
        lit_g = mapper.lit_for(g)
        assert mapper.solver.solve([lit_f, -lit_g]) is SolveResult.UNSAT
        assert mapper.solver.solve([-lit_f, lit_g]) is SolveResult.UNSAT


class TestEdgeToCnf:
    def test_equisatisfiability(self):
        aig, inputs, root = build_random_aig(4, 18, seed=22)
        cnf, lit, input_vars = edge_to_cnf(aig, root)
        cnf.add_clause([lit])
        solver = Solver(cnf)
        from repro.aig.simulate import truth_table

        has_onset = truth_table(aig, root, [e >> 1 for e in inputs]) != 0
        assert (solver.solve() is SolveResult.SAT) == has_onset

    def test_constant_edges(self):
        aig = Aig()
        cnf_t, lit_t, _ = edge_to_cnf(aig, TRUE)
        cnf_t.add_clause([lit_t])
        assert Solver(cnf_t).solve() is SolveResult.SAT
        cnf_f, lit_f, _ = edge_to_cnf(aig, FALSE)
        cnf_f.add_clause([lit_f])
        assert Solver(cnf_f).solve() is SolveResult.UNSAT

    def test_input_map_returned(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        cnf, lit, input_vars = edge_to_cnf(aig, f)
        assert set(input_vars) == {a >> 1, b >> 1}

    def test_model_projects_to_onset(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = aig.and_(aig.and_(a, edge_not(b)), c)
        cnf, lit, input_vars = edge_to_cnf(aig, f)
        cnf.add_clause([lit])
        solver = Solver(cnf)
        assert solver.solve() is SolveResult.SAT
        assignment = {
            node: solver.value(var) for node, var in input_vars.items()
        }
        assert eval_edge(aig, f, assignment)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_cnf_equisat_property(seed):
    """SAT(edge asserted) iff the function has a non-empty onset."""
    from repro.aig.simulate import truth_table

    aig, inputs, root = build_random_aig(4, 15, seed=seed)
    mapper = CnfMapper(aig)
    lit = mapper.lit_for(root)
    result = mapper.solver.solve([lit])
    onset_nonempty = truth_table(aig, root, [e >> 1 for e in inputs]) != 0
    assert (result is SolveResult.SAT) == onset_nonempty
