"""Tests for the AIG Boolean algebra: operators, cofactors, composition."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.ops import (
    and_all,
    cofactor,
    compose,
    constant_value,
    implies_edge,
    ite,
    or_,
    or_all,
    support,
    support_many,
    transfer,
    xnor,
    xor,
)
from repro.aig.simulate import eval_edge, truth_table
from repro.errors import AigError
from tests.conftest import build_random_aig, edges_equivalent


def exhaustive_check(aig, edge, input_edges, reference):
    nodes = [e >> 1 for e in input_edges]
    for values in itertools.product([False, True], repeat=len(nodes)):
        assignment = dict(zip(nodes, values))
        assert eval_edge(aig, edge, assignment) == reference(*values)


class TestOperators:
    def setup_method(self):
        self.aig = Aig()
        self.a, self.b, self.c = self.aig.add_inputs(3)

    def test_or(self):
        exhaustive_check(
            self.aig, or_(self.aig, self.a, self.b), [self.a, self.b],
            lambda a, b: a or b,
        )

    def test_xor(self):
        exhaustive_check(
            self.aig, xor(self.aig, self.a, self.b), [self.a, self.b],
            lambda a, b: a != b,
        )

    def test_xnor(self):
        exhaustive_check(
            self.aig, xnor(self.aig, self.a, self.b), [self.a, self.b],
            lambda a, b: a == b,
        )

    def test_ite(self):
        exhaustive_check(
            self.aig,
            ite(self.aig, self.a, self.b, self.c),
            [self.a, self.b, self.c],
            lambda a, b, c: b if a else c,
        )

    def test_implies(self):
        exhaustive_check(
            self.aig,
            implies_edge(self.aig, self.a, self.b),
            [self.a, self.b],
            lambda a, b: (not a) or b,
        )

    def test_and_all_empty_is_true(self):
        assert and_all(self.aig, []) == TRUE

    def test_or_all_empty_is_false(self):
        assert or_all(self.aig, []) == FALSE

    def test_and_all_many(self):
        edges = [self.a, self.b, self.c]
        exhaustive_check(
            self.aig, and_all(self.aig, edges), edges,
            lambda a, b, c: a and b and c,
        )

    def test_or_all_many(self):
        edges = [self.a, self.b, self.c]
        exhaustive_check(
            self.aig, or_all(self.aig, edges), edges,
            lambda a, b, c: a or b or c,
        )

    def test_and_all_is_balanced(self):
        aig = Aig()
        inputs = aig.add_inputs(16)
        root = and_all(aig, inputs)
        # A balanced tree over 16 leaves has depth 4, not 15.
        assert aig.level(root >> 1) == 4

    def test_constant_value(self):
        assert constant_value(TRUE) is True
        assert constant_value(FALSE) is False
        assert constant_value(self.a) is None


class TestCofactor:
    def test_shannon_expansion_identity(self):
        aig, inputs, root = build_random_aig(5, 30, seed=4)
        var = inputs[2] >> 1
        pos = cofactor(aig, root, var, True)
        neg = cofactor(aig, root, var, False)
        rebuilt = ite(aig, inputs[2], pos, neg)
        input_nodes = [e >> 1 for e in inputs]
        assert truth_table(aig, rebuilt, input_nodes) == truth_table(
            aig, root, input_nodes
        )

    def test_cofactor_removes_variable(self):
        aig, inputs, root = build_random_aig(5, 30, seed=5)
        var = inputs[0] >> 1
        cof = cofactor(aig, root, var, True)
        assert var not in support(aig, cof)

    def test_cofactor_of_non_input_rejected(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        with pytest.raises(AigError):
            cofactor(aig, f, f >> 1, True)

    def test_cofactor_independent_variable(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = aig.and_(a, b)
        assert cofactor(aig, f, c >> 1, True) == f


class TestCompose:
    def test_compose_identity(self):
        aig, inputs, root = build_random_aig(4, 20, seed=6)
        substitution = {e >> 1: e for e in inputs}
        assert compose(aig, root, substitution) == root

    def test_compose_swap_variables(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, edge_not(b))
        swapped = compose(aig, f, {a >> 1: b, b >> 1: a})
        exhaustive_check(
            aig, swapped, [a, b], lambda va, vb: vb and not va
        )

    def test_compose_with_function(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = or_(aig, a, b)
        g = compose(aig, f, {a >> 1: aig.and_(b, c)})
        exhaustive_check(
            aig, g, [a, b, c], lambda va, vb, vc: (vb and vc) or vb
        )

    def test_compose_non_input_rejected(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        with pytest.raises(AigError):
            compose(aig, a, {f >> 1: b})

    def test_sequential_vs_simultaneous(self):
        # compose must be simultaneous: {a->b, b->a} is a swap, not a chain.
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, edge_not(b))
        swapped = compose(aig, f, {a >> 1: b, b >> 1: a})
        chained = compose(aig, compose(aig, f, {a >> 1: b}), {b >> 1: a})
        input_nodes = [a >> 1, b >> 1]
        assert truth_table(aig, swapped, input_nodes) != truth_table(
            aig, chained, input_nodes
        )


class TestSupport:
    def test_support_exact(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = aig.and_(a, b)
        assert support(aig, f) == {a >> 1, b >> 1}

    def test_support_constant(self):
        aig = Aig()
        assert support(aig, TRUE) == set()

    def test_support_semantic_vs_structural(self):
        # x AND NOT x folds at construction, so support is empty.
        aig = Aig()
        a = aig.add_input()
        assert support(aig, aig.and_(a, edge_not(a))) == set()

    def test_support_many(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        assert support_many(aig, [aig.and_(a, b), c]) == {
            a >> 1, b >> 1, c >> 1,
        }


class TestTransfer:
    def test_transfer_preserves_function(self):
        src, inputs, root = build_random_aig(4, 25, seed=8)
        dst = Aig()
        leaf_map = {e >> 1: dst.add_input() for e in inputs}
        moved = transfer(src, root, dst, leaf_map)
        src_tt = truth_table(src, root, [e >> 1 for e in inputs])
        dst_tt = truth_table(dst, moved, [leaf_map[e >> 1] >> 1 for e in inputs])
        assert src_tt == dst_tt

    def test_transfer_missing_leaf_rejected(self):
        src = Aig()
        a, b = src.add_inputs(2)
        f = src.and_(a, b)
        dst = Aig()
        with pytest.raises(AigError):
            transfer(src, f, dst, {a >> 1: dst.add_input()})

    def test_transfer_shared_cache(self):
        src, inputs, root = build_random_aig(4, 25, seed=10)
        dst = Aig()
        leaf_map = {e >> 1: dst.add_input() for e in inputs}
        cache: dict[int, int] = {}
        first = transfer(src, root, dst, leaf_map, cache)
        second = transfer(src, edge_not(root), dst, leaf_map, cache)
        assert second == edge_not(first)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    var_index=st.integers(min_value=0, max_value=3),
)
def test_shannon_property(seed, var_index):
    """f == ite(x, f|x=1, f|x=0) for random circuits and variables."""
    aig, inputs, root = build_random_aig(4, 18, seed=seed)
    var_edge = inputs[var_index]
    pos = cofactor(aig, root, var_edge >> 1, True)
    neg = cofactor(aig, root, var_edge >> 1, False)
    rebuilt = ite(aig, var_edge, pos, neg)
    assert edges_equivalent(aig, root, rebuilt, [e >> 1 for e in inputs])
