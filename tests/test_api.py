"""Tests for the typed verification API: the engine registry, result
serialization, and the task/session layer."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import (
    ProgressEvent,
    Session,
    VerificationTask,
    engine_names,
    engines_with,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.circuits import generators as G
from repro.circuits.library import handshake
from repro.errors import ModelCheckingError
from repro.mc import verify
from repro.mc.result import Status, Trace, VerificationResult
from repro.portfolio import ResultCache
from repro.util.stats import StatsBag


class TestRegistry:
    def test_every_engine_registered_once(self):
        names = engine_names()
        assert len(names) == len(set(names))
        assert set(names) == {
            "bmc", "k_induction", "reach_aig", "reach_aig_allsat",
            "reach_aig_hybrid", "reach_aig_fwd", "reach_bdd",
            "reach_bdd_fwd", "itp", "pdr", "cnc", "portfolio",
        }

    def test_every_engine_runs_on_a_tiny_counter(self):
        # The registry invariant: every spec's runner actually runs, and
        # capability flags tell the truth about the outcome.
        safe = G.mod_counter(2, 3)
        buggy = G.mod_counter(2, 3, safe=False)
        for name in engine_names():
            spec = get_engine(name)
            options = {"budget": 10.0} if spec.composite else {}
            result = spec.verify(safe.clone()[0], max_depth=20, **options)
            if spec.complete:
                assert result.proved, name
            else:
                assert not result.status.is_conclusive, name
            result = spec.verify(buggy.clone()[0], max_depth=20, **options)
            assert result.failed, name
            if spec.produces_trace:
                assert result.trace is not None, name
                assert result.trace.validate(buggy.clone()[0]), name

    def test_unknown_engine_lists_choices(self):
        with pytest.raises(ModelCheckingError, match="reach_aig"):
            get_engine("warp_drive")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ModelCheckingError):
            register_engine(name="bmc", summary="imposter")(lambda n, o: None)

    def test_registered_engine_appears_everywhere_without_edits(self):
        # A new engine shows up in the name queries, the portfolio
        # default candidates, the verify() dispatch, and the CLI choices
        # with no per-consumer edits.
        from repro.cli import build_parser
        from repro.portfolio.policy import default_engines

        @register_engine(
            name="always_proved",
            summary="test stub",
            produces_trace=False,
            direction="any",
        )
        def _run(netlist, options):
            return VerificationResult(
                status=Status.PROVED, engine="always_proved"
            )

        try:
            assert "always_proved" in engine_names()
            assert "always_proved" in default_engines()
            result = verify(G.mod_counter(2, 3), method="always_proved")
            assert result.proved
            parser = build_parser()
            args = parser.parse_args(
                ["mc", "x.net", "--method", "always_proved"]
            )
            assert args.method == "always_proved"
        finally:
            unregister_engine("always_proved")
        assert "always_proved" not in engine_names()

    def test_capability_queries(self):
        complete = {s.name for s in engines_with(complete=True)}
        assert "bmc" not in complete
        assert "reach_aig" in complete
        quick = {s.name for s in engines_with(quick=True)}
        assert quick == {"bmc", "k_induction"}
        composite = {s.name for s in engines_with(composite=True)}
        assert composite == {"portfolio"}

    def test_forced_option_collision_rejected(self):
        with pytest.raises(ModelCheckingError, match="forces"):
            verify(
                G.mod_counter(2, 3),
                method="reach_aig_allsat",
                input_elimination="circuit",
            )

    def test_unknown_option_names_the_known_ones(self):
        with pytest.raises(ModelCheckingError, match="preimage_folds"):
            verify(G.mod_counter(2, 3), method="bmc", no_such_option=True)


class TestStatusSemantics:
    def test_is_conclusive(self):
        assert Status.PROVED.is_conclusive
        assert Status.FAILED.is_conclusive
        assert not Status.UNKNOWN.is_conclusive

    def test_truthiness_is_a_loud_error(self):
        # `if result.status:` used to be truthy only for PROVED, silently
        # conflating FAILED with UNKNOWN.
        for status in Status:
            with pytest.raises(TypeError, match="is_conclusive"):
                bool(status)

    def test_result_properties_still_work(self):
        result = VerificationResult(status=Status.FAILED, engine="x")
        assert result.failed and not result.proved


# ---------------------------------------------------------------------- #
# Serialization
# ---------------------------------------------------------------------- #

_assignments = st.dictionaries(
    st.integers(min_value=1, max_value=12), st.booleans(), max_size=6
)


def _traces():
    return st.builds(
        lambda states, inputs, violation: Trace(
            states=states, inputs=inputs, violation_inputs=violation
        ),
        states=st.lists(_assignments, min_size=1, max_size=5),
        inputs=st.lists(_assignments, min_size=0, max_size=4),
        violation=st.one_of(st.none(), _assignments),
    )


def _stats_bags():
    def build(counters, gauges):
        bag = StatsBag()
        for key, value in counters.items():
            bag.incr(key, value)
        for key, value in gauges.items():
            bag.set(key, value)
        return bag

    finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
    keys = st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=10
    )
    return st.builds(
        build,
        st.dictionaries(keys, finite, max_size=4),
        st.dictionaries(keys, finite, max_size=4),
    )


class TestSerialization:
    @settings(max_examples=60, deadline=None)
    @given(trace=_traces())
    def test_trace_json_round_trip(self, trace):
        payload = json.loads(json.dumps(trace.to_dict()))
        recovered = Trace.from_dict(payload)
        assert recovered.states == trace.states
        assert recovered.inputs == trace.inputs
        assert recovered.violation_inputs == trace.violation_inputs

    @settings(max_examples=60, deadline=None)
    @given(
        trace=st.one_of(st.none(), _traces()),
        stats=_stats_bags(),
        status=st.sampled_from(list(Status)),
        iterations=st.integers(min_value=0, max_value=1000),
    )
    def test_result_json_round_trip(self, trace, stats, status, iterations):
        result = VerificationResult(
            status=status,
            engine="reach_aig",
            trace=trace,
            iterations=iterations,
            stats=stats,
        )
        payload = json.loads(json.dumps(result.to_dict()))
        recovered = VerificationResult.from_dict(payload)
        assert recovered.status is result.status
        assert recovered.engine == result.engine
        assert recovered.iterations == result.iterations
        assert recovered.stats.as_dict() == result.stats.as_dict()
        assert recovered.stats.gauge_keys() == result.stats.gauge_keys()
        if trace is None:
            assert recovered.trace is None
        else:
            assert recovered.trace.states == trace.states
            assert recovered.trace.violation_inputs == trace.violation_inputs

    def test_positional_round_trip_survives_renumbering(self):
        # The cache encoding: written against one manager, decoded
        # against a clone with different node ids.
        buggy = handshake(False)
        result = verify(buggy, method="bmc", max_depth=20)
        assert result.failed
        payload = json.loads(json.dumps(result.to_dict(buggy)))
        fresh, _, _ = handshake(False).clone()
        recovered = VerificationResult.from_dict(payload, fresh)
        assert recovered.failed
        assert recovered.trace.validate(fresh)

    def test_positional_payload_requires_netlist(self):
        buggy = handshake(False)
        result = verify(buggy, method="bmc", max_depth=20)
        payload = result.to_dict(buggy)
        with pytest.raises(ValueError):
            VerificationResult.from_dict(payload)

    def test_legacy_cache_record_still_decodes(self):
        # Records written before the "format" key existed: positional
        # trace bit-strings, flat stats with top-level gauge names.
        netlist = G.mod_counter(2, 3, safe=False)  # 2 latches, no inputs
        legacy = {
            "status": "failed",
            "engine": "bmc",
            "iterations": 2,
            "trace": {
                "states": ["00", "01", "x0"],
                "inputs": ["", ""],
                "violation_inputs": None,
            },
            "stats": {"frames_unrolled": 2.0, "peak_size": 7.0},
            "gauges": ["peak_size"],
        }
        recovered = VerificationResult.from_dict(legacy, netlist)
        assert recovered.failed
        assert recovered.trace.depth == 2
        assert recovered.trace.states[1] == {
            netlist.latch_nodes[0]: False, netlist.latch_nodes[1]: True
        }
        assert len(recovered.trace.states[2]) == 1  # "x" bit dropped
        assert recovered.stats.get("frames_unrolled") == 2.0
        assert recovered.stats.is_gauge("peak_size")
        assert not recovered.stats.is_gauge("frames_unrolled")

    def test_every_engine_result_round_trips(self):
        # Acceptance: from_dict(to_dict()) for every engine's output.
        buggy = G.mod_counter(2, 3, safe=False)
        for name in engine_names():
            spec = get_engine(name)
            options = {"budget": 10.0} if spec.composite else {}
            result = spec.verify(buggy.clone()[0], max_depth=20, **options)
            payload = json.loads(json.dumps(result.to_dict()))
            recovered = VerificationResult.from_dict(payload)
            assert recovered.status is result.status, name
            assert recovered.engine == result.engine, name
            assert recovered.stats.as_dict() == result.stats.as_dict(), name
            if result.trace is not None:
                assert recovered.trace.states == result.trace.states, name


# ---------------------------------------------------------------------- #
# Tasks and sessions
# ---------------------------------------------------------------------- #


class TestVerificationTask:
    def test_defaults_and_label(self):
        task = VerificationTask(G.mod_counter(3, 6))
        assert task.engine == "reach_aig"
        assert task.name == task.netlist.name
        assert VerificationTask(G.mod_counter(3, 6), label="x").name == "x"

    def test_unknown_engine_resolves_loudly(self):
        task = VerificationTask(G.mod_counter(3, 6), engine="warp_drive")
        with pytest.raises(ModelCheckingError):
            task.spec()

    def test_cache_budget_reaches_capable_engines_only(self):
        bdd = VerificationTask(
            G.mod_counter(3, 6), engine="reach_bdd", max_cache_entries=512
        )
        assert bdd.engine_options() == {"max_cache_entries": 512}
        aig = VerificationTask(
            G.mod_counter(3, 6), engine="reach_aig", max_cache_entries=512
        )
        assert aig.engine_options() == {}

    def test_cache_budget_with_ready_made_options_is_loud(self):
        from repro.mc import BddReachOptions

        task = VerificationTask(
            G.mod_counter(3, 6),
            engine="reach_bdd",
            max_cache_entries=512,
            options={"options": BddReachOptions()},
        )
        with pytest.raises(ModelCheckingError, match="not both"):
            task.engine_options()


class TestSession:
    def _batch(self, count=20):
        # Alternating safe/buggy tiny counters, structurally distinct
        # (every task has its own modulus); cheap for any engine.
        return [
            G.mod_counter(5, 3 + i, safe=i % 2 == 0) for i in range(count)
        ]

    def test_verify_many_emits_progress_events(self):
        events = []
        session = Session(on_progress=events.append)
        netlists = self._batch(18) + self._batch(2)  # two duplicates
        results = session.verify_many(netlists, engine="reach_bdd")
        assert len(results) == 20
        kinds = [e.kind for e in events]
        assert kinds[0] == "batch_started"
        assert kinds[-1] == "batch_finished"
        assert kinds.count("task_started") == 20
        assert kinds.count("task_finished") == 20
        finished = [e for e in events if e.kind == "task_finished"]
        assert [e.index for e in finished] == list(range(20))
        assert all(e.total == 20 for e in finished)
        # The batch repeats structures: later duplicates hit the cache.
        assert any(e.cached for e in finished)
        assert session.stats.get("session_cache_hits") >= 1
        # Verdicts alternate with the generator's safe flag.
        for i, result in enumerate(results[:18]):
            assert result.proved if i % 2 == 0 else result.failed

    def test_cancellation_mid_batch(self):
        session = Session()
        events = []

        def watch(event: ProgressEvent):
            events.append(event)
            if event.kind == "task_finished" and event.index == 4:
                session.cancel()

        results = session.verify_many(
            self._batch(20), engine="reach_bdd", on_progress=watch
        )
        assert len(results) == 20
        ran, cancelled = results[:5], results[5:]
        assert all(r.status.is_conclusive for r in ran)
        assert all(not r.status.is_conclusive for r in cancelled)
        assert all(r.stats.get("session_cancelled") == 1 for r in cancelled)
        assert [e.kind for e in events].count("task_cancelled") == 15
        # Cancelled results are not memoized as real verdicts.
        assert (
            session.cache.lookup(self._batch(20)[12], "reach_bdd", 100)
            is None
        )
        session.reset()
        assert not session.cancelled

    def test_results_round_trip_for_every_task(self):
        session = Session()
        results = session.verify_many(self._batch(20), engine="reach_bdd")
        for result in results:
            payload = json.loads(json.dumps(result.to_dict()))
            recovered = VerificationResult.from_dict(payload)
            assert recovered.status is result.status

    def test_shared_cache_across_calls_and_sessions(self):
        cache = ResultCache()
        first = Session(cache=cache)
        assert first.verify(G.ring_counter(4), engine="reach_aig").proved
        second = Session(cache=cache)
        result = second.verify(G.ring_counter(4), engine="reach_aig")
        assert result.proved
        assert result.stats.get("cache_hit") == 1
        assert second.stats.get("session_cache_hits") == 1

    def test_timeout_is_enforced_in_a_worker(self):
        session = Session()
        task = VerificationTask(
            G.bug_at_depth(25), engine="reach_aig", timeout=0.05
        )
        result = session.run(task)
        assert not result.status.is_conclusive
        assert result.stats.get("timed_out") == 1
        # The budget-stamped UNKNOWN was memoized for an equal budget...
        assert session.cache.lookup(
            G.bug_at_depth(25), "reach_aig", 100, budget=0.05
        ) is not None
        # ...but a caller offering more time gets a fresh run.
        assert session.cache.lookup(
            G.bug_at_depth(25), "reach_aig", 100, budget=10.0
        ) is None

    def test_timeout_unknown_not_served_to_unbudgeted_task(self):
        # A budget-stamped timeout UNKNOWN must not answer a later task
        # with unlimited time: the engine gets a fresh (decisive) run.
        session = Session()
        netlist = G.mod_counter(3, 6)
        timed = session.run(
            VerificationTask(netlist, engine="reach_aig", timeout=1e-6)
        )
        assert not timed.status.is_conclusive
        fresh = session.run(VerificationTask(netlist, engine="reach_aig"))
        assert fresh.proved
        # The unbudgeted PROVED verdict overwrote the cache entry and now
        # serves budgeted and unbudgeted callers alike.
        again = session.run(
            VerificationTask(netlist, engine="reach_aig", timeout=1e-6)
        )
        assert again.proved and again.stats.get("cache_hit") == 1

    def test_unbudgeted_unknown_answers_any_budget(self):
        # bmc on a safe design is depth-limited, not time-limited; its
        # UNKNOWN holds for any wall-clock at the same depth.
        session = Session()
        netlist = G.mod_counter(3, 6)
        first = session.run(
            VerificationTask(netlist, engine="bmc", max_depth=5)
        )
        assert not first.status.is_conclusive
        budgeted = session.run(
            VerificationTask(netlist, engine="bmc", max_depth=5, timeout=10.0)
        )
        assert budgeted.stats.get("cache_hit") == 1

    def test_composite_timeout_becomes_portfolio_budget(self):
        session = Session()
        slow = VerificationTask(
            G.bug_at_depth(25),
            engine="portfolio",
            timeout=0.05,
            options={"engines": ["reach_aig"]},
        )
        result = session.run(slow)
        # reach_aig needs ~0.5s; the task timeout must reach the worker.
        assert not result.status.is_conclusive
        assert result.stats.get("engine_reach_aig_timeout") == 1

    def test_composite_ready_made_options_get_session_cache(self):
        # A caller-supplied PortfolioOptions object must not collide with
        # the session's cache injection.
        from repro.portfolio import PortfolioOptions

        session = Session()
        task = VerificationTask(
            G.mod_counter(3, 6),
            engine="portfolio",
            options={
                "options": PortfolioOptions(
                    budget=10.0, engines=["reach_aig"]
                )
            },
        )
        assert session.run(task).proved
        hit = session.verify(G.mod_counter(3, 6), engine="reach_aig")
        assert hit.stats.get("cache_hit") == 1

    def test_composite_engine_shares_session_cache(self):
        session = Session()
        task = VerificationTask(
            G.mod_counter(3, 6),
            engine="portfolio",
            # A one-engine portfolio: the outcome cannot be a cancelled
            # loser, so the per-engine memo is deterministic.
            options={"budget": 10.0, "engines": ["reach_aig"]},
        )
        assert session.run(task).proved
        # The portfolio memoized its per-engine outcomes into the
        # session's cache, so a direct engine task is now a hit.
        direct = session.verify(G.mod_counter(3, 6), engine="reach_aig")
        assert direct.proved
        assert direct.stats.get("cache_hit") == 1

    def test_session_stats_aggregate(self):
        session = Session()
        session.verify_many(self._batch(6), engine="reach_bdd")
        assert session.stats.get("tasks") == 6
        assert session.stats.get("status_proved") >= 1
        assert session.stats.get("status_failed") >= 1
