"""Tests for the .bench and BLIF readers/writers and the circuit library.

Round-trips are checked semantically: parse(serialize(n)) must agree with
``n`` on exhaustive or random simulation, not merely re-parse.
"""

import pytest

from repro.aig.simulate import truth_table
from repro.circuits.bench_format import parse_bench, serialize_bench
from repro.circuits.blif import parse_blif, serialize_blif
from repro.circuits.generators import arbiter, mod_counter
from repro.circuits.library import (
    c17,
    catalogue,
    handshake,
    s27,
    s27_with_property,
)
from repro.circuits.netlist import Netlist
from repro.errors import NetlistError
from repro.mc.reach_aig import BackwardReachability
from repro.mc.reach_bdd import bdd_backward_reachability
from repro.mc.result import Status


def output_truth_tables(netlist: Netlist) -> dict[str, int]:
    order = netlist.input_nodes + netlist.latch_nodes
    return {
        name: truth_table(netlist.aig, edge, order)
        for name, edge in netlist.outputs.items()
    }


def next_state_tables(netlist: Netlist) -> dict[str, int]:
    order = netlist.input_nodes + netlist.latch_nodes
    return {
        latch.name: truth_table(netlist.aig, latch.next_edge, order)
        for latch in netlist.latches
    }


def sequential_trace_signature(netlist: Netlist, steps: int = 16) -> list:
    """Deterministic input stimulus -> output/state value sequence."""
    import random

    rng = random.Random(42)
    stimulus = [
        {node: bool(rng.randint(0, 1)) for node in netlist.input_nodes}
        for _ in range(steps)
    ]
    states = netlist.run_trace(stimulus)
    return [sorted(state.items()) for state in states]


class TestBenchParser:
    def test_c17_structure(self):
        netlist = c17()
        assert netlist.num_inputs == 5
        assert netlist.num_latches == 0
        assert set(netlist.outputs) == {"G22", "G23"}

    def test_c17_known_vectors(self):
        netlist = c17()
        nodes = {netlist.aig.input_name(n): n for n in netlist.aig.inputs}
        from repro.aig.simulate import eval_edge

        # All inputs 0: G10=G11=1, G16=NAND(0,1)=1, G22=NAND(1,1)=0.
        assignment = {n: False for n in nodes.values()}
        assert eval_edge(netlist.aig, netlist.outputs["G22"], assignment) is False
        # G1=G3=1 others 0: G10=0 -> G22=1.
        assignment[nodes["G1"]] = True
        assignment[nodes["G3"]] = True
        assert eval_edge(netlist.aig, netlist.outputs["G22"], assignment) is True

    def test_s27_structure(self):
        netlist = s27()
        assert netlist.num_inputs == 4
        assert netlist.num_latches == 3
        assert {latch.name for latch in netlist.latches} == {"G5", "G6", "G7"}
        assert all(latch.init is False for latch in netlist.latches)

    def test_forward_references_resolve(self):
        text = """
        INPUT(a)
        OUTPUT(f)
        f = AND(g, a)
        g = NOT(a)
        """
        netlist = parse_bench(text)
        assert netlist.outputs["f"] == 0  # a AND NOT a == FALSE

    def test_multi_operand_gates(self):
        text = """
        INPUT(a)
        INPUT(b)
        INPUT(c)
        OUTPUT(f)
        f = OR(a, b, c)
        """
        netlist = parse_bench(text)
        table = output_truth_tables(netlist)["f"]
        assert table == 0b11111110

    def test_xor_xnor(self):
        text = """
        INPUT(a)
        INPUT(b)
        OUTPUT(x)
        OUTPUT(n)
        x = XOR(a, b)
        n = XNOR(a, b)
        """
        tables = output_truth_tables(parse_bench(text))
        assert tables["x"] == 0b0110
        assert tables["n"] == 0b1001

    def test_combinational_cycle_rejected(self):
        text = """
        INPUT(a)
        OUTPUT(f)
        f = AND(g, a)
        g = NOT(f)
        """
        with pytest.raises(NetlistError):
            parse_bench(text)

    def test_undefined_signal_rejected(self):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(a)\nOUTPUT(f)\nf = AND(a, ghost)\n")

    def test_duplicate_definition_rejected(self):
        text = "INPUT(a)\nf = NOT(a)\nf = BUFF(a)\n"
        with pytest.raises(NetlistError):
            parse_bench(text)

    def test_unsupported_gate_rejected(self):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(a)\nf = MAJ(a, a, a)\n")

    def test_bench_roundtrip_combinational(self):
        original = c17()
        recovered = parse_bench(serialize_bench(original), name="c17")
        assert output_truth_tables(original) == output_truth_tables(recovered)

    def test_bench_roundtrip_sequential(self):
        original = s27()
        recovered = parse_bench(serialize_bench(original), name="s27")
        assert sequential_trace_signature(
            original
        ) == sequential_trace_signature(recovered)

    def test_bench_roundtrip_generated(self):
        original = mod_counter(4, 11)
        original.set_output("wrap", original.property_edge)
        recovered = parse_bench(serialize_bench(original))
        assert next_state_tables(original) == next_state_tables(recovered)


class TestBlifParser:
    def test_simple_cover(self):
        text = """
        .model tiny
        .inputs a b
        .outputs f
        .names a b f
        11 1
        .end
        """
        netlist = parse_blif(text)
        assert output_truth_tables(netlist)["f"] == 0b1000

    def test_dont_care_column(self):
        text = """
        .model dc
        .inputs a b
        .outputs f
        .names a b f
        1- 1
        -1 1
        .end
        """
        netlist = parse_blif(text)
        assert output_truth_tables(netlist)["f"] == 0b1110  # OR

    def test_offset_cover(self):
        text = """
        .model offset
        .inputs a b
        .outputs f
        .names a b f
        11 0
        .end
        """
        netlist = parse_blif(text)
        assert output_truth_tables(netlist)["f"] == 0b0111  # NAND

    def test_constant_covers(self):
        text = """
        .model consts
        .inputs a
        .outputs one zero
        .names one
        1
        .names zero
        .end
        """
        netlist = parse_blif(text)
        assert netlist.outputs["one"] == 1
        assert netlist.outputs["zero"] == 0

    def test_latch_with_init(self):
        text = """
        .model seq
        .inputs d
        .outputs q
        .latch d q 1
        .end
        """
        netlist = parse_blif(text)
        assert netlist.latches[0].init is True

    def test_mixed_cover_rejected(self):
        text = """
        .model bad
        .inputs a b
        .outputs f
        .names a b f
        11 1
        00 0
        .end
        """
        with pytest.raises(NetlistError):
            parse_blif(text)

    def test_cube_outside_names_rejected(self):
        with pytest.raises(NetlistError):
            parse_blif(".model x\n.inputs a\n11 1\n.end\n")

    def test_unsupported_construct_rejected(self):
        with pytest.raises(NetlistError):
            parse_blif(".model x\n.subckt foo a=b\n.end\n")

    def test_blif_roundtrip_combinational(self):
        original = c17()
        recovered = parse_blif(serialize_blif(original))
        assert output_truth_tables(original) == output_truth_tables(recovered)

    def test_blif_roundtrip_sequential(self):
        original = s27()
        recovered = parse_blif(serialize_blif(original))
        assert sequential_trace_signature(
            original
        ) == sequential_trace_signature(recovered)
        assert next_state_tables(original) == next_state_tables(recovered)

    def test_cross_format_roundtrip(self):
        """bench -> netlist -> blif -> netlist keeps the functions."""
        original = s27()
        via_blif = parse_blif(serialize_blif(original))
        assert next_state_tables(original) == next_state_tables(via_blif)


class TestLibrary:
    def test_catalogue_names(self):
        assert set(catalogue()) == {
            "c17", "s27", "s27_with_property", "handshake",
            "handshake_buggy", "mul_miter2", "mul_miter2_buggy",
        }

    def test_s27_property_is_safe_on_both_engines(self):
        for engine in (
            lambda n: BackwardReachability(n).run(),
            bdd_backward_reachability,
        ):
            result = engine(s27_with_property())
            assert result.status is Status.PROVED

    def test_handshake_safe_and_buggy(self):
        assert bdd_backward_reachability(
            handshake(True)
        ).status is Status.PROVED
        failed = bdd_backward_reachability(handshake(False))
        assert failed.status is Status.FAILED
        assert failed.trace.validate(handshake(False))

    def test_aig_engine_agrees_on_handshake(self):
        result = BackwardReachability(handshake(True)).run()
        assert result.status is Status.PROVED
        result = BackwardReachability(handshake(False)).run()
        assert result.status is Status.FAILED
