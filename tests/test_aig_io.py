"""Tests for AIGER text I/O and DOT export."""

import pytest

from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.io import read_aag, to_dot, write_aag_string
from repro.aig.ops import or_, xor
from repro.aig.simulate import truth_table
from repro.errors import AigError
from tests.conftest import build_random_aig


class TestRoundtrip:
    def test_simple_circuit(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, edge_not(b))
        text = write_aag_string(aig, [f])
        loaded, outputs = read_aag(text)
        assert truth_table(loaded, outputs[0], loaded.inputs) == truth_table(
            aig, f, [a >> 1, b >> 1]
        )

    def test_random_circuits(self):
        for seed in range(5):
            aig, inputs, root = build_random_aig(4, 20, seed=seed)
            text = write_aag_string(aig, [root])
            loaded, outputs = read_aag(text)
            # extract keeps input order, so truth tables align positionally.
            assert truth_table(
                loaded, outputs[0], loaded.inputs
            ) == truth_table(aig, root, [e >> 1 for e in inputs])

    def test_multiple_outputs(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        outs = [aig.and_(a, b), or_(aig, a, b), xor(aig, a, b)]
        loaded, loaded_outs = read_aag(write_aag_string(aig, outs))
        assert len(loaded_outs) == 3
        for original, reloaded in zip(outs, loaded_outs):
            assert truth_table(
                loaded, reloaded, loaded.inputs
            ) == truth_table(aig, original, [a >> 1, b >> 1])

    def test_constant_output(self):
        aig = Aig()
        aig.add_input()
        loaded, outputs = read_aag(write_aag_string(aig, [TRUE]))
        assert outputs[0] == TRUE

    def test_input_names_preserved(self):
        aig = Aig()
        a = aig.add_input("clock")
        b = aig.add_input("reset")
        f = aig.and_(a, b)
        loaded, _ = read_aag(write_aag_string(aig, [f]))
        assert loaded.input_name(loaded.inputs[0]) == "clock"
        assert loaded.input_name(loaded.inputs[1]) == "reset"

    def test_complemented_output(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = edge_not(aig.and_(a, b))
        loaded, outputs = read_aag(write_aag_string(aig, [f]))
        assert truth_table(loaded, outputs[0], loaded.inputs) == 0b0111


class TestHeaderAndErrors:
    def test_header_counts(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        header = write_aag_string(aig, [f]).splitlines()[0]
        assert header == "aag 3 2 0 1 1"

    def test_empty_input_rejected(self):
        with pytest.raises(AigError):
            read_aag("")

    def test_bad_header_rejected(self):
        with pytest.raises(AigError):
            read_aag("aig 1 1 0 1 0\n2\n2\n")

    def test_latches_rejected(self):
        with pytest.raises(AigError):
            read_aag("aag 2 1 1 0 0\n2\n4 2\n")

    def test_undefined_literal_rejected(self):
        with pytest.raises(AigError):
            read_aag("aag 2 1 0 1 1\n2\n4\n4 2 6\n")

    def test_odd_and_literal_rejected(self):
        with pytest.raises(AigError):
            read_aag("aag 2 1 0 1 1\n2\n4\n5 2 2\n")


class TestDot:
    def test_dot_structure(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, edge_not(b))
        dot = to_dot(aig, [f])
        assert dot.startswith("digraph")
        assert "AND" in dot
        assert "style=dashed" in dot  # the complemented fanin

    def test_dot_input_labels(self):
        aig = Aig()
        a = aig.add_input("enable")
        dot = to_dot(aig, [a])
        assert "enable" in dot
